//! Property tests of DINAR's obfuscation/personalization invariants, driven
//! by the workspace's own seeded RNG instead of `proptest` so the whole suite
//! is deterministic and dependency-free.

use dinar::middleware::DinarMiddleware;
use dinar::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use dinar::DinarConfig;
use dinar_fl::ClientMiddleware;
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::Rng;

const CASES: u64 = 48;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xD1AA_2000 + property * 10_007 + case)
}

fn arbitrary_params(layers: usize, seed: u64) -> ModelParams {
    let mut rng = Rng::seed_from(seed);
    ModelParams::new(
        (0..layers)
            .map(|i| {
                LayerParams::new(vec![
                    rng.randn(&[4 + i, 3]),
                    rng.randn(&[3]),
                ])
            })
            .collect(),
    )
}

/// Obfuscation returns the exact original layer and never touches the
/// other layers, for every strategy and layer index.
#[test]
fn obfuscation_isolates_the_target_layer() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let layers = 1 + rng.below(5);
        let target = rng.below(layers);
        let strategy = [
            ObfuscationStrategy::Random,
            ObfuscationStrategy::Zeros,
            ObfuscationStrategy::Gaussian,
        ][rng.below(3)];
        let seed = rng.next_u64();
        let original = arbitrary_params(layers, seed);
        let mut mutated = original.clone();
        let mut obf_rng = Rng::seed_from(seed ^ 0xF00);
        let returned = obfuscate_layer(&mut mutated, target, strategy, &mut obf_rng).unwrap();
        assert_eq!(&returned, &original.layers[target], "case {case}");
        for i in 0..layers {
            if i == target {
                // The obfuscated layer keeps its shapes but not its values
                // (zeros may coincide if the original was all zeros — our
                // random params never are).
                assert!(returned.same_shape(&mutated.layers[i]), "case {case}");
                assert_ne!(&mutated.layers[i], &original.layers[i], "case {case}");
            } else {
                assert_eq!(&mutated.layers[i], &original.layers[i], "case {case}");
            }
        }
    }
}

/// Upload-then-download through the DINAR middleware restores the
/// client's private layer exactly, regardless of what the server sends
/// back — the Alg. 1 personalization invariant.
#[test]
fn personalization_roundtrip_invariant() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let layers = 2 + rng.below(4);
        let target = rng.below(layers);
        let rounds = 1 + rng.below(3);
        let seed = rng.next_u64();
        let mut mw = DinarMiddleware::new(target, DinarConfig::default(), seed);
        for round in 0..rounds {
            // Locally trained parameters this round.
            let trained = arbitrary_params(layers, seed ^ (round as u64 + 1));
            let mut upload = trained.clone();
            mw.transform_upload(0, &mut upload).unwrap();
            // Private layer never leaves the client.
            assert_ne!(&upload.layers[target], &trained.layers[target], "case {case}");
            let last_private = trained.layers[target].clone();

            // Arbitrary global model comes back.
            let mut download = arbitrary_params(layers, seed ^ 0xABCD ^ round as u64);
            mw.transform_download(0, &mut download).unwrap();
            // Personalization restored exactly what the client trained.
            assert_eq!(&download.layers[target], &last_private, "case {case}");
        }
    }
}

/// The obfuscated layer never correlates with the original: the random
/// strategy's output is independent of the private values.
#[test]
fn random_obfuscation_is_value_independent() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let seed = rng.next_u64();
        // Two different private layers, same obfuscation stream → same
        // obfuscated output (values depend only on the stream, not on the
        // secret).
        let mut a = arbitrary_params(3, seed);
        let mut b = arbitrary_params(3, seed ^ 0x5555);
        // Make shapes identical (arbitrary_params shapes depend only on the
        // layer index, so they already are).
        let mut rng_a = Rng::seed_from(42);
        let mut rng_b = Rng::seed_from(42);
        obfuscate_layer(&mut a, 1, ObfuscationStrategy::Random, &mut rng_a).unwrap();
        obfuscate_layer(&mut b, 1, ObfuscationStrategy::Random, &mut rng_b).unwrap();
        assert_eq!(&a.layers[1], &b.layers[1], "case {case}");
    }
}

/// Zeroed-layer uploads leak only shape: every tensor of the obfuscated
/// layer is identically zero.
#[test]
fn zeros_strategy_leaks_nothing_but_shape() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let layers = 1 + rng.below(4);
        let seed = rng.next_u64();
        let mut params = arbitrary_params(layers, seed);
        let target = (seed as usize) % layers;
        let mut obf_rng = Rng::seed_from(0);
        obfuscate_layer(&mut params, target, ObfuscationStrategy::Zeros, &mut obf_rng).unwrap();
        for t in &params.layers[target].tensors {
            assert!(t.as_slice().iter().all(|&x| x == 0.0), "case {case}");
        }
    }
}

/// Deterministic sanity check: a `Tensor` of arbitrary values is
/// never equal after Random obfuscation (collision probability ~0).
#[test]
fn random_obfuscation_changes_values() {
    let mut params = arbitrary_params(2, 7);
    let before = params.clone();
    let mut rng = Rng::seed_from(1);
    obfuscate_layer(&mut params, 0, ObfuscationStrategy::Random, &mut rng).unwrap();
    assert_ne!(params.layers[0], before.layers[0]);
}

//! Property-based tests of DINAR's obfuscation/personalization invariants.

use dinar::middleware::DinarMiddleware;
use dinar::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use dinar::DinarConfig;
use dinar_fl::ClientMiddleware;
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::Rng;
use proptest::prelude::*;

fn arbitrary_params(layers: usize, seed: u64) -> ModelParams {
    let mut rng = Rng::seed_from(seed);
    ModelParams::new(
        (0..layers)
            .map(|i| {
                LayerParams::new(vec![
                    rng.randn(&[4 + i, 3]),
                    rng.randn(&[3]),
                ])
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Obfuscation returns the exact original layer and never touches the
    /// other layers, for every strategy and layer index.
    #[test]
    fn obfuscation_isolates_the_target_layer(
        layers in 1usize..6,
        target in 0usize..6,
        strategy_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(target < layers);
        let strategy = [
            ObfuscationStrategy::Random,
            ObfuscationStrategy::Zeros,
            ObfuscationStrategy::Gaussian,
        ][strategy_idx];
        let original = arbitrary_params(layers, seed);
        let mut mutated = original.clone();
        let mut rng = Rng::seed_from(seed ^ 0xF00);
        let returned = obfuscate_layer(&mut mutated, target, strategy, &mut rng).unwrap();
        prop_assert_eq!(&returned, &original.layers[target]);
        for i in 0..layers {
            if i == target {
                // The obfuscated layer keeps its shapes but not its values
                // (zeros may coincide if the original was all zeros — our
                // random params never are).
                prop_assert!(returned.same_shape(&mutated.layers[i]));
                prop_assert_ne!(&mutated.layers[i], &original.layers[i]);
            } else {
                prop_assert_eq!(&mutated.layers[i], &original.layers[i]);
            }
        }
    }

    /// Upload-then-download through the DINAR middleware restores the
    /// client's private layer exactly, regardless of what the server sends
    /// back — the Alg. 1 personalization invariant.
    #[test]
    fn personalization_roundtrip_invariant(
        layers in 2usize..6,
        target in 0usize..6,
        seed in 0u64..1000,
        rounds in 1usize..4,
    ) {
        prop_assume!(target < layers);
        let mut mw = DinarMiddleware::new(target, DinarConfig::default(), seed);
        for round in 0..rounds {
            // Locally trained parameters this round.
            let trained = arbitrary_params(layers, seed ^ (round as u64 + 1));
            let mut upload = trained.clone();
            mw.transform_upload(0, &mut upload).unwrap();
            // Private layer never leaves the client.
            prop_assert_ne!(&upload.layers[target], &trained.layers[target]);
            let last_private = trained.layers[target].clone();

            // Arbitrary global model comes back.
            let mut download = arbitrary_params(layers, seed ^ 0xABCD ^ round as u64);
            mw.transform_download(0, &mut download).unwrap();
            // Personalization restored exactly what the client trained.
            prop_assert_eq!(&download.layers[target], &last_private);
        }
    }

    /// The obfuscated layer never correlates with the original: the random
    /// strategy's output is independent of the private values.
    #[test]
    fn random_obfuscation_is_value_independent(seed in 0u64..1000) {
        // Two different private layers, same obfuscation stream → same
        // obfuscated output (values depend only on the stream, not on the
        // secret).
        let mut a = arbitrary_params(3, seed);
        let mut b = arbitrary_params(3, seed ^ 0x5555);
        // Make shapes identical (arbitrary_params shapes depend only on the
        // layer index, so they already are).
        let mut rng_a = Rng::seed_from(42);
        let mut rng_b = Rng::seed_from(42);
        obfuscate_layer(&mut a, 1, ObfuscationStrategy::Random, &mut rng_a).unwrap();
        obfuscate_layer(&mut b, 1, ObfuscationStrategy::Random, &mut rng_b).unwrap();
        prop_assert_eq!(&a.layers[1], &b.layers[1]);
    }

    /// Zeroed-layer uploads leak only shape: every tensor of the obfuscated
    /// layer is identically zero.
    #[test]
    fn zeros_strategy_leaks_nothing_but_shape(layers in 1usize..5, seed in 0u64..1000) {
        let mut params = arbitrary_params(layers, seed);
        let target = (seed as usize) % layers;
        let mut rng = Rng::seed_from(0);
        obfuscate_layer(&mut params, target, ObfuscationStrategy::Zeros, &mut rng).unwrap();
        for t in &params.layers[target].tensors {
            prop_assert!(t.as_slice().iter().all(|&x| x == 0.0));
        }
    }
}

/// Deterministic sanity outside proptest: a `Tensor` of arbitrary values is
/// never equal after Random obfuscation (collision probability ~0).
#[test]
fn random_obfuscation_changes_values() {
    let mut params = arbitrary_params(2, 7);
    let before = params.clone();
    let mut rng = Rng::seed_from(1);
    obfuscate_layer(&mut params, 0, ObfuscationStrategy::Random, &mut rng).unwrap();
    assert_ne!(params.layers[0], before.layers[0]);
}

//! The DINAR client middleware: personalization on download, obfuscation on
//! upload (Algorithm 1 without the training loop, which the FL client runs
//! between the two hooks).

use crate::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use crate::DinarConfig;
use dinar_fl::{ClientMiddleware, FlError, MiddlewareState};
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::Rng;

/// Per-client DINAR middleware.
///
/// * **Download** (Alg. 1, Model Personalization): every layer of the global
///   model is installed except the private layer(s), for which the client's
///   privately stored parameters `θᵢᵖ*` are restored. On the first round
///   (nothing stored yet) the global layer is installed as-is — at that
///   point it is still the common random initialization and leaks nothing.
/// * **Upload** (Alg. 1, Model Obfuscation): the trained private layer(s)
///   are stored as the new `θᵢᵖ*`, then replaced with random values before
///   the parameters leave the client.
///
/// DINAR protects a single layer `p` (the consensus result of §4.1);
/// the multi-layer constructor exists for the paper's Fig. 5 sweep, which
/// shows that obfuscating more layers buys no extra privacy and costs
/// utility.
#[derive(Debug)]
pub struct DinarMiddleware {
    layers: Vec<usize>,
    stored: Vec<Option<LayerParams>>,
    strategy: ObfuscationStrategy,
    rng: Rng,
}

impl DinarMiddleware {
    /// Creates the middleware protecting the single trainable layer
    /// `private_layer`, with a per-client seed for obfuscation randomness.
    pub fn new(private_layer: usize, config: DinarConfig, seed: u64) -> Self {
        Self::multi(vec![private_layer], config, seed)
    }

    /// Creates the middleware protecting several layers at once (Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or contains duplicates.
    pub fn multi(layers: Vec<usize>, config: DinarConfig, seed: u64) -> Self {
        assert!(!layers.is_empty(), "DINAR must protect at least one layer");
        let mut sorted = layers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), layers.len(), "duplicate layer indices");
        DinarMiddleware {
            stored: vec![None; layers.len()],
            layers,
            strategy: config.strategy,
            rng: Rng::seed_from(seed ^ 0xD1AA_4000_0000_0000),
        }
    }

    /// The protected layer indices.
    pub fn private_layers(&self) -> &[usize] {
        &self.layers
    }

    /// The stored parameters for the `i`-th protected layer, if any round
    /// has completed.
    pub fn stored_layer(&self, i: usize) -> Option<&LayerParams> {
        self.stored.get(i).and_then(Option::as_ref)
    }

    fn check_range(&self, params: &ModelParams) -> dinar_fl::Result<()> {
        if let Some(&bad) = self.layers.iter().find(|&&p| p >= params.layers.len()) {
            return Err(FlError::Middleware {
                name: "dinar",
                reason: format!(
                    "private layer {bad} out of range for {} layers",
                    params.layers.len()
                ),
            });
        }
        Ok(())
    }
}

impl ClientMiddleware for DinarMiddleware {
    fn transform_download(
        &mut self,
        _client_id: usize,
        params: &mut ModelParams,
    ) -> dinar_fl::Result<()> {
        self.check_range(params)?;
        for (&p, stored) in self.layers.iter().zip(&self.stored) {
            if let Some(own) = stored {
                // Restore θᵢᵖ*: the client's own non-obfuscated layer.
                params.layers[p] = own.clone();
            }
        }
        Ok(())
    }

    fn transform_upload(
        &mut self,
        _client_id: usize,
        params: &mut ModelParams,
    ) -> dinar_fl::Result<()> {
        self.check_range(params)?;
        for (&p, slot) in self.layers.iter().zip(&mut self.stored) {
            let original = obfuscate_layer(params, p, self.strategy, &mut self.rng)
                .map_err(|e| FlError::Middleware {
                    name: "dinar",
                    reason: e.to_string(),
                })?;
            *slot = Some(original);
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "dinar"
    }

    fn export_state(&self) -> Option<MiddlewareState> {
        Some(MiddlewareState {
            rng: Some(self.rng.state()),
            stored: self.stored.clone(),
        })
    }

    fn import_state(&mut self, state: MiddlewareState) -> dinar_fl::Result<()> {
        if state.stored.len() != self.stored.len() {
            return Err(FlError::Middleware {
                name: "dinar",
                reason: format!(
                    "resume image stores {} private layer slot(s), middleware has {}",
                    state.stored.len(),
                    self.stored.len()
                ),
            });
        }
        if let Some(rng) = state.rng {
            self.rng = Rng::from_state(rng);
        }
        self.stored = state.stored;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(values: &[f32]) -> ModelParams {
        ModelParams::new(
            values
                .iter()
                .map(|&v| LayerParams::new(vec![Tensor::full(&[4], v)]))
                .collect(),
        )
    }

    #[test]
    fn upload_obfuscates_and_stores_download_restores() {
        let mut mw = DinarMiddleware::new(1, DinarConfig::default(), 7);

        // Round 1 upload: layer 1 (value 2.0) is stored and obfuscated.
        let mut upload = params(&[1.0, 2.0]);
        mw.transform_upload(0, &mut upload).unwrap();
        assert_eq!(upload.layers[0].tensors[0].as_slice(), &[1.0; 4]);
        assert!(upload.layers[1].tensors[0]
            .as_slice()
            .iter()
            .all(|&x| x != 2.0));
        assert_eq!(
            mw.stored_layer(0).unwrap().tensors[0].as_slice(),
            &[2.0; 4]
        );

        // Round 2 download: the global layer 1 (a garbage average, say 9.0)
        // is replaced by the stored 2.0; layer 0 comes from the global.
        let mut download = params(&[5.0, 9.0]);
        mw.transform_download(0, &mut download).unwrap();
        assert_eq!(download.layers[0].tensors[0].as_slice(), &[5.0; 4]);
        assert_eq!(download.layers[1].tensors[0].as_slice(), &[2.0; 4]);
    }

    #[test]
    fn first_download_is_identity() {
        let mut mw = DinarMiddleware::new(1, DinarConfig::default(), 7);
        let mut download = params(&[5.0, 9.0]);
        let before = download.clone();
        mw.transform_download(0, &mut download).unwrap();
        assert_eq!(download, before);
    }

    #[test]
    fn multi_layer_protection() {
        let mut mw = DinarMiddleware::multi(vec![0, 2], DinarConfig::default(), 3);
        let mut upload = params(&[1.0, 2.0, 3.0]);
        mw.transform_upload(0, &mut upload).unwrap();
        // Layers 0 and 2 obfuscated, layer 1 intact.
        assert!(upload.layers[0].tensors[0].as_slice().iter().all(|&x| x != 1.0));
        assert_eq!(upload.layers[1].tensors[0].as_slice(), &[2.0; 4]);
        assert!(upload.layers[2].tensors[0].as_slice().iter().all(|&x| x != 3.0));

        let mut download = params(&[7.0, 8.0, 9.0]);
        mw.transform_download(0, &mut download).unwrap();
        assert_eq!(download.layers[0].tensors[0].as_slice(), &[1.0; 4]);
        assert_eq!(download.layers[1].tensors[0].as_slice(), &[8.0; 4]);
        assert_eq!(download.layers[2].tensors[0].as_slice(), &[3.0; 4]);
    }

    #[test]
    fn out_of_range_layer_errors() {
        let mut mw = DinarMiddleware::new(5, DinarConfig::default(), 7);
        let mut p = params(&[1.0, 2.0]);
        assert!(mw.transform_download(0, &mut p).is_err());
        assert!(mw.transform_upload(0, &mut p).is_err());
    }

    #[test]
    fn strategies_are_respected() {
        let config = DinarConfig {
            strategy: ObfuscationStrategy::Zeros,
            ..DinarConfig::default()
        };
        let mut mw = DinarMiddleware::new(0, config, 1);
        let mut p = params(&[3.0, 4.0]);
        mw.transform_upload(0, &mut p).unwrap();
        assert!(p.layers[0].tensors[0].as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_layers_panic() {
        DinarMiddleware::multi(vec![1, 1], DinarConfig::default(), 0);
    }
}

//! Layer-sensitivity analysis: how much does each layer leak membership?
//!
//! Implements the paper's §3 measurement: run the model on member data and
//! on non-member data, compute the per-layer gradients each population
//! induces, and measure the **Jensen–Shannon divergence** between the two
//! gradient distributions, layer by layer. The layer with the largest
//! divergence (the "generalization gap" layer) is the most privacy-sensitive
//! — empirically the penultimate layer (Fig. 1).

use crate::{DinarError, Result};
use dinar_data::Dataset;
use dinar_metrics::histogram::js_divergence_samples;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::Model;
use dinar_tensor::Rng;

/// Parameters of the divergence measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityConfig {
    /// Samples per gradient probe batch (small batches give many gradient
    /// draws per population).
    pub probe_batch: usize,
    /// Maximum number of probe batches per population.
    pub max_batches: usize,
    /// Histogram bins for the divergence estimate.
    pub bins: usize,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        SensitivityConfig {
            probe_batch: 8,
            max_batches: 16,
            bins: 30,
        }
    }
}

/// Collects, for every trainable layer, the gradient values induced by
/// probe batches of `data`.
fn gradient_population(
    model: &mut Model,
    data: &Dataset,
    cfg: &SensitivityConfig,
    rng: &mut Rng,
) -> Result<Vec<Vec<f32>>> {
    let loss_fn = CrossEntropyLoss;
    let mut populations: Vec<Vec<f32>> = vec![Vec::new(); model.num_trainable_layers()];
    let mut batches = 0usize;
    for indices in data.batch_indices(cfg.probe_batch, rng) {
        if batches >= cfg.max_batches {
            break;
        }
        let batch = data.batch(&indices).map_err(DinarError::from)?;
        let logits = model.forward(&batch.features, true).map_err(DinarError::from)?;
        let (_, grad) = loss_fn
            .loss_and_grad(&logits, &batch.labels)
            .map_err(DinarError::from)?;
        model.zero_grad();
        model.backward(&grad).map_err(DinarError::from)?;
        for (layer, pop) in model.layer_gradients().iter().zip(&mut populations) {
            for t in &layer.tensors {
                // Log-magnitude transform: gradient values span orders of
                // magnitude, and memorization shows up as members' gradients
                // collapsing toward zero. A histogram over log10 |g| resolves
                // that collapse; raw-value bins would lump everything into
                // the near-zero bin.
                pop.extend(t.as_slice().iter().map(|&g| (g.abs() + 1e-12).log10()));
            }
        }
        batches += 1;
    }
    model.zero_grad();
    Ok(populations)
}

/// Per-layer Jensen–Shannon divergence between the gradient distributions of
/// member and non-member data (§3) — one value per trainable layer, higher
/// means more membership leakage.
///
/// # Errors
///
/// Returns [`DinarError::InvalidConfig`] for empty datasets, and propagates
/// model errors.
pub fn layer_divergences(
    model: &mut Model,
    members: &Dataset,
    nonmembers: &Dataset,
    cfg: &SensitivityConfig,
    rng: &mut Rng,
) -> Result<Vec<f64>> {
    if members.is_empty() || nonmembers.is_empty() {
        return Err(DinarError::InvalidConfig {
            reason: "sensitivity analysis needs non-empty member and non-member sets".into(),
        });
    }
    let member_pop = gradient_population(model, members, cfg, rng)?;
    let nonmember_pop = gradient_population(model, nonmembers, cfg, rng)?;
    Ok(member_pop
        .iter()
        .zip(&nonmember_pop)
        .map(|(m, n)| js_divergence_samples(m, n, cfg.bins))
        .collect())
}

/// Index of the most privacy-sensitive trainable layer: the argmax of
/// [`layer_divergences`] — the client's proposal `pᵢ` in the paper's
/// initialization phase (§4.1).
///
/// # Errors
///
/// Same conditions as [`layer_divergences`].
pub fn most_sensitive_layer(
    model: &mut Model,
    members: &Dataset,
    nonmembers: &Dataset,
    cfg: &SensitivityConfig,
    rng: &mut Rng,
) -> Result<usize> {
    let divs = layer_divergences(model, members, nonmembers, cfg, rng)?;
    Ok(divs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::{Optimizer, Sgd};
    use dinar_tensor::Tensor;

    fn noisy_dataset(n: usize, rng: &mut Rng) -> Dataset {
        let mut x = Tensor::zeros(&[n, 10]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 5;
            for j in 0..10 {
                let center = if j % 5 == class { 1.0 } else { 0.0 };
                x.set(&[i, j], rng.normal_with(center, 1.5)).unwrap();
            }
            labels.push(class);
        }
        Dataset::new(x, labels, &[10], 5).unwrap()
    }

    #[test]
    fn divergences_cover_all_layers_and_detect_overfitting() {
        let mut rng = Rng::seed_from(0);
        let members = noisy_dataset(64, &mut rng);
        let nonmembers = noisy_dataset(64, &mut rng);
        let mut model = models::mlp(&[10, 32, 32, 5], Activation::ReLU, &mut rng).unwrap();

        // Before training: member and non-member gradients are i.i.d., so
        // divergences should be small.
        let cfg = SensitivityConfig::default();
        let before =
            layer_divergences(&mut model, &members, &nonmembers, &cfg, &mut rng).unwrap();
        assert_eq!(before.len(), 3);

        // Overfit on the members.
        let mut opt = Sgd::new(0.1);
        let batch = members.full_batch().unwrap();
        let loss_fn = CrossEntropyLoss;
        for _ in 0..250 {
            let logits = model.forward(&batch.features, true).unwrap();
            let (_, grad) = loss_fn.loss_and_grad(&logits, &batch.labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
        let after =
            layer_divergences(&mut model, &members, &nonmembers, &cfg, &mut rng).unwrap();
        let max_before = before.iter().copied().fold(0.0, f64::max);
        let max_after = after.iter().copied().fold(0.0, f64::max);
        assert!(
            max_after > max_before * 2.0,
            "overfitting should widen the gap: {max_before} -> {max_after}"
        );
    }

    /// After overfitting, one layer dominates the divergence profile — the
    /// existence of a dominant privacy-sensitive layer is the property §3
    /// establishes. (Which index dominates depends on data and architecture:
    /// the paper's deep CNNs on natural data find the penultimate layer; our
    /// shallow synthetic substitutes concentrate memorization earlier. See
    /// EXPERIMENTS.md.)
    #[test]
    fn a_dominant_layer_exists_in_overfit_mlp() {
        let mut rng = Rng::seed_from(1);
        let members = noisy_dataset(48, &mut rng);
        let nonmembers = noisy_dataset(48, &mut rng);
        let mut model = models::mlp(&[10, 32, 32, 5], Activation::ReLU, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let batch = members.full_batch().unwrap();
        for _ in 0..250 {
            let logits = model.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss
                .loss_and_grad(&logits, &batch.labels)
                .unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
        let cfg = SensitivityConfig::default();
        let divs = layer_divergences(&mut model, &members, &nonmembers, &cfg, &mut rng).unwrap();
        let p = most_sensitive_layer(&mut model, &members, &nonmembers, &cfg, &mut rng).unwrap();
        assert!(p < divs.len());
        let max = divs.iter().copied().fold(0.0, f64::max);
        let mean = divs.iter().sum::<f64>() / divs.len() as f64;
        assert!(
            max > mean * 1.2,
            "expected a dominant layer: divergences {divs:?}"
        );
    }

    #[test]
    fn empty_sets_rejected() {
        let mut rng = Rng::seed_from(2);
        let data = noisy_dataset(16, &mut rng);
        let empty = data.subset(&[]).unwrap();
        let mut model = models::mlp(&[10, 8, 5], Activation::ReLU, &mut rng).unwrap();
        assert!(layer_divergences(
            &mut model,
            &empty,
            &data,
            &SensitivityConfig::default(),
            &mut rng
        )
        .is_err());
    }
}

//! Layer obfuscation (Algorithm 1, lines 15–17).
//!
//! Before uploading, the client replaces the parameters of the
//! privacy-sensitive layer `p` with values that carry no information about
//! its data. The paper obfuscates "by simply replacing the actual value of
//! θᵢᵖ by random values"; zeroing and Gaussian noise are provided as
//! ablation alternatives (see the `obfuscation` bench).

use crate::{DinarError, Result};
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::{Rng, Tensor};

/// How the private layer's parameters are replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObfuscationStrategy {
    /// Uniform random values in `[-0.5, 0.5]` — the paper's choice.
    Random,
    /// All zeros (reveals the layer *shape* only; ablation).
    Zeros,
    /// Standard Gaussian noise (ablation).
    Gaussian,
}

/// Replaces the parameters of trainable layer `p` in `params` with
/// obfuscated values, returning the original layer (to be stored privately
/// as `θᵢᵖ*`).
///
/// # Errors
///
/// Returns [`DinarError::InvalidConfig`] if `p` is out of range.
pub fn obfuscate_layer(
    params: &mut ModelParams,
    p: usize,
    strategy: ObfuscationStrategy,
    rng: &mut Rng,
) -> Result<LayerParams> {
    let num_layers = params.layers.len();
    let layer = params
        .layers
        .get_mut(p)
        .ok_or_else(|| DinarError::InvalidConfig {
            reason: format!(
                "layer index {p} out of range for model with {num_layers} trainable layers"
            ),
        })?;
    // O(1) snapshot: `θᵢᵖ*` shares the layer's buffers; every strategy below
    // replaces the tensors wholesale, so the original is never copied.
    let original = layer.share();
    for t in &mut layer.tensors {
        match strategy {
            ObfuscationStrategy::Random => {
                *t = rng.rand_uniform(t.shape(), -0.5, 0.5);
            }
            ObfuscationStrategy::Zeros => {
                // A fresh zero buffer, not `map_inplace`: writing through the
                // shared tensor would trigger a COW copy of data that is
                // about to be discarded anyway.
                *t = Tensor::zeros(t.shape());
            }
            ObfuscationStrategy::Gaussian => {
                *t = rng.randn(t.shape());
            }
        }
    }
    Ok(original)
}

/// Obfuscates several layers at once (the Fig. 5 multi-layer sweep),
/// returning the originals in the same order as `layers`.
///
/// # Errors
///
/// Returns [`DinarError::InvalidConfig`] if any index is out of range.
pub fn obfuscate_layers(
    params: &mut ModelParams,
    layers: &[usize],
    strategy: ObfuscationStrategy,
    rng: &mut Rng,
) -> Result<Vec<LayerParams>> {
    layers
        .iter()
        .map(|&p| obfuscate_layer(params, p, strategy, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params() -> ModelParams {
        ModelParams::new(vec![
            LayerParams::new(vec![Tensor::full(&[6], 1.0)]),
            LayerParams::new(vec![Tensor::full(&[4], 2.0), Tensor::full(&[2], 3.0)]),
            LayerParams::new(vec![Tensor::full(&[3], 4.0)]),
        ])
    }

    #[test]
    fn obfuscation_replaces_only_target_layer_and_returns_original() {
        let mut p = params();
        let mut rng = Rng::seed_from(0);
        let original = obfuscate_layer(&mut p, 1, ObfuscationStrategy::Random, &mut rng).unwrap();
        // Original returned intact.
        assert_eq!(original.tensors[0].as_slice(), &[2.0; 4]);
        assert_eq!(original.tensors[1].as_slice(), &[3.0; 2]);
        // Other layers untouched.
        assert_eq!(p.layers[0].tensors[0].as_slice(), &[1.0; 6]);
        assert_eq!(p.layers[2].tensors[0].as_slice(), &[4.0; 3]);
        // Target layer replaced with values in [-0.5, 0.5].
        assert!(p.layers[1].tensors[0]
            .as_slice()
            .iter()
            .all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn zeros_strategy() {
        let mut p = params();
        obfuscate_layer(&mut p, 0, ObfuscationStrategy::Zeros, &mut Rng::seed_from(1)).unwrap();
        assert!(p.layers[0].tensors[0].as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gaussian_strategy_has_unit_scale() {
        let mut p = ModelParams::new(vec![LayerParams::new(vec![Tensor::zeros(&[20_000])])]);
        obfuscate_layer(&mut p, 0, ObfuscationStrategy::Gaussian, &mut Rng::seed_from(2))
            .unwrap();
        let flat = p.to_flat();
        let var = flat.iter().map(|x| x * x).sum::<f32>() / flat.len() as f32;
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn multi_layer_obfuscation() {
        let mut p = params();
        let originals =
            obfuscate_layers(&mut p, &[0, 2], ObfuscationStrategy::Zeros, &mut Rng::seed_from(3))
                .unwrap();
        assert_eq!(originals.len(), 2);
        assert!(p.layers[0].tensors[0].as_slice().iter().all(|&x| x == 0.0));
        assert!(p.layers[2].tensors[0].as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(p.layers[1].tensors[0].as_slice(), &[2.0; 4]); // untouched
    }

    #[test]
    fn out_of_range_rejected() {
        let mut p = params();
        assert!(matches!(
            obfuscate_layer(&mut p, 3, ObfuscationStrategy::Random, &mut Rng::seed_from(4)),
            Err(DinarError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn obfuscation_is_deterministic_per_seed() {
        let mut a = params();
        let mut b = params();
        obfuscate_layer(&mut a, 1, ObfuscationStrategy::Random, &mut Rng::seed_from(5)).unwrap();
        obfuscate_layer(&mut b, 1, ObfuscationStrategy::Random, &mut Rng::seed_from(5)).unwrap();
        assert_eq!(a, b);
    }
}

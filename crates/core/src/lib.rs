//! # dinar
//!
//! DINAR: a fine-grained, personalized privacy-preserving federated learning
//! middleware — the primary contribution of *Personalized Privacy-Preserving
//! Federated Learning* (MIDDLEWARE '24).
//!
//! DINAR protects FL models against membership inference attacks by
//! obfuscating only the **most privacy-sensitive layer** of the network,
//! instead of perturbing everything (DP) or encrypting everything
//! (SA/TEE). The pipeline (paper Fig. 2 and Algorithm 1):
//!
//! 1. **Initialization** ([`init`]) — before training, every client measures
//!    each layer's membership leakage as the Jensen–Shannon divergence
//!    between member and non-member gradient distributions
//!    ([`sensitivity`]), proposes the most-leaking layer, and all clients
//!    agree on one index `p` via Byzantine-tolerant broadcast voting
//!    (the [`dinar_consensus`] crate).
//! 2. **Model personalization** (Alg. 1 lines 1–6) — on receiving the global
//!    model, the client restores its privately stored layer `p` parameters,
//!    yielding a personalized model used for its predictions.
//! 3. **Adaptive model training** (Alg. 1 lines 7–14) — local training with
//!    accumulated-squared-gradient adaptive descent
//!    ([`dinar_nn::optim::Adagrad`]) to recover any utility loss.
//! 4. **Model obfuscation** (Alg. 1 lines 15–17) — before upload, the client
//!    stores layer `p` and replaces it with random values
//!    ([`obfuscation`]), so neither the server nor other clients ever see
//!    the privacy-sensitive parameters.
//!
//! Steps 2–4 are packaged as an FL client middleware
//! ([`middleware::DinarMiddleware`]) that drops into the
//! [`dinar_fl`] engine next to any baseline defense.
//!
//! # Example
//!
//! ```
//! use dinar::{middleware::DinarMiddleware, DinarConfig};
//! use dinar_fl::{FlConfig, FlSystem};
//! use dinar_data::{catalog::{self, Profile}, partition::{partition_dataset, Distribution}};
//! use dinar_nn::{models, optim::Adagrad};
//! use dinar_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let data = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
//! let shards = partition_dataset(&data, 3, Distribution::Iid, &mut rng)?;
//! let config = DinarConfig::default();
//! let mut system = FlSystem::builder(FlConfig { local_epochs: 1, batch_size: 64, seed: 1 })
//!     .clients_from_shards(shards, |rng| models::fcnn6(600, 100, 64, rng), |_| Box::new(Adagrad::new(1e-3)))?
//!     .with_client_middleware(|id| vec![Box::new(DinarMiddleware::new(4, config, id as u64))])
//!     .build()?;
//! system.run_round()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod init;
pub mod middleware;
pub mod obfuscation;
pub mod pipeline;
pub mod sensitivity;

pub use error::DinarError;
pub use middleware::DinarMiddleware;
pub use pipeline::Dinar;
pub use obfuscation::ObfuscationStrategy;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DinarError>;

/// DINAR configuration shared by the middleware and initialization phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DinarConfig {
    /// How the private layer is obfuscated before upload (Alg. 1 line 17).
    pub strategy: ObfuscationStrategy,
    /// Histogram bins for the sensitivity analysis divergences.
    pub divergence_bins: usize,
}

impl Default for DinarConfig {
    fn default() -> Self {
        DinarConfig {
            strategy: ObfuscationStrategy::Random,
            divergence_bins: 30,
        }
    }
}

use dinar_consensus::ConsensusError;
use dinar_data::DataError;
use dinar_fl::FlError;
use dinar_nn::NnError;
use std::fmt;

/// Error type for the DINAR middleware.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DinarError {
    /// A network operation failed.
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// The FL engine reported a failure.
    Fl(FlError),
    /// The layer-vote consensus failed.
    Consensus(ConsensusError),
    /// DINAR was configured inconsistently.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The consensus produced no agreed layer (honest nodes split).
    NoAgreement,
}

impl fmt::Display for DinarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DinarError::Nn(e) => write!(f, "network error: {e}"),
            DinarError::Data(e) => write!(f, "data error: {e}"),
            DinarError::Fl(e) => write!(f, "fl error: {e}"),
            DinarError::Consensus(e) => write!(f, "consensus error: {e}"),
            DinarError::InvalidConfig { reason } => {
                write!(f, "invalid DINAR configuration: {reason}")
            }
            DinarError::NoAgreement => write!(f, "clients failed to agree on a layer index"),
        }
    }
}

impl std::error::Error for DinarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DinarError::Nn(e) => Some(e),
            DinarError::Data(e) => Some(e),
            DinarError::Fl(e) => Some(e),
            DinarError::Consensus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DinarError {
    fn from(e: NnError) -> Self {
        DinarError::Nn(e)
    }
}

impl From<DataError> for DinarError {
    fn from(e: DataError) -> Self {
        DinarError::Data(e)
    }
}

impl From<FlError> for DinarError {
    fn from(e: FlError) -> Self {
        DinarError::Fl(e)
    }
}

impl From<ConsensusError> for DinarError {
    fn from(e: ConsensusError) -> Self {
        DinarError::Consensus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_chain_sources() {
        let e: DinarError = ConsensusError::NodeFailure { node: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("consensus"));
    }
}

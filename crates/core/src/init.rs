//! DINAR initialization (§4.1): each client measures its most
//! privacy-sensitive layer and all clients agree on one index through
//! Byzantine-tolerant broadcast voting.

use crate::sensitivity::{most_sensitive_layer, SensitivityConfig};
use crate::{DinarError, Result};
use dinar_consensus::network::{simulate_vote, NodeBehavior, SimConfig};
use dinar_data::Dataset;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::optim::{Adagrad, Optimizer};
use dinar_nn::Model;
use dinar_tensor::Rng;

/// Configuration of the initialization phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitConfig {
    /// Warm-up epochs each client trains locally before probing (a model at
    /// random initialization has no membership signal to localize).
    pub warmup_epochs: usize,
    /// Warm-up batch size.
    pub batch_size: usize,
    /// Warm-up learning rate for the Adagrad optimizer.
    pub lr: f32,
    /// Sensitivity measurement parameters.
    pub sensitivity: SensitivityConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InitConfig {
    fn default() -> Self {
        InitConfig {
            warmup_epochs: 20,
            batch_size: 32,
            lr: 0.05,
            sensitivity: SensitivityConfig::default(),
            seed: 0xD1AA,
        }
    }
}

/// Computes one client's layer proposal `pᵢ`: warm-up training on its member
/// data `Dᵐᵢ`, then the argmax-divergence layer against its held-out
/// non-member data `Dⁿᵢ`.
///
/// # Errors
///
/// Propagates training and sensitivity errors.
pub fn client_proposal(
    model: &mut Model,
    members: &Dataset,
    nonmembers: &Dataset,
    cfg: &InitConfig,
    rng: &mut Rng,
) -> Result<usize> {
    let loss_fn = CrossEntropyLoss;
    let mut opt = Adagrad::new(cfg.lr);
    for _ in 0..cfg.warmup_epochs {
        for indices in members.batch_indices(cfg.batch_size, rng) {
            let batch = members.batch(&indices).map_err(DinarError::from)?;
            let logits = model.forward(&batch.features, true).map_err(DinarError::from)?;
            let (_, grad) = loss_fn
                .loss_and_grad(&logits, &batch.labels)
                .map_err(DinarError::from)?;
            model.zero_grad();
            model.backward(&grad).map_err(DinarError::from)?;
            opt.step(model).map_err(DinarError::from)?;
        }
    }
    most_sensitive_layer(model, members, nonmembers, &cfg.sensitivity, rng)
}

/// Runs the full initialization phase over all clients' local data and
/// returns the agreed layer index `p`.
///
/// Each entry in `client_data` is a client's `(members, nonmembers)` pair —
/// its training split `Dᵐᵢ` and held-out split `Dⁿᵢ`. `byzantine` lists
/// client indices that behave maliciously during the vote (they still
/// obfuscate layer `p` afterwards, as the paper requires). `model_fn` builds
/// the shared architecture.
///
/// # Errors
///
/// Returns [`DinarError::NoAgreement`] if honest clients fail to decide a
/// common value, and propagates proposal/vote errors.
pub fn agree_on_layer(
    client_data: &[(Dataset, Dataset)],
    model_fn: impl Fn(&mut Rng) -> dinar_nn::Result<Model>,
    byzantine: &[usize],
    cfg: &InitConfig,
) -> Result<usize> {
    if client_data.is_empty() {
        return Err(DinarError::InvalidConfig {
            reason: "initialization needs at least one client".into(),
        });
    }
    let root = Rng::seed_from(cfg.seed);
    let mut behaviors = Vec::with_capacity(client_data.len());
    let mut num_layers = 0;
    for (i, (members, nonmembers)) in client_data.iter().enumerate() {
        let mut rng = root.split(i as u64);
        let mut model = model_fn(&mut rng).map_err(DinarError::from)?;
        num_layers = model.num_trainable_layers();
        if byzantine.contains(&i) {
            behaviors.push(NodeBehavior::byzantine_random());
            continue;
        }
        let proposal = client_proposal(&mut model, members, nonmembers, cfg, &mut rng)?;
        behaviors.push(NodeBehavior::Honest { proposal });
    }
    let outcome = simulate_vote(
        &behaviors,
        &SimConfig {
            num_choices: num_layers,
            seed: cfg.seed,
        },
    )?;
    outcome.agreed_value().ok_or(DinarError::NoAgreement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::models::{self, Activation};
    use dinar_tensor::Tensor;

    fn noisy_dataset(n: usize, rng: &mut Rng) -> Dataset {
        let mut x = Tensor::zeros(&[n, 10]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 5;
            for j in 0..10 {
                let center = if j % 5 == class { 1.0 } else { 0.0 };
                x.set(&[i, j], rng.normal_with(center, 1.5)).unwrap();
            }
            labels.push(class);
        }
        Dataset::new(x, labels, &[10], 5).unwrap()
    }

    fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
        models::mlp(&[10, 24, 24, 5], Activation::ReLU, rng)
    }

    #[test]
    fn clients_agree_on_a_layer_with_byzantine_minority() {
        let mut rng = Rng::seed_from(0);
        let client_data: Vec<(Dataset, Dataset)> = (0..5)
            .map(|_| (noisy_dataset(40, &mut rng), noisy_dataset(24, &mut rng)))
            .collect();
        let cfg = InitConfig {
            warmup_epochs: 15,
            ..InitConfig::default()
        };
        let p = agree_on_layer(&client_data, arch, &[4], &cfg).unwrap();
        assert!(p < 3, "layer index {p} within range");
    }

    #[test]
    fn empty_client_list_rejected() {
        let cfg = InitConfig::default();
        assert!(matches!(
            agree_on_layer(&[], arch, &[], &cfg),
            Err(DinarError::InvalidConfig { .. })
        ));
    }
}

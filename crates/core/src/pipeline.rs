//! The high-level DINAR facade: initialization → per-client middleware →
//! recommended optimizer, in one object.
//!
//! [`Dinar`] packages the full §4 pipeline so an application configures the
//! middleware in three lines (see the crate example). Lower-level pieces
//! ([`crate::init`], [`crate::middleware`], [`crate::sensitivity`]) remain
//! available for custom setups.

use crate::init::{agree_on_layer, InitConfig};
use crate::middleware::DinarMiddleware;
use crate::{DinarConfig, DinarError, Result};
use dinar_data::Dataset;
use dinar_nn::optim::Adagrad;
use dinar_nn::Model;
use dinar_tensor::Rng;

/// A configured DINAR deployment: the agreed private layer plus the
/// obfuscation configuration, ready to mint per-client middleware.
#[derive(Debug, Clone)]
pub struct Dinar {
    layer: usize,
    config: DinarConfig,
}

impl Dinar {
    /// Runs the full initialization phase (§4.1): every client probes its
    /// local data for the most privacy-sensitive layer and the clients agree
    /// through the Byzantine-tolerant broadcast vote.
    ///
    /// `client_data` holds each client's `(members, held-out)` pair;
    /// `byzantine` lists clients that misbehave during the vote.
    ///
    /// # Errors
    ///
    /// Propagates [`agree_on_layer`] errors, including
    /// [`DinarError::NoAgreement`].
    pub fn initialize(
        client_data: &[(Dataset, Dataset)],
        model_fn: impl Fn(&mut Rng) -> dinar_nn::Result<Model>,
        byzantine: &[usize],
        init: &InitConfig,
        config: DinarConfig,
    ) -> Result<Self> {
        let layer = agree_on_layer(client_data, model_fn, byzantine, init)?;
        Ok(Dinar { layer, config })
    }

    /// Skips the vote and pins the protected layer directly (e.g. the
    /// penultimate layer the paper reports the consensus converges to).
    ///
    /// # Errors
    ///
    /// Returns [`DinarError::InvalidConfig`] if `layer` is out of range for
    /// a model with `num_trainable_layers` layers.
    pub fn with_layer(
        layer: usize,
        num_trainable_layers: usize,
        config: DinarConfig,
    ) -> Result<Self> {
        if layer >= num_trainable_layers {
            return Err(DinarError::InvalidConfig {
                reason: format!(
                    "layer {layer} out of range for {num_trainable_layers} trainable layers"
                ),
            });
        }
        Ok(Dinar { layer, config })
    }

    /// The agreed privacy-sensitive layer index `p`.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Mints the middleware for one client (each client gets its own
    /// obfuscation randomness stream and private-layer store).
    pub fn middleware_for(&self, client_id: usize) -> DinarMiddleware {
        DinarMiddleware::new(self.layer, self.config, client_id as u64)
    }

    /// The adaptive optimizer of Algorithm 1 (lines 8–14) at the given
    /// learning rate.
    pub fn recommended_optimizer(learning_rate: f32) -> Adagrad {
        Adagrad::new(learning_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_fl::ClientMiddleware;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    #[test]
    fn with_layer_validates_range() {
        assert!(Dinar::with_layer(5, 6, DinarConfig::default()).is_ok());
        assert!(matches!(
            Dinar::with_layer(6, 6, DinarConfig::default()),
            Err(DinarError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn minted_middleware_protects_the_agreed_layer() {
        let dinar = Dinar::with_layer(1, 3, DinarConfig::default()).unwrap();
        let mut mw = dinar.middleware_for(0);
        assert_eq!(mw.private_layers(), &[1]);
        let mut params = dinar_nn::ModelParams::new(vec![
            LayerParams::new(vec![Tensor::full(&[4], 1.0)]),
            LayerParams::new(vec![Tensor::full(&[4], 2.0)]),
            LayerParams::new(vec![Tensor::full(&[4], 3.0)]),
        ]);
        mw.transform_upload(0, &mut params).unwrap();
        assert_eq!(params.layers[0].tensors[0].as_slice(), &[1.0; 4]);
        assert!(params.layers[1].tensors[0].as_slice().iter().all(|&x| x != 2.0));
    }

    #[test]
    fn clients_get_distinct_obfuscation_streams() {
        let dinar = Dinar::with_layer(0, 2, DinarConfig::default()).unwrap();
        let make = |id: usize| {
            let mut mw = dinar.middleware_for(id);
            let mut p = dinar_nn::ModelParams::new(vec![
                LayerParams::new(vec![Tensor::full(&[16], 1.0)]),
                LayerParams::new(vec![Tensor::full(&[4], 2.0)]),
            ]);
            mw.transform_upload(0, &mut p).unwrap();
            p
        };
        assert_ne!(make(0), make(1));
    }

    #[test]
    fn initialize_runs_the_vote() {
        let mut rng = Rng::seed_from(0);
        let data = |rng: &mut Rng| {
            let features = rng.randn(&[40, 6]);
            let labels = (0..40).map(|i| i % 3).collect();
            Dataset::new(features, labels, &[6], 3).unwrap()
        };
        let client_data: Vec<_> = (0..3).map(|_| (data(&mut rng), data(&mut rng))).collect();
        let dinar = Dinar::initialize(
            &client_data,
            |rng| models::mlp(&[6, 12, 3], Activation::ReLU, rng),
            &[],
            &InitConfig {
                warmup_epochs: 3,
                ..InitConfig::default()
            },
            DinarConfig::default(),
        )
        .unwrap();
        assert!(dinar.layer() < 2);
    }
}

use dinar_data::catalog::{self, Profile};
use dinar_data::split::attack_split;
use dinar_metrics::histogram::js_divergence_samples;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models;
use dinar_nn::optim::{Adagrad, Optimizer};
use dinar_tensor::Rng;

fn main() {
    let mut rng = Rng::seed_from(3);
    let entry = catalog::purchase100(Profile::Mini);
    let ds = entry.generate(&mut rng).unwrap();
    let split = attack_split(&ds, &mut rng).unwrap();
    let members = split.train.subset(&(0..300).collect::<Vec<_>>()).unwrap();
    let mut model = models::fcnn6(600, 100, 64, &mut rng).unwrap();
    let mut opt = Adagrad::new(0.05);
    for _ in 0..40 {
        for idx in members.batch_indices(64, &mut rng) {
            let b = members.batch(&idx).unwrap();
            let logits = model.forward(&b.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &b.labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
    }
    // Collect per-layer activation-gradient populations (log-magnitude).
    let mut pops: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 2]; // [member, nonmember][layer]
    for (pi, data) in [&members, &split.test].iter().enumerate() {
        let mut layer_pops: Vec<Vec<f32>> = vec![Vec::new(); 6];
        for chunk in 0..12 {
            let idx: Vec<usize> = (chunk*8..(chunk+1)*8).collect();
            let b = data.batch(&idx).unwrap();
            let logits = model.forward(&b.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &b.labels).unwrap();
            model.zero_grad();
            let taps = model.backward_with_taps(&grad).unwrap();
            for (l, t) in taps.iter().enumerate() {
                layer_pops[l].extend(t.as_slice().iter().map(|&g| (g.abs()+1e-12).log10()));
            }
        }
        pops[pi] = layer_pops;
    }
    let d: Vec<f64> = (0..6).map(|l| js_divergence_samples(&pops[0][l], &pops[1][l], 30)).collect();
    println!("activation-grad divergences: {:?}", d.iter().map(|x| (x*1000.0).round()/1000.0).collect::<Vec<_>>());
}

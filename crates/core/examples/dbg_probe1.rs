use dinar::sensitivity::{layer_divergences, SensitivityConfig};
use dinar_data::catalog::{self, Profile};
use dinar_data::split::attack_split;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models;
use dinar_nn::optim::{Adagrad, Optimizer};
use dinar_tensor::Rng;

fn main() {
    let mut rng = Rng::seed_from(3);
    let entry = catalog::purchase100(Profile::Mini);
    let ds = entry.generate(&mut rng).unwrap();
    let split = attack_split(&ds, &mut rng).unwrap();
    let members = split.train.subset(&(0..300).collect::<Vec<_>>()).unwrap();
    let mut model = models::fcnn6(600, 100, 64, &mut rng).unwrap();
    let mut opt = Adagrad::new(0.05);
    for _ in 0..40 {
        for idx in members.batch_indices(64, &mut rng) {
            let b = members.batch(&idx).unwrap();
            let logits = model.forward(&b.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &b.labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
    }
    for pb in [1usize, 4] {
        let cfg = SensitivityConfig { probe_batch: pb, max_batches: 32, bins: 30 };
        let d = layer_divergences(&mut model, &members, &split.test, &cfg, &mut rng).unwrap();
        println!("probe_batch={pb}: {:?}", d.iter().map(|x| (x*1000.0).round()/1000.0).collect::<Vec<_>>());
    }
}

use dinar_data::catalog::{self, Profile};
use dinar_data::split::attack_split;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models;
use dinar_nn::optim::{Adagrad, Optimizer};
use dinar_tensor::Rng;

fn main() {
    let mut rng = Rng::seed_from(3);
    let entry = catalog::gtsrb(Profile::Mini);
    let ds = entry.generate(&mut rng).unwrap();
    let split = attack_split(&ds, &mut rng).unwrap();
    let members = split.train.subset(&(0..128).collect::<Vec<_>>()).unwrap();
    for lr in [0.05f32, 0.15] {
        let mut rng2 = Rng::seed_from(4);
        let mut model = models::vgg11_mini(3, 43, &mut rng2).unwrap();
        let mut opt = Adagrad::new(lr);
        for e in 0..100 {
            for idx in members.batch_indices(64, &mut rng2) {
                let b = members.batch(&idx).unwrap();
                let logits = model.forward(&b.features, true).unwrap();
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &b.labels).unwrap();
                model.zero_grad();
                model.backward(&grad).unwrap();
                opt.step(&mut model).unwrap();
            }
            if e % 25 == 24 {
                let mb = members.full_batch().unwrap();
                let tb = split.test.full_batch().unwrap();
                println!("lr {lr} epoch {e}: train {:.2} test {:.2}",
                    model.accuracy(&mb.features, &mb.labels).unwrap(),
                    model.accuracy(&tb.features, &tb.labels).unwrap());
            }
        }
    }
}

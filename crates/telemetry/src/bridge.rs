//! Bridges from the `dinar-tensor` counters into the metrics registry.
//!
//! The tensor crate cannot depend on this one (it supplies the JSON layer
//! telemetry exports with), so its kernels count into the plain atomics of
//! [`dinar_tensor::profile`] and its allocator into
//! [`dinar_tensor::alloc`]; these helpers copy snapshots of both into a
//! [`Telemetry`] registry under stable metric names.
//!
//! Kernel-work counters (`tensor.matmul.*`, `tensor.im2col.*`,
//! `tensor.col2im.*`, `tensor.rng.*`) are logical and thread-invariant, so
//! they land as deterministic metrics. Pool scheduling (`tensor.pool.*`) and the
//! process-global alloc ledger (`tensor.alloc.*`) vary with the pool width
//! and with whatever else the process runs, so they are tagged volatile.

use crate::Telemetry;
use dinar_tensor::{alloc, profile};

/// Records a kernel-counter delta (see
/// [`KernelSnapshot::delta_since`](profile::KernelSnapshot::delta_since))
/// into `tel`.
pub fn record_kernel_delta(tel: &Telemetry, delta: &profile::KernelSnapshot) {
    if !tel.is_enabled() {
        return;
    }
    tel.counter_add("tensor.matmul.calls", delta.matmul_calls);
    tel.counter_add("tensor.matmul.flops", delta.matmul_flops);
    tel.counter_add("tensor.im2col.calls", delta.im2col_calls);
    tel.counter_add("tensor.im2col.bytes", delta.im2col_bytes);
    tel.counter_add("tensor.col2im.calls", delta.col2im_calls);
    tel.counter_add("tensor.col2im.bytes", delta.col2im_bytes);
    // Bulk noise volume: one count per element filled, derived from the
    // request length alone — deterministic like the other kernel counters.
    tel.counter_add("tensor.rng.samples", delta.rng_samples);
    tel.counter_add_volatile("tensor.pool.regions", delta.pool_regions);
    tel.counter_add_volatile("tensor.pool.tasks", delta.pool_tasks);
    tel.gauge_max_volatile("tensor.pool.max_width", delta.pool_max_width as f64);
}

/// Records the current process-wide alloc ledger into `tel` as volatile
/// high-water gauges.
pub fn record_alloc_gauges(tel: &Telemetry) {
    if !tel.is_enabled() {
        return;
    }
    tel.gauge_max_volatile("tensor.alloc.live_bytes", alloc::live_bytes() as f64);
    tel.gauge_max_volatile("tensor.alloc.peak_bytes", alloc::peak_bytes() as f64);
}

/// Records the peak extra bytes a [`MemoryScope`](alloc::MemoryScope)
/// observed, under `name`, as a volatile high-water gauge (per-thread
/// attribution shifts with the fan-out schedule).
pub fn record_scope_peak(tel: &Telemetry, name: &str, scope: &alloc::MemoryScope) {
    tel.gauge_max_volatile(name, scope.peak_extra_bytes() as f64);
}

/// Records one round of wire-plane traffic under the stable
/// `fl.transport.*` names. Byte and frame counts are functions of the
/// model architecture and the codec alone — independent of pool width,
/// arrival order and wall time — so they land as deterministic counters.
pub fn record_wire_round(tel: &Telemetry, bytes_down: u64, bytes_up: u64, frames: u64) {
    if !tel.is_enabled() {
        return;
    }
    tel.counter_add("fl.transport.bytes_down", bytes_down);
    tel.counter_add("fl.transport.bytes_up", bytes_up);
    tel.counter_add("fl.transport.frames", frames);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricData;
    use crate::ManualClock;
    use dinar_tensor::Tensor;
    use std::sync::Arc;

    #[test]
    fn kernel_delta_lands_under_stable_names() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let before = profile::snapshot();
        let a = Tensor::ones(&[3, 4]);
        let b = Tensor::ones(&[4, 2]);
        a.matmul(&b).unwrap();
        dinar_tensor::Rng::seed_from(0).randn(&[64]);
        record_kernel_delta(&tel, &profile::snapshot().delta_since(&before));
        let metrics = tel.metrics();
        for (name, at_least) in [("tensor.matmul.calls", 1), ("tensor.rng.samples", 64)] {
            let m = metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(!m.volatile, "{name} must be deterministic");
            match m.data {
                MetricData::Counter(v) => assert!(v >= at_least, "{name} = {v}"),
                ref other => panic!("expected counter, got {other:?}"),
            }
        }
        assert!(metrics
            .iter()
            .any(|m| m.name == "tensor.pool.regions" && m.volatile));
    }

    #[test]
    fn alloc_and_scope_gauges_are_volatile() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let scope = alloc::MemoryScope::enter();
        let _t = Tensor::zeros(&[1024]);
        record_alloc_gauges(&tel);
        record_scope_peak(&tel, "client.peak_bytes", &scope);
        for name in ["tensor.alloc.live_bytes", "tensor.alloc.peak_bytes", "client.peak_bytes"] {
            let m = tel
                .metrics()
                .into_iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(m.volatile, "{name} must be volatile");
            match m.data {
                MetricData::Gauge(v) => assert!(v >= 0.0),
                other => panic!("expected gauge, got {other:?}"),
            }
        }
    }

    #[test]
    fn wire_round_lands_as_deterministic_counters() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        record_wire_round(&tel, 1000, 250, 8);
        record_wire_round(&tel, 1000, 250, 8);
        for (name, want) in [
            ("fl.transport.bytes_down", 2000),
            ("fl.transport.bytes_up", 500),
            ("fl.transport.frames", 16),
        ] {
            let m = tel
                .metrics()
                .into_iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(!m.volatile, "{name} must be deterministic");
            match m.data {
                MetricData::Counter(v) => assert_eq!(v, want, "{name}"),
                ref other => panic!("expected counter, got {other:?}"),
            }
        }
    }

    #[test]
    fn bridges_are_noops_when_disabled() {
        let tel = Telemetry::disabled();
        record_kernel_delta(&tel, &profile::snapshot());
        record_alloc_gauges(&tel);
        record_wire_round(&tel, 1, 1, 1);
        assert!(tel.metrics().is_empty());
    }
}

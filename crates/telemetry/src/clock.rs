//! Re-export shim: the [`Clock`] abstraction moved to `dinar_metrics::clock`
//! so the cost accounting (`dinar_metrics::cost`) can consume it without a
//! dependency cycle (telemetry depends on metrics, not the reverse). This
//! module keeps `dinar_telemetry::clock::{Clock, WallClock, ManualClock}`
//! and the crate-root re-exports working for every existing caller.

pub use dinar_metrics::clock::{Clock, ManualClock, WallClock};

//! Flight recorder: bounded per-thread rings of structured events for
//! postmortem dumps.
//!
//! The metrics registry and span sink answer "how much / how long", but
//! when a threaded FL round dies mid-flight (a client panic, a missed
//! deadline, a quorum failure) they say nothing about *what each thread
//! was doing just before*. The flight recorder fills that gap: every
//! thread that records through an armed [`Telemetry`](crate::Telemetry)
//! handle appends [`FlightEvent`]s to its own bounded ring (oldest events
//! fall off the front), and a dump emits the union of all rings as sorted
//! JSONL — the black-box tape for the crash investigation.
//!
//! # Determinism
//!
//! A dump must be byte-identical across `DINAR_THREADS` widths so the
//! postmortem itself can be regression-tested. Three properties make the
//! sorted dump width-independent even though ring *assignment* follows
//! threads:
//!
//! 1. every event carries a `scope` (the innermost span path open on the
//!    recording thread), so logically-distinct work sites never collide;
//! 2. the sequence number is a per-ring ordinal **per `(kind, scope,
//!    name)` tuple**, not a global counter — repeats of one logical event
//!    stream always happen on one thread (a client's whole round runs in
//!    one task), so their ordinals are scheduling-independent;
//! 3. the dump sorts by the full event tuple, erasing ring identity.
//!
//! Timestamps come from the sink's injectable [`Clock`](crate::Clock);
//! under a [`ManualClock`](crate::ManualClock) they are deterministic too.
//!
//! Recording is **disarmed by default**: an armed check is one relaxed
//! atomic load, so instrumented hot paths pay nothing until a postmortem
//! consumer (a test, `DINAR_FLIGHT=…`) arms the recorder.

use dinar_tensor::json::{Json, ToJson};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Per-thread ring capacity: the "last N events" each thread keeps.
pub const RING_CAPACITY: usize = 4096;

/// One recorded event. The derived order — `(scope, kind, name, seq,
/// t_us, value)` — is the canonical dump order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlightEvent {
    /// Innermost span path open on the recording thread ("" at top level).
    pub scope: String,
    /// Event class: `span_enter`, `span_exit`, `metric`, `fault`, `send`,
    /// or a caller-defined tag.
    pub kind: &'static str,
    /// Event name within the class (span leaf name, counter name, …).
    pub name: String,
    /// Ordinal among events with this `(kind, scope, name)` on one ring.
    pub seq: u64,
    /// Clock reading when the event was recorded, in microseconds.
    pub t_us: u64,
    /// Event payload (span duration, counter delta, round number, …).
    pub value: u64,
}

/// One thread's bounded tape plus its per-tuple ordinal counters.
#[derive(Debug, Default)]
struct ThreadRing {
    events: VecDeque<FlightEvent>,
    ordinals: BTreeMap<(&'static str, String, String), u64>,
}

impl ThreadRing {
    fn push(&mut self, scope: String, kind: &'static str, name: String, t_us: u64, value: u64) {
        let seq = {
            let slot = self
                .ordinals
                .entry((kind, scope.clone(), name.clone()))
                .or_insert(0);
            let seq = *slot;
            *slot += 1;
            seq
        };
        if self.events.len() == RING_CAPACITY {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            scope,
            kind,
            name,
            seq,
            t_us,
            value,
        });
    }
}

/// Hands out process-unique recorder ids so thread-local ring caches can
/// key on a value that is never reused (an `Arc` address could be).
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, one per recorder it has recorded into.
    static RINGS: RefCell<Vec<(u64, Arc<Mutex<ThreadRing>>)>> =
        const { RefCell::new(Vec::new()) };
}

/// The per-thread-ring event recorder owned by an enabled telemetry sink.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    id: u64,
    armed: AtomicBool,
    /// Every ring ever registered by a recording thread; dumps walk this.
    registry: Mutex<Vec<Arc<Mutex<ThreadRing>>>>,
}

impl FlightRecorder {
    pub(crate) fn new() -> Self {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            armed: AtomicBool::new(false),
            registry: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    pub(crate) fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// This thread's ring for this recorder, registering one on first use.
    fn ring(&self) -> Arc<Mutex<ThreadRing>> {
        RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return ring.clone();
            }
            let ring = Arc::new(Mutex::new(ThreadRing::default()));
            self.registry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(ring.clone());
            cache.push((self.id, ring.clone()));
            ring
        })
    }

    /// Records one event on the calling thread's ring (no-op unless armed).
    pub(crate) fn record(
        &self,
        scope: &str,
        kind: &'static str,
        name: &str,
        t_us: u64,
        value: u64,
    ) {
        if !self.armed() {
            return;
        }
        let ring = self.ring();
        ring.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(scope.to_string(), kind, name.to_string(), t_us, value);
    }

    /// All retained events across every ring, in canonical sorted order.
    pub(crate) fn events(&self) -> Vec<FlightEvent> {
        let rings: Vec<Arc<Mutex<ThreadRing>>> = self
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut events = Vec::new();
        for ring in rings {
            let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.events.iter().cloned());
        }
        events.sort();
        events
    }

    /// The sorted dump as JSONL, one event per line with a fixed field
    /// order — byte-identical across pool widths (module docs).
    pub(crate) fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(
                &Json::obj([
                    ("scope", e.scope.to_json()),
                    ("kind", e.kind.to_json()),
                    ("name", e.name.to_json()),
                    ("seq", e.seq.to_json()),
                    ("t_us", e.t_us.to_json()),
                    ("value", e.value.to_json()),
                ])
                .dump(),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recorder_records_nothing() {
        let rec = FlightRecorder::new();
        rec.record("", "metric", "x", 0, 1);
        assert!(rec.events().is_empty());
        assert_eq!(rec.dump_jsonl(), "");
    }

    #[test]
    fn ordinals_count_per_tuple() {
        let rec = FlightRecorder::new();
        rec.arm();
        rec.record("round[1]", "metric", "steps", 0, 1);
        rec.record("round[1]", "metric", "steps", 0, 2);
        rec.record("round[2]", "metric", "steps", 0, 3);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].seq, events[0].value), (0, 1));
        assert_eq!((events[1].seq, events[1].value), (1, 2));
        // Different scope restarts the ordinal stream.
        assert_eq!((events[2].seq, events[2].value), (0, 3));
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let rec = FlightRecorder::new();
        rec.arm();
        rec.record("b", "fault", "crash", 7, 2);
        rec.record("a", "send", "client[0]", 3, 1);
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"scope\":\"a\""), "{dump}");
        assert!(lines[1].contains("\"scope\":\"b\""), "{dump}");
        assert_eq!(
            lines[0],
            r#"{"scope":"a","kind":"send","name":"client[0]","seq":0,"t_us":3,"value":1}"#
        );
    }

    #[test]
    fn ring_is_bounded() {
        let rec = FlightRecorder::new();
        rec.arm();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            rec.record("", "metric", "tick", i, i);
        }
        let events = rec.events();
        assert_eq!(events.len(), RING_CAPACITY);
        // The oldest 10 fell off the front.
        assert_eq!(events[0].seq, 10);
    }

    #[test]
    fn rings_from_many_threads_merge_into_one_dump() {
        let rec = Arc::new({
            let r = FlightRecorder::new();
            r.arm();
            r
        });
        // lint: allow(L006, dedicated test threads exercise per-thread rings)
        std::thread::scope(|s| {
            for t in 0..3usize {
                let rec = rec.clone();
                s.spawn(move || {
                    rec.record(&format!("client[{t}]"), "send", "update", 0, t as u64);
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].scope, "client[0]");
        assert_eq!(events[2].scope, "client[2]");
    }
}

//! # dinar-telemetry
//!
//! Observability substrate for the DINAR reproduction: hierarchical
//! [`span`]s timed by an injectable [`Clock`], a thread-safe metrics
//! [`registry`] (counters, gauges, histograms), a [`bridge`] from the
//! `dinar-tensor` kernel/alloc counters, deterministic JSONL /
//! summary-tree / trace-event [`export`]ers, a postmortem flight
//! [`recorder`], and a privacy-budget [`ledger`].
//!
//! The paper's evaluation is built from per-phase measurements — per-round
//! training time, per-layer cost, memory footprint (Figs 8–11, Tables 2–3)
//! — and this crate is the one instrument all layers share: `dinar-nn`
//! times every layer's forward/backward, `dinar-fl` wraps rounds, clients
//! and middleware in spans, and `dinar-bench` dumps the result next to each
//! figure's data. The audit plane rides the same handle: defenses charge
//! their (ε, δ) spend to the [`ledger`], and the flight [`recorder`]
//! keeps a bounded per-thread tape for crash postmortems.
//!
//! # The handle
//!
//! [`Telemetry`] is a cheap clonable handle; all clones feed one sink. The
//! [`Telemetry::disabled`] handle (also [`Default`]) holds no allocation
//! and makes every operation an early-return on a `None` — instrumented
//! hot paths cost one branch when profiling is off.
//!
//! ```
//! use dinar_telemetry::{ManualClock, Telemetry};
//! use std::sync::Arc;
//!
//! let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
//! {
//!     let _round = tel.span("round[1]");
//!     let _train = tel.span("train");
//!     tel.counter_add("steps", 1);
//! }
//! assert_eq!(tel.spans().len(), 2);
//! ```
//!
//! # Determinism contract
//!
//! With a [`ManualClock`] and deterministic program flow, the *sorted*
//! span list and the non-volatile metrics are identical for any
//! `DINAR_THREADS`. See [`registry`] for which updates commute,
//! [`export`] for the sorted, volatile-filtered emission, and
//! [`recorder`] for why flight dumps are width-independent too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod clock;
pub mod export;
pub mod ledger;
pub mod recorder;
pub mod registry;
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use ledger::PrivacyAccount;
pub use recorder::FlightEvent;
pub use registry::{Counter, Gauge, Histo, MetricData, MetricValue, Registry};
pub use span::{SpanGuard, SpanRecord};

use dinar_tensor::json::Json;
use ledger::PrivacyLedger;
use recorder::FlightRecorder;
use span::TidAssigner;
use std::sync::{Arc, Mutex, PoisonError};

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    /// Shared with live [`SpanGuard`]s, which outlive no handle but may be
    /// held on pool threads.
    spans: Arc<Mutex<Vec<SpanRecord>>>,
    registry: Registry,
    tids: TidAssigner,
    flight: Arc<FlightRecorder>,
    ledger: PrivacyLedger,
}

/// Shared handle to one telemetry sink (spans + metrics + clock +
/// flight recorder + privacy ledger).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled sink timed by a fresh [`WallClock`].
    pub fn new() -> Self {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// An enabled sink timed by `clock` — inject a [`ManualClock`] for
    /// replayable traces.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                spans: Arc::new(Mutex::new(Vec::new())),
                registry: Registry::new(),
                tids: TidAssigner::new(),
                flight: Arc::new(FlightRecorder::new()),
                ledger: PrivacyLedger::new(),
            })),
        }
    }

    /// The no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// `true` if this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ------------------------------------------------------------------
    // Spans
    // ------------------------------------------------------------------

    /// Opens a span named `name` under the innermost span already open on
    /// this thread (a root span if none is).
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let path = match span::current_path() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        SpanGuard::begin(
            inner.spans.clone(),
            inner.clock.clone(),
            path,
            inner.tids.current(),
            self.armed_flight(),
        )
    }

    /// Opens a span named `name` under the explicit `parent` path —
    /// the lineage seed for work fanned out to pool threads, whose
    /// thread-local span stack starts empty. An empty `parent` opens a
    /// root span.
    pub fn span_at(&self, parent: &str, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let path = if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        SpanGuard::begin(
            inner.spans.clone(),
            inner.clock.clone(),
            path,
            inner.tids.current(),
            self.armed_flight(),
        )
    }

    /// Snapshot of all completed spans, in emission order (sort before
    /// comparing across runs — see [`export::sorted_spans`]).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    /// The clock driving this sink ([`None`] when disabled).
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner.as_ref().map(|i| i.clock.clone())
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// The flight recorder, only when armed (the per-event fast path).
    fn armed_flight(&self) -> Option<Arc<FlightRecorder>> {
        match &self.inner {
            Some(inner) if inner.flight.armed() => Some(inner.flight.clone()),
            _ => None,
        }
    }

    /// Arms the flight recorder: from now on spans, deterministic counter
    /// updates and explicit [`flight_record`](Telemetry::flight_record)
    /// calls append to the per-thread postmortem rings. Disarmed recording
    /// costs one relaxed atomic load per event site.
    pub fn flight_arm(&self) {
        if let Some(inner) = &self.inner {
            inner.flight.arm();
        }
    }

    /// `true` once [`flight_arm`](Telemetry::flight_arm) has been called.
    pub fn flight_armed(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.flight.armed())
    }

    /// Records one structured event on the calling thread's flight ring
    /// (no-op when disabled or disarmed). `kind` classifies the event
    /// (`"fault"`, `"send"`, …); the scope is the innermost span open on
    /// this thread; the timestamp comes from the sink clock.
    pub fn flight_record(&self, kind: &'static str, name: &str, value: u64) {
        if let Some(flight) = self.armed_flight() {
            if let Some(inner) = &self.inner {
                let scope = span::current_path().unwrap_or_default();
                let t_us = u64::try_from(inner.clock.elapsed().as_micros()).unwrap_or(u64::MAX);
                flight.record(&scope, kind, name, t_us, value);
            }
        }
    }

    /// All retained flight events in canonical sorted order (empty when
    /// disabled or disarmed).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.flight.events(),
        }
    }

    /// The sorted flight dump as JSONL — byte-identical across pool
    /// widths for deterministic programs (see [`recorder`] module docs).
    pub fn flight_dump_jsonl(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => inner.flight.dump_jsonl(),
        }
    }

    /// Writes the flight dump to `<dir>/FLIGHT_<reason>.jsonl` when the
    /// `DINAR_FLIGHT` environment variable is set (`1` means the default
    /// `bench-results` directory; any other value names the directory).
    /// Best-effort: IO failures are swallowed — a postmortem writer must
    /// never take the process down with it. Returns the path written.
    pub fn flight_dump_if_requested(&self, reason: &str) -> Option<std::path::PathBuf> {
        if !self.flight_armed() {
            return None;
        }
        let dir = match std::env::var("DINAR_FLIGHT") {
            Ok(v) if v == "1" => "bench-results".to_string(),
            Ok(v) if !v.is_empty() => v,
            _ => return None,
        };
        let dump = self.flight_dump_jsonl();
        let path = std::path::Path::new(&dir).join(format!("FLIGHT_{reason}.jsonl"));
        let _ = std::fs::create_dir_all(&dir);
        match std::fs::write(&path, dump) {
            Ok(()) => Some(path),
            Err(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Privacy ledger
    // ------------------------------------------------------------------

    /// Charges (ε, δ) spent by `defense` against `entity`'s budget and
    /// refreshes the deterministic gauge `privacy.eps.<defense>.<entity>`
    /// with the basic-composition total. Defense transforms are required
    /// to call this (or [`privacy_charge_zero`](Telemetry::privacy_charge_zero))
    /// on every application — lint rule L016.
    pub fn privacy_charge(&self, defense: &str, entity: &str, eps: f64, delta: f64) {
        if let Some(inner) = &self.inner {
            inner.ledger.charge(defense, entity, eps, delta);
            let total = inner.ledger.eps_basic(defense, entity);
            inner
                .registry
                .gauge(&format!("privacy.eps.{defense}.{entity}"), false)
                .set(total);
        }
    }

    /// Registers a zero-cost ledger entry: `defense` ran for `entity` and
    /// certifies it spent no differential-privacy budget. Keeps audit
    /// coverage total — "spends nothing" is reported, not inferred.
    pub fn privacy_charge_zero(&self, defense: &str, entity: &str) {
        self.privacy_charge(defense, entity, 0.0, 0.0);
    }

    /// Every ledger account composed (basic + advanced), in
    /// `(defense, entity)` order. Empty when disabled or nothing charged.
    pub fn privacy_accounts(&self) -> Vec<PrivacyAccount> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.ledger.accounts(),
        }
    }

    /// The audit report as JSON — the payload of `AUDIT_privacy.json`.
    pub fn privacy_report(&self) -> Json {
        match &self.inner {
            None => Json::obj([
                ("slack", Json::Num(ledger::ADVANCED_COMPOSITION_SLACK)),
                ("accounts", Json::Arr(Vec::new())),
            ]),
            Some(inner) => inner.ledger.report(),
        }
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// The metrics registry ([`None`] when disabled). Hot paths should
    /// cache the typed handles this hands out.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Adds `v` to the deterministic counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, false).add(v);
            if inner.flight.armed() {
                let scope = span::current_path().unwrap_or_default();
                let t_us = u64::try_from(inner.clock.elapsed().as_micros()).unwrap_or(u64::MAX);
                inner.flight.record(&scope, "metric", name, t_us, v);
            }
        }
    }

    /// Adds `v` to the **volatile** (scheduling-dependent) counter `name`.
    pub fn counter_add_volatile(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, true).add(v);
        }
    }

    /// Raises the deterministic gauge `name` to `v` if larger
    /// (commutative — safe from concurrent clients).
    pub fn gauge_max(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, false).maximize(v);
        }
    }

    /// Overwrites the deterministic gauge `name` (single-writer
    /// discipline: concurrent setters make the value last-write-wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, false).set(v);
        }
    }

    /// Overwrites the **volatile** gauge `name`.
    pub fn gauge_set_volatile(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, true).set(v);
        }
    }

    /// Raises the **volatile** gauge `name` to `v` if larger.
    pub fn gauge_max_volatile(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, true).maximize(v);
        }
    }

    /// Records `x` into the deterministic histogram `name`, creating it
    /// with `bins` bins over `[lo, hi]` on first touch.
    pub fn observe(&self, name: &str, lo: f64, hi: f64, bins: usize, x: f32) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, lo, hi, bins, false).observe(x);
        }
    }

    /// Snapshots every metric in name order (empty when disabled).
    pub fn metrics(&self) -> Vec<MetricValue> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.registry.export(),
        }
    }

    /// Current value of the counter `name`, or 0 when the counter does not
    /// exist (or telemetry is disabled). Convenience for tests and reports
    /// that assert on a single counter without walking
    /// [`metrics`](Telemetry::metrics).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics()
            .into_iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.data {
                MetricData::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_default_and_free() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.counter_add("x", 1);
        tel.gauge_max("y", 1.0);
        tel.observe("z", 0.0, 1.0, 4, 0.5);
        tel.privacy_charge("dp", "client[0]", 1.0, 1e-5);
        tel.flight_record("fault", "crash", 1);
        assert!(tel.metrics().is_empty());
        assert!(tel.clock().is_none());
        assert!(tel.privacy_accounts().is_empty());
        assert!(tel.flight_events().is_empty());
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let other = tel.clone();
        other.counter_add("shared", 2);
        tel.counter_add("shared", 3);
        match &tel.metrics()[0].data {
            MetricData::Counter(v) => assert_eq!(*v, 5),
            other => panic!("expected counter, got {other:?}"),
        }
        drop(other.span("from-clone"));
        assert_eq!(tel.spans().len(), 1);
    }

    #[test]
    fn counter_value_reads_one_counter() {
        let tel = Telemetry::new();
        assert_eq!(tel.counter_value("missing"), 0);
        tel.counter_add("hits", 4);
        tel.counter_add("hits", 1);
        assert_eq!(tel.counter_value("hits"), 5);
        // Non-counter metrics are not misread as counters.
        tel.gauge_set("level", 9.0);
        assert_eq!(tel.counter_value("level"), 0);
        // Disabled telemetry reads zero everywhere.
        assert_eq!(Telemetry::disabled().counter_value("hits"), 0);
    }

    #[test]
    fn armed_flight_captures_spans_and_counters() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        // Disarmed: nothing captured.
        drop(tel.span("warmup"));
        tel.counter_add("ticks", 1);
        assert!(tel.flight_events().is_empty());
        tel.flight_arm();
        assert!(tel.flight_armed());
        {
            let _r = tel.span("round[1]");
            tel.counter_add("ticks", 2);
            tel.flight_record("fault", "client[0]", 7);
        }
        let events = tel.flight_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"span_enter"));
        assert!(kinds.contains(&"span_exit"));
        assert!(kinds.contains(&"metric"));
        assert!(kinds.contains(&"fault"));
        let fault = events.iter().find(|e| e.kind == "fault").unwrap();
        assert_eq!(fault.scope, "round[1]");
        assert_eq!(fault.value, 7);
    }

    #[test]
    fn privacy_charges_surface_as_gauges_and_accounts() {
        let tel = Telemetry::new();
        tel.privacy_charge("ldp", "client[0]", 2.0, 1e-5);
        tel.privacy_charge("ldp", "client[0]", 2.0, 1e-5);
        tel.privacy_charge_zero("sa", "client[1]");
        let accounts = tel.privacy_accounts();
        assert_eq!(accounts.len(), 2);
        assert!((accounts[0].eps_basic - 4.0).abs() < 1e-12);
        assert_eq!(accounts[1].eps_composed, 0.0);
        let gauge = tel
            .metrics()
            .into_iter()
            .find(|m| m.name == "privacy.eps.ldp.client[0]")
            .expect("charge publishes a gauge");
        match gauge.data {
            MetricData::Gauge(v) => assert!((v - 4.0).abs() < 1e-12),
            other => panic!("expected gauge, got {other:?}"),
        }
        let report = tel.privacy_report().dump();
        assert!(report.contains("\"defense\":\"ldp\""));
        assert!(report.contains("\"defense\":\"sa\""));
    }
}

//! # dinar-telemetry
//!
//! Observability substrate for the DINAR reproduction: hierarchical
//! [`span`]s timed by an injectable [`Clock`], a thread-safe metrics
//! [`registry`] (counters, gauges, histograms), a [`bridge`] from the
//! `dinar-tensor` kernel/alloc counters, and deterministic JSONL /
//! summary-tree [`export`]ers.
//!
//! The paper's evaluation is built from per-phase measurements — per-round
//! training time, per-layer cost, memory footprint (Figs 8–11, Tables 2–3)
//! — and this crate is the one instrument all layers share: `dinar-nn`
//! times every layer's forward/backward, `dinar-fl` wraps rounds, clients
//! and middleware in spans, and `dinar-bench` dumps the result next to each
//! figure's data.
//!
//! # The handle
//!
//! [`Telemetry`] is a cheap clonable handle; all clones feed one sink. The
//! [`Telemetry::disabled`] handle (also [`Default`]) holds no allocation
//! and makes every operation an early-return on a `None` — instrumented
//! hot paths cost one branch when profiling is off.
//!
//! ```
//! use dinar_telemetry::{ManualClock, Telemetry};
//! use std::sync::Arc;
//!
//! let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
//! {
//!     let _round = tel.span("round[1]");
//!     let _train = tel.span("train");
//!     tel.counter_add("steps", 1);
//! }
//! assert_eq!(tel.spans().len(), 2);
//! ```
//!
//! # Determinism contract
//!
//! With a [`ManualClock`] and deterministic program flow, the *sorted*
//! span list and the non-volatile metrics are identical for any
//! `DINAR_THREADS`. See [`registry`] for which updates commute and
//! [`export`] for the sorted, volatile-filtered emission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod clock;
pub mod export;
pub mod registry;
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use registry::{Counter, Gauge, Histo, MetricData, MetricValue, Registry};
pub use span::{SpanGuard, SpanRecord};

use std::sync::{Arc, Mutex, PoisonError};

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    /// Shared with live [`SpanGuard`]s, which outlive no handle but may be
    /// held on pool threads.
    spans: Arc<Mutex<Vec<SpanRecord>>>,
    registry: Registry,
}

/// Shared handle to one telemetry sink (spans + metrics + clock).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// An enabled sink timed by a fresh [`WallClock`].
    pub fn new() -> Self {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// An enabled sink timed by `clock` — inject a [`ManualClock`] for
    /// replayable traces.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                spans: Arc::new(Mutex::new(Vec::new())),
                registry: Registry::new(),
            })),
        }
    }

    /// The no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// `true` if this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ------------------------------------------------------------------
    // Spans
    // ------------------------------------------------------------------

    /// Opens a span named `name` under the innermost span already open on
    /// this thread (a root span if none is).
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let path = match span::current_path() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        SpanGuard::begin(inner.spans.clone(), inner.clock.clone(), path)
    }

    /// Opens a span named `name` under the explicit `parent` path —
    /// the lineage seed for work fanned out to pool threads, whose
    /// thread-local span stack starts empty. An empty `parent` opens a
    /// root span.
    pub fn span_at(&self, parent: &str, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let path = if parent.is_empty() {
            name.to_string()
        } else {
            format!("{parent}/{name}")
        };
        SpanGuard::begin(inner.spans.clone(), inner.clock.clone(), path)
    }

    /// Snapshot of all completed spans, in emission order (sort before
    /// comparing across runs — see [`export::sorted_spans`]).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    /// The clock driving this sink ([`None`] when disabled).
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner.as_ref().map(|i| i.clock.clone())
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// The metrics registry ([`None`] when disabled). Hot paths should
    /// cache the typed handles this hands out.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Adds `v` to the deterministic counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, false).add(v);
        }
    }

    /// Adds `v` to the **volatile** (scheduling-dependent) counter `name`.
    pub fn counter_add_volatile(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, true).add(v);
        }
    }

    /// Raises the deterministic gauge `name` to `v` if larger
    /// (commutative — safe from concurrent clients).
    pub fn gauge_max(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, false).maximize(v);
        }
    }

    /// Overwrites the deterministic gauge `name` (single-writer
    /// discipline: concurrent setters make the value last-write-wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, false).set(v);
        }
    }

    /// Overwrites the **volatile** gauge `name`.
    pub fn gauge_set_volatile(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, true).set(v);
        }
    }

    /// Raises the **volatile** gauge `name` to `v` if larger.
    pub fn gauge_max_volatile(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, true).maximize(v);
        }
    }

    /// Records `x` into the deterministic histogram `name`, creating it
    /// with `bins` bins over `[lo, hi]` on first touch.
    pub fn observe(&self, name: &str, lo: f64, hi: f64, bins: usize, x: f32) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, lo, hi, bins, false).observe(x);
        }
    }

    /// Snapshots every metric in name order (empty when disabled).
    pub fn metrics(&self) -> Vec<MetricValue> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.registry.export(),
        }
    }

    /// Current value of the counter `name`, or 0 when the counter does not
    /// exist (or telemetry is disabled). Convenience for tests and reports
    /// that assert on a single counter without walking
    /// [`metrics`](Telemetry::metrics).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics()
            .into_iter()
            .find(|m| m.name == name)
            .and_then(|m| match m.data {
                MetricData::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_default_and_free() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.counter_add("x", 1);
        tel.gauge_max("y", 1.0);
        tel.observe("z", 0.0, 1.0, 4, 0.5);
        assert!(tel.metrics().is_empty());
        assert!(tel.clock().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let other = tel.clone();
        other.counter_add("shared", 2);
        tel.counter_add("shared", 3);
        match &tel.metrics()[0].data {
            MetricData::Counter(v) => assert_eq!(*v, 5),
            other => panic!("expected counter, got {other:?}"),
        }
        drop(other.span("from-clone"));
        assert_eq!(tel.spans().len(), 1);
    }

    #[test]
    fn counter_value_reads_one_counter() {
        let tel = Telemetry::new();
        assert_eq!(tel.counter_value("missing"), 0);
        tel.counter_add("hits", 4);
        tel.counter_add("hits", 1);
        assert_eq!(tel.counter_value("hits"), 5);
        // Non-counter metrics are not misread as counters.
        tel.gauge_set("level", 9.0);
        assert_eq!(tel.counter_value("level"), 0);
        // Disabled telemetry reads zero everywhere.
        assert_eq!(Telemetry::disabled().counter_value("hits"), 0);
    }
}

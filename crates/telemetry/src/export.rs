//! Deterministic profile emission: JSONL, summary trees and coverage.
//!
//! All emitters consume a [`Telemetry`] handle and are pure functions of
//! its state. Spans are sorted by `(path, start_us, dur_us)` before
//! emission, and metrics come out of the registry in name order, so two
//! runs with the same call structure and clock produce byte-identical
//! output — the contract `tests/telemetry_snapshot.rs` pins against a
//! golden file. The deterministic mode (`include_volatile = false`) also
//! drops every metric tagged volatile (pool fan-out, alloc high-water
//! marks), which legitimately vary with `DINAR_THREADS`.

use crate::registry::{MetricData, MetricValue};
use crate::span::SpanRecord;
use crate::Telemetry;
use dinar_tensor::json::{Json, ToJson};
use std::collections::BTreeMap;

/// All completed spans sorted by `(path, start_us, dur_us)` — the
/// canonical order for cross-run comparison.
pub fn sorted_spans(tel: &Telemetry) -> Vec<SpanRecord> {
    let mut spans = tel.spans();
    spans.sort();
    spans
}

/// One JSON line per span, then one per metric.
///
/// Span lines look like
/// `{"kind":"span","path":"round[1]/train","start_us":0,"dur_us":42}`;
/// metric lines carry `kind` `counter` / `gauge` / `histogram` plus the
/// payload. With `include_volatile = false` the output is deterministic
/// (see module docs); with `true` it additionally reports the volatile
/// metrics, each tagged `"volatile":true`.
pub fn export_jsonl(tel: &Telemetry, include_volatile: bool) -> String {
    let mut lines = Vec::new();
    for span in sorted_spans(tel) {
        lines.push(
            Json::obj([
                ("kind", "span".to_json()),
                ("path", span.path.to_json()),
                ("start_us", span.start_us.to_json()),
                ("dur_us", span.dur_us.to_json()),
            ])
            .dump(),
        );
    }
    for metric in tel.metrics() {
        if metric.volatile && !include_volatile {
            continue;
        }
        lines.push(metric_line(&metric).dump());
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn metric_line(metric: &MetricValue) -> Json {
    let mut pairs = vec![(
        "kind",
        match metric.data {
            MetricData::Counter(_) => "counter",
            MetricData::Gauge(_) => "gauge",
            MetricData::Histogram { .. } => "histogram",
        }
        .to_json(),
    )];
    pairs.push(("name", metric.name.to_json()));
    match &metric.data {
        MetricData::Counter(v) => pairs.push(("value", v.to_json())),
        MetricData::Gauge(v) => pairs.push(("value", v.to_json())),
        MetricData::Histogram { lo, hi, counts, total } => {
            pairs.push(("lo", lo.to_json()));
            pairs.push(("hi", hi.to_json()));
            pairs.push(("total", total.to_json()));
            pairs.push(("counts", counts.to_json()));
        }
    }
    if metric.volatile {
        pairs.push(("volatile", true.to_json()));
    }
    Json::obj(pairs)
}

/// Per-path aggregate of a span list.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PathStats {
    count: u64,
    total_us: u64,
}

fn stats_by_path(tel: &Telemetry) -> BTreeMap<String, PathStats> {
    let mut stats: BTreeMap<String, PathStats> = BTreeMap::new();
    for span in tel.spans() {
        let entry = stats.entry(span.path).or_insert(PathStats {
            count: 0,
            total_us: 0,
        });
        entry.count += 1;
        entry.total_us = entry.total_us.saturating_add(span.dur_us);
    }
    stats
}

/// A human-readable tree: one line per distinct span path in
/// lexicographic order, indented by depth, with call count and total
/// microseconds.
pub fn summary_tree(tel: &Telemetry) -> String {
    let mut out = String::new();
    for (path, stats) in stats_by_path(tel) {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(&path);
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{name}  calls={} total_us={}\n",
            stats.count, stats.total_us
        ));
    }
    out
}

/// Fraction of root-span wall time covered by direct child spans, in
/// `[0, 1]`.
///
/// For each root path (no `/`), the durations of its direct children are
/// summed and clamped to the root's own total (concurrent children can
/// overlap, summing past it); the coverage is the ratio of the clamped
/// sums to the root totals. Returns 1.0 when there is no root time to
/// cover (e.g. a never-advanced [`ManualClock`](crate::ManualClock)).
pub fn span_coverage(tel: &Telemetry) -> f64 {
    let stats = stats_by_path(tel);
    let mut root_total = 0u64;
    let mut covered = 0u64;
    for (path, s) in &stats {
        if path.contains('/') {
            continue;
        }
        root_total += s.total_us;
        let prefix = format!("{path}/");
        let child_sum: u64 = stats
            .iter()
            .filter(|(p, _)| {
                p.starts_with(&prefix) && !p[prefix.len()..].contains('/')
            })
            .map(|(_, cs)| cs.total_us)
            .sum();
        covered += child_sum.min(s.total_us);
    }
    if root_total == 0 {
        return 1.0;
    }
    covered as f64 / root_total as f64
}

/// The process id a span belongs to in the trace-event export: the index
/// of the first `client[i]` segment on its path, or 0 for server/system
/// work. Groups every per-client track under one process row in the
/// Perfetto UI.
fn trace_pid(path: &str) -> u64 {
    for segment in path.split('/') {
        if let Some(idx) = segment
            .strip_prefix("client[")
            .and_then(|rest| rest.strip_suffix(']'))
        {
            if let Ok(pid) = idx.parse::<u64>() {
                // Client ids start a 1-based pid space; 0 stays the server.
                return pid + 1;
            }
        }
    }
    0
}

/// Chrome/Perfetto trace-event JSON over the completed spans: every span
/// becomes a `ph:"B"` / `ph:"E"` pair with `ts`/`dur` in microseconds,
/// `pid` derived from the span's `client[i]` path segment (0 = server)
/// and `tid` the recording thread's per-sink ordinal. Open the output in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Pairs are emitted adjacently in sorted-span order with a fixed field
/// order, so for a deterministic program under a
/// [`ManualClock`](crate::ManualClock) at pool width 1 the output is
/// byte-stable (the golden-snapshot contract); at wider pools `tid`
/// legitimately tracks scheduling.
pub fn trace_events(tel: &Telemetry) -> String {
    let mut events = Vec::new();
    for span in sorted_spans(tel) {
        let name = span.path.rsplit('/').next().unwrap_or(&span.path);
        let pid = trace_pid(&span.path);
        let common = [
            ("name", name.to_json()),
            ("cat", "span".to_json()),
            ("pid", pid.to_json()),
            ("tid", span.tid.to_json()),
        ];
        let mut begin = common.to_vec();
        begin.push(("ph", "B".to_json()));
        begin.push(("ts", span.start_us.to_json()));
        begin.push(("args", Json::obj([("path", span.path.to_json())])));
        events.push(Json::obj(begin));
        let mut end = common.to_vec();
        end.push(("ph", "E".to_json()));
        end.push(("ts", (span.start_us + span.dur_us).to_json()));
        events.push(Json::obj(end));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".to_json()),
    ])
    .dump()
}

/// Writes [`trace_events`] to the path named by the `DINAR_TRACE`
/// environment variable, if set (best-effort: IO errors are swallowed so
/// an exporter can never fail the run it observed). Returns the path
/// written.
pub fn write_trace_if_requested(tel: &Telemetry) -> Option<std::path::PathBuf> {
    let path = match std::env::var("DINAR_TRACE") {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => return None,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, trace_events(tel)) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;
    use std::time::Duration;

    fn manual() -> (Arc<ManualClock>, Telemetry) {
        let clock = Arc::new(ManualClock::new());
        let tel = Telemetry::with_clock(clock.clone());
        (clock, tel)
    }

    #[test]
    fn jsonl_is_sorted_and_parseable() {
        let (_, tel) = manual();
        drop(tel.span("b"));
        drop(tel.span("a"));
        tel.counter_add("z.counter", 3);
        tel.gauge_set_volatile("a.volatile", 9.0);
        let text = export_jsonl(&tel, false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "volatile gauge must be filtered:\n{text}");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("span"));
        assert_eq!(first.get("path").and_then(Json::as_str), Some("a"));
        let last = Json::parse(lines[2]).unwrap();
        assert_eq!(last.get("name").and_then(Json::as_str), Some("z.counter"));
        assert_eq!(last.get("value").and_then(Json::as_u64), Some(3));
        let with_volatile = export_jsonl(&tel, true);
        assert_eq!(with_volatile.lines().count(), 4);
        assert!(with_volatile.contains("\"volatile\":true"));
    }

    #[test]
    fn summary_tree_indents_by_depth() {
        let (clock, tel) = manual();
        {
            let _r = tel.span("round[1]");
            let _c = tel.span("client[0]");
            clock.advance(Duration::from_micros(5));
        }
        let tree = summary_tree(&tel);
        assert!(tree.contains("round[1]  calls=1 total_us=5"));
        assert!(tree.contains("  client[0]  calls=1 total_us=5"));
    }

    #[test]
    fn coverage_counts_direct_children_only() {
        let (clock, tel) = manual();
        {
            let _root = tel.span("run");
            {
                let _a = tel.span("a");
                {
                    // Grandchild: contributes to a's coverage, not run's.
                    let _leaf = tel.span("leaf");
                    clock.advance(Duration::from_micros(60));
                }
            }
            {
                let _b = tel.span("b");
                clock.advance(Duration::from_micros(30));
            }
            clock.advance(Duration::from_micros(10));
        }
        // run = 100us, direct children a (60) + b (30) = 90.
        let cov = span_coverage(&tel);
        assert!((cov - 0.9).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn coverage_clamps_overlapping_children_and_handles_zero_time() {
        let (_, tel) = manual();
        drop(tel.span("idle"));
        assert_eq!(span_coverage(&tel), 1.0);
        // Two "concurrent" children each as long as the root.
        let clock = Arc::new(ManualClock::new());
        let tel = Telemetry::with_clock(clock.clone());
        {
            let _root = tel.span("r");
            let a = tel.span_at("r", "a");
            let b = tel.span_at("r", "b");
            clock.advance(Duration::from_micros(50));
            drop(a);
            drop(b);
        }
        assert!(span_coverage(&tel) <= 1.0);
    }

    #[test]
    fn empty_telemetry_exports_empty_string() {
        assert_eq!(export_jsonl(&Telemetry::disabled(), true), "");
        assert_eq!(summary_tree(&Telemetry::disabled()), "");
    }

    #[test]
    fn trace_pid_reads_the_client_segment() {
        assert_eq!(trace_pid("round[1]/client[3]/train"), 4);
        assert_eq!(trace_pid("round[1]/aggregate"), 0);
        assert_eq!(trace_pid("client[0]"), 1);
        assert_eq!(trace_pid("round[1]/client[x]/train"), 0);
    }

    #[test]
    fn trace_events_emit_paired_b_e() {
        let (clock, tel) = manual();
        {
            let _r = tel.span("round[1]");
            {
                let _c = tel.span("client[2]");
                clock.advance(Duration::from_micros(10));
            }
            clock.advance(Duration::from_micros(5));
        }
        let text = trace_events(&tel);
        let json = Json::parse(&text).expect("trace JSON parses");
        let events = json
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 4, "two spans, one B/E pair each");
        // Sorted-span order: round[1] first, then round[1]/client[2].
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("round[1]"));
        assert_eq!(events[0].get("pid").and_then(Json::as_u64), Some(0));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("E"));
        assert_eq!(events[1].get("ts").and_then(Json::as_u64), Some(15));
        assert_eq!(events[2].get("name").and_then(Json::as_str), Some("client[2]"));
        assert_eq!(events[2].get("pid").and_then(Json::as_u64), Some(3));
        assert_eq!(
            events[2]
                .get("args")
                .and_then(|a| a.get("path"))
                .and_then(Json::as_str),
            Some("round[1]/client[2]")
        );
        // All on one thread under width-1 style execution: tid 0.
        assert_eq!(events[0].get("tid").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn trace_events_of_empty_telemetry_is_valid_json() {
        let text = trace_events(&Telemetry::disabled());
        let json = Json::parse(&text).expect("parses");
        assert_eq!(
            json.get("traceEvents").and_then(Json::as_arr).map(|a| a.len()),
            Some(0)
        );
    }
}

//! Privacy-budget ledger: a per-(defense, entity) (ε, δ) accountant.
//!
//! Every defense transform in `crates/defenses` charges its differential
//! privacy cost here — the DP family (`dp-sgd`, `ldp`, `wdp`, `cdp`)
//! charges a per-application (ε, δ), while the non-DP defenses (`sa`,
//! `gc`) charge explicit **zero-cost** entries so ledger coverage is
//! total: an audit report distinguishes "this defense spends no budget"
//! from "this defense forgot to report" (lint rule L016 enforces the
//! latter can't happen silently).
//!
//! # Composition
//!
//! For `k` charges (ε₁, δ₁) … (ε_k, δ_k) against one `(defense, entity)`
//! account the ledger reports two sequential-composition bounds:
//!
//! * **basic**: ε = Σεᵢ, δ = Σδᵢ — tight for small k;
//! * **advanced** (heterogeneous Dwork–Rothblum–Vadhan): for a slack
//!   δ′ = 1e-6,
//!   ε = √(2 ln(1/δ′) · Σεᵢ²) + Σ εᵢ(e^εᵢ − 1),  δ = Σδᵢ + δ′ —
//!   asymptotically √k, tighter for long compositions of small ε.
//!
//! The headline `eps_composed` is the minimum of the two, the standard
//! "best available bound" an accountant reports. Accounts accumulate the
//! sufficient statistics (k, Σε, Σδ, Σε², Σε(e^ε−1)) so a charge is O(1)
//! and per-step DP-SGD accounting stays cheap.
//!
//! All state is deterministic: accounts live in a [`BTreeMap`] keyed by
//! `(defense, entity)` and charges are pure arithmetic, so the exported
//! report is byte-identical across runs and pool widths.

use dinar_tensor::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Slack δ′ spent by the advanced-composition bound.
pub const ADVANCED_COMPOSITION_SLACK: f64 = 1e-6;

/// Accumulated sufficient statistics for one `(defense, entity)` account.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Accum {
    charges: u64,
    sum_eps: f64,
    sum_delta: f64,
    sum_eps_sq: f64,
    /// Σ εᵢ(e^εᵢ − 1), the residual term of heterogeneous advanced
    /// composition.
    sum_eps_expm1: f64,
}

/// One composed account, as reported by [`PrivacyLedger::accounts`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyAccount {
    /// Defense name, as reported by the middleware/optimizer (`"dp-sgd"`,
    /// `"ldp"`, `"wdp"`, `"cdp"`, `"sa"`, `"gc"`, …).
    pub defense: String,
    /// Budget owner: `"client[i]"` for local defenses, `"global"` for
    /// server-side ones.
    pub entity: String,
    /// Number of charges (zero-cost charges included).
    pub charges: u64,
    /// Basic-composition ε = Σεᵢ.
    pub eps_basic: f64,
    /// Basic-composition δ = Σδᵢ.
    pub delta_basic: f64,
    /// Advanced-composition ε (module docs; ∞-free, 0 when no ε spent).
    pub eps_advanced: f64,
    /// Advanced-composition δ = Σδᵢ + δ′ (0 when no ε spent).
    pub delta_advanced: f64,
    /// min(basic, advanced) ε — the headline spent budget.
    pub eps_composed: f64,
    /// The δ that accompanies [`eps_composed`](Self::eps_composed).
    pub delta_composed: f64,
}

impl Accum {
    fn compose(&self, defense: &str, entity: &str) -> PrivacyAccount {
        let eps_basic = self.sum_eps;
        let delta_basic = self.sum_delta;
        if self.sum_eps == 0.0 {
            // Pure zero-cost account (sa/gc): both bounds are exactly zero
            // and no δ′ slack is spent.
            return PrivacyAccount {
                defense: defense.to_string(),
                entity: entity.to_string(),
                charges: self.charges,
                eps_basic,
                delta_basic,
                eps_advanced: 0.0,
                delta_advanced: delta_basic,
                eps_composed: 0.0,
                delta_composed: delta_basic,
            };
        }
        let slack = ADVANCED_COMPOSITION_SLACK;
        let eps_advanced =
            (2.0 * (1.0 / slack).ln() * self.sum_eps_sq).sqrt() + self.sum_eps_expm1;
        let delta_advanced = self.sum_delta + slack;
        let (eps_composed, delta_composed) = if eps_advanced < eps_basic {
            (eps_advanced, delta_advanced)
        } else {
            (eps_basic, delta_basic)
        };
        PrivacyAccount {
            defense: defense.to_string(),
            entity: entity.to_string(),
            charges: self.charges,
            eps_basic,
            delta_basic,
            eps_advanced,
            delta_advanced,
            eps_composed,
            delta_composed,
        }
    }
}

/// The accountant: a deterministic map of accounts behind one mutex.
#[derive(Debug, Default)]
pub(crate) struct PrivacyLedger {
    accounts: Mutex<BTreeMap<(String, String), Accum>>,
}

impl PrivacyLedger {
    pub(crate) fn new() -> Self {
        PrivacyLedger::default()
    }

    /// Charges (ε, δ) to the `(defense, entity)` account. Negative and
    /// non-finite charges are clamped to zero — the ledger only ever
    /// *under*-reports by refusing a bogus charge, never by dropping it.
    pub(crate) fn charge(&self, defense: &str, entity: &str, eps: f64, delta: f64) {
        let eps = if eps.is_finite() && eps > 0.0 { eps } else { 0.0 };
        let delta = if delta.is_finite() && delta > 0.0 { delta } else { 0.0 };
        let mut accounts = self
            .accounts
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let acc = accounts
            .entry((defense.to_string(), entity.to_string()))
            .or_default();
        acc.charges += 1;
        acc.sum_eps += eps;
        acc.sum_delta += delta;
        acc.sum_eps_sq += eps * eps;
        acc.sum_eps_expm1 += eps * eps.exp_m1();
    }

    /// Total ε spent so far by `(defense, entity)` under basic
    /// composition (0.0 for an untouched account).
    pub(crate) fn eps_basic(&self, defense: &str, entity: &str) -> f64 {
        self.accounts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(defense.to_string(), entity.to_string()))
            .map_or(0.0, |a| a.sum_eps)
    }

    /// Every account composed, in `(defense, entity)` order.
    pub(crate) fn accounts(&self) -> Vec<PrivacyAccount> {
        self.accounts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((d, e), acc)| acc.compose(d, e))
            .collect()
    }

    /// The audit report: `{"slack":…,"accounts":[…]}` with accounts in
    /// `(defense, entity)` order and a fixed field order per account.
    pub(crate) fn report(&self) -> Json {
        let accounts: Vec<Json> = self
            .accounts()
            .iter()
            .map(|a| {
                Json::obj([
                    ("defense", a.defense.to_json()),
                    ("entity", a.entity.to_json()),
                    ("charges", a.charges.to_json()),
                    ("eps_basic", a.eps_basic.to_json()),
                    ("delta_basic", a.delta_basic.to_json()),
                    ("eps_advanced", a.eps_advanced.to_json()),
                    ("delta_advanced", a.delta_advanced.to_json()),
                    ("eps_composed", a.eps_composed.to_json()),
                    ("delta_composed", a.delta_composed.to_json()),
                ])
            })
            .collect();
        Json::obj([
            ("slack", ADVANCED_COMPOSITION_SLACK.to_json()),
            ("accounts", Json::Arr(accounts)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_sums() {
        let ledger = PrivacyLedger::new();
        ledger.charge("ldp", "client[0]", 2.2, 1e-5);
        ledger.charge("ldp", "client[0]", 2.2, 1e-5);
        let acc = &ledger.accounts()[0];
        assert_eq!(acc.charges, 2);
        assert!((acc.eps_basic - 4.4).abs() < 1e-12);
        assert!((acc.delta_basic - 2e-5).abs() < 1e-18);
    }

    #[test]
    fn advanced_composition_wins_for_many_small_charges() {
        let ledger = PrivacyLedger::new();
        // 1000 steps of ε = 0.05: basic gives 50; advanced ~ √k scaling.
        for _ in 0..1000 {
            ledger.charge("dp-sgd", "client[3]", 0.05, 1e-7);
        }
        let acc = &ledger.accounts()[0];
        assert!((acc.eps_basic - 50.0).abs() < 1e-6);
        assert!(
            acc.eps_advanced < acc.eps_basic,
            "advanced {} should beat basic {}",
            acc.eps_advanced,
            acc.eps_basic
        );
        assert_eq!(acc.eps_composed, acc.eps_advanced);
        assert!((acc.delta_advanced - (1000.0 * 1e-7 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn basic_composition_wins_for_few_large_charges() {
        let ledger = PrivacyLedger::new();
        ledger.charge("cdp", "global", 2.2, 1e-5);
        let acc = &ledger.accounts()[0];
        // One charge: advanced pays the √(2 ln 1/δ′) factor, basic is ε.
        assert!(acc.eps_advanced > acc.eps_basic);
        assert_eq!(acc.eps_composed, acc.eps_basic);
        assert_eq!(acc.delta_composed, acc.delta_basic);
    }

    #[test]
    fn zero_cost_accounts_stay_exactly_zero() {
        let ledger = PrivacyLedger::new();
        ledger.charge("sa", "client[1]", 0.0, 0.0);
        ledger.charge("sa", "client[1]", 0.0, 0.0);
        let acc = &ledger.accounts()[0];
        assert_eq!(acc.charges, 2);
        assert_eq!(acc.eps_composed, 0.0);
        assert_eq!(acc.delta_composed, 0.0);
        assert_eq!(acc.eps_advanced, 0.0, "no δ′ slack for zero accounts");
    }

    #[test]
    fn bogus_charges_are_clamped_not_dropped() {
        let ledger = PrivacyLedger::new();
        ledger.charge("ldp", "client[0]", f64::NAN, -1.0);
        let acc = &ledger.accounts()[0];
        assert_eq!(acc.charges, 1);
        assert_eq!(acc.eps_basic, 0.0);
        assert_eq!(acc.delta_basic, 0.0);
    }

    #[test]
    fn accounts_and_report_are_sorted() {
        let ledger = PrivacyLedger::new();
        ledger.charge("wdp", "client[1]", 1.0, 1e-5);
        ledger.charge("cdp", "global", 1.0, 1e-5);
        let accounts = ledger.accounts();
        assert_eq!(accounts[0].defense, "cdp");
        assert_eq!(accounts[1].defense, "wdp");
        let dump = ledger.report().dump();
        assert!(dump.starts_with("{\"slack\":"));
        assert!(dump.contains("\"eps_composed\""));
    }
}

//! Hierarchical spans with scoped RAII timers.
//!
//! A span is a named interval on the injected [`Clock`](crate::Clock),
//! identified by its slash-separated **path** — e.g.
//! `round[1]/client[0]/train/fwd[0:dense]`. Paths nest lexically: a
//! [`SpanGuard`] pushes its path onto a thread-local stack at creation, so
//! spans opened while it is alive (on the same thread) become its children,
//! and pops it when dropped, appending a [`SpanRecord`] to the owning
//! [`Telemetry`](crate::Telemetry) sink.
//!
//! Work fanned out to pool threads starts with an empty stack; callers seed
//! the lineage explicitly with
//! [`Telemetry::span_at`](crate::Telemetry::span_at), passing the parent
//! path captured before the fan-out.
//!
//! # Determinism
//!
//! Record *content* depends only on the program's call structure and the
//! clock — except the [`tid`](SpanRecord::tid), a per-sink thread ordinal
//! recorded for the trace-event exporter, which tracks scheduling by
//! design. `tid` is the **last** field, so the derived sort order
//! `(path, start_us, dur_us, tid)` and the deterministic exporters (which
//! list fields explicitly and omit `tid`) are unaffected. Under a
//! [`ManualClock`](crate::ManualClock) that nobody advances, every record
//! is `(path, 0, 0, tid)`; emission *order* may vary with thread
//! interleaving, so exports sort first ([`crate::export::sorted_spans`]).

use crate::clock::Clock;
use crate::recorder::FlightRecorder;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanRecord {
    /// Slash-separated span path, root first.
    pub path: String,
    /// Clock reading when the span opened, in microseconds.
    pub start_us: u64,
    /// Time the span stayed open, in microseconds.
    pub dur_us: u64,
    /// Ordinal of the recording thread within this sink (0 = the first
    /// thread that opened a span). Scheduling-dependent; used only by the
    /// trace-event exporter, never by the deterministic ones.
    pub tid: u64,
}

thread_local! {
    /// Paths of the spans currently open on this thread, innermost last.
    static PATH_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };

    /// This thread's ordinal per telemetry sink, keyed by sink id.
    static THREAD_ORDINALS: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Path of the innermost span open on this thread, if any.
pub(crate) fn current_path() -> Option<String> {
    PATH_STACK.with(|s| s.borrow().last().cloned())
}

/// Process-unique assigner ids, never reused (unlike `Arc` addresses).
static NEXT_ASSIGNER_ID: AtomicU64 = AtomicU64::new(1);

/// Hands each recording thread a small stable ordinal within one sink —
/// the `tid` of every span that thread records.
#[derive(Debug)]
pub(crate) struct TidAssigner {
    id: u64,
    next: AtomicU64,
}

impl TidAssigner {
    pub(crate) fn new() -> Self {
        TidAssigner {
            id: NEXT_ASSIGNER_ID.fetch_add(1, Ordering::Relaxed),
            next: AtomicU64::new(0),
        }
    }

    /// The calling thread's ordinal, assigned on first use.
    pub(crate) fn current(&self) -> u64 {
        THREAD_ORDINALS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, tid)) = cache.iter().find(|(id, _)| *id == self.id) {
                return tid;
            }
            let tid = self.next.fetch_add(1, Ordering::Relaxed);
            cache.push((self.id, tid));
            tid
        })
    }
}

/// Leaf name of a slash-separated span path.
pub(crate) fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// RAII guard for an open span; records on drop. Obtain one via
/// [`Telemetry::span`](crate::Telemetry::span) or
/// [`Telemetry::span_at`](crate::Telemetry::span_at).
#[must_use = "a span measures nothing unless the guard is held"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

#[derive(Debug)]
struct GuardInner {
    sink: Arc<Mutex<Vec<SpanRecord>>>,
    clock: Arc<dyn Clock>,
    path: String,
    start_us: u64,
    tid: u64,
    /// Stack depth before this guard pushed; drop truncates back to it, so
    /// an out-of-order drop cannot leave stale ancestors behind.
    depth: usize,
    /// Armed flight recorder to notify on exit, if any.
    flight: Option<Arc<FlightRecorder>>,
}

impl SpanGuard {
    /// A guard that records nothing (disabled telemetry).
    pub(crate) fn noop() -> Self {
        SpanGuard { inner: None }
    }

    /// Opens a span at `path`, pushing it on this thread's stack.
    pub(crate) fn begin(
        sink: Arc<Mutex<Vec<SpanRecord>>>,
        clock: Arc<dyn Clock>,
        path: String,
        tid: u64,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let depth = PATH_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let depth = stack.len();
            stack.push(path.clone());
            depth
        });
        let start_us = micros(&*clock);
        if let Some(f) = &flight {
            f.record(&path, "span_enter", leaf(&path), start_us, 0);
        }
        SpanGuard {
            inner: Some(GuardInner {
                sink,
                clock,
                path,
                start_us,
                tid,
                depth,
                flight,
            }),
        }
    }

    /// The full path of this span (empty for a no-op guard).
    pub fn path(&self) -> &str {
        self.inner.as_ref().map_or("", |g| g.path.as_str())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(g) = self.inner.take() else {
            return;
        };
        let end_us = micros(&*g.clock);
        PATH_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let len = stack.len().min(g.depth);
            stack.truncate(len);
        });
        let record = SpanRecord {
            path: g.path,
            start_us: g.start_us,
            dur_us: end_us.saturating_sub(g.start_us),
            tid: g.tid,
        };
        if let Some(f) = &g.flight {
            f.record(
                &record.path,
                "span_exit",
                leaf(&record.path),
                end_us,
                record.dur_us,
            );
        }
        g.sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }
}

fn micros(clock: &dyn Clock) -> u64 {
    u64::try_from(clock.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use crate::clock::ManualClock;
    use crate::Telemetry;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn nested_spans_compose_paths() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        {
            let _outer = tel.span("round[1]");
            let _inner = tel.span("client[0]");
            let leaf = tel.span("train");
            assert_eq!(leaf.path(), "round[1]/client[0]/train");
        }
        let paths: Vec<String> = tel.spans().into_iter().map(|s| s.path).collect();
        assert!(paths.contains(&"round[1]".to_string()));
        assert!(paths.contains(&"round[1]/client[0]/train".to_string()));
    }

    #[test]
    fn manual_clock_drives_durations() {
        let clock = Arc::new(ManualClock::new());
        let tel = Telemetry::with_clock(clock.clone());
        {
            let _s = tel.span("work");
            clock.advance(Duration::from_micros(42));
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].dur_us, 42);
    }

    #[test]
    fn span_at_seeds_lineage_on_fresh_threads() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let t2 = tel.clone();
        std::thread::spawn(move || {
            let _c = t2.span_at("round[1]", "client[3]");
            let _t = t2.span("train");
        })
        .join()
        .unwrap();
        let mut paths: Vec<String> = tel.spans().into_iter().map(|s| s.path).collect();
        paths.sort();
        assert_eq!(paths, vec!["round[1]/client[3]", "round[1]/client[3]/train"]);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let g = tel.span("ignored");
            assert_eq!(g.path(), "");
        }
        assert!(tel.spans().is_empty());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        {
            let _outer = tel.span("round[1]");
            drop(tel.span("a"));
            drop(tel.span("b"));
        }
        let mut paths: Vec<String> = tel.spans().into_iter().map(|s| s.path).collect();
        paths.sort();
        assert_eq!(paths, vec!["round[1]", "round[1]/a", "round[1]/b"]);
    }

    #[test]
    fn tids_are_per_sink_thread_ordinals() {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        drop(tel.span("main-a"));
        drop(tel.span("main-b"));
        let t2 = tel.clone();
        std::thread::spawn(move || drop(t2.span_at("", "other")))
            .join()
            .unwrap();
        let spans = crate::export::sorted_spans(&tel);
        let tid_of = |name: &str| {
            spans
                .iter()
                .find(|s| s.path == name)
                .map(|s| s.tid)
                .unwrap()
        };
        // The first recording thread gets 0; the spawned one gets 1.
        assert_eq!(tid_of("main-a"), 0);
        assert_eq!(tid_of("main-b"), 0);
        assert_eq!(tid_of("other"), 1);
    }
}

//! Thread-safe metrics registry: counters, gauges and histograms.
//!
//! Metrics are named, get-or-created on first touch, and stored in a
//! `BTreeMap` so every export walks them in name order. Handles are cheap
//! `Arc` clones that can be cached outside the registry lock, so hot paths
//! pay one relaxed atomic op per update.
//!
//! # Determinism contract
//!
//! Whether a metric's final value depends on thread interleaving is a
//! property of its *update discipline*, not its type:
//!
//! * [`Counter::add`] and [`Gauge::maximize`] are commutative — any
//!   interleaving of the same multiset of updates yields the same value.
//! * [`Histo::observe`] fills deterministic bins; the counts depend only on
//!   the multiset of observations.
//! * [`Gauge::set`] is last-write-wins — deterministic only with a single
//!   writer.
//!
//! Metrics whose *values* are inherently scheduling-dependent (pool fan-out
//! widths, process-global alloc high-water marks) are registered with
//! `volatile = true`; deterministic exports skip them
//! ([`Registry::export`] reports the flag).

use dinar_metrics::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotone `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.cell.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge stored as atomic bits.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Overwrites the gauge (last write wins — single-writer discipline).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (commutative; safe under
    /// concurrent writers). Non-finite values are ignored.
    pub fn maximize(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A mutex-wrapped [`Histogram`] handle.
#[derive(Debug, Clone)]
pub struct Histo {
    inner: Arc<Mutex<Histogram>>,
    lo: f64,
    hi: f64,
}

impl Histo {
    fn new(lo: f64, hi: f64, bins: usize) -> Self {
        Histo {
            inner: Arc::new(Mutex::new(Histogram::new(lo, hi, bins))),
            lo,
            hi,
        }
    }

    /// Records one observation (non-finite samples are ignored by the
    /// underlying histogram).
    pub fn observe(&self, x: f32) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .add(x);
    }

    /// A copy of the current histogram state.
    pub fn snapshot(&self) -> Histogram {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The `[lo, hi]` range the histogram was created with.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

#[derive(Debug, Clone)]
struct Entry {
    metric: Metric,
    volatile: bool,
}

/// Exported value of one metric (see [`Registry::export`]).
#[derive(Debug, Clone)]
pub struct MetricValue {
    /// Metric name.
    pub name: String,
    /// `true` if the value is scheduling-dependent and must be excluded
    /// from deterministic comparisons.
    pub volatile: bool,
    /// The value itself.
    pub data: MetricData,
}

/// Typed payload of an exported metric.
#[derive(Debug, Clone)]
pub enum MetricData {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram range, bin counts and total sample count.
    Histogram {
        /// Lower bound of the binning range.
        lo: f64,
        /// Upper bound of the binning range.
        hi: f64,
        /// Per-bin sample counts.
        counts: Vec<u64>,
        /// Total samples recorded.
        total: u64,
    },
}

/// Name-keyed store of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry<F: FnOnce() -> Metric>(&self, name: &str, volatile: bool, make: F) -> Metric {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get(name) {
            Some(e) => e.metric.clone(),
            None => {
                let metric = make();
                entries.insert(
                    name.to_string(),
                    Entry {
                        metric: metric.clone(),
                        volatile,
                    },
                );
                metric
            }
        }
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a metric of a different kind.
    pub fn counter(&self, name: &str, volatile: bool) -> Counter {
        match self.entry(name, volatile, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            // lint: allow(L012, kind mismatch is a programmer error at the registration site)
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a metric of a different kind.
    pub fn gauge(&self, name: &str, volatile: bool) -> Gauge {
        match self.entry(name, volatile, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            // lint: allow(L012, kind mismatch is a programmer error at the registration site)
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Gets or creates the histogram `name` with `bins` bins over
    /// `[lo, hi]`; an existing histogram keeps its original binning.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a metric of a different kind, or on
    /// an invalid range (see [`Histogram::new`]).
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, bins: usize, volatile: bool) -> Histo {
        match self.entry(name, volatile, || Metric::Histo(Histo::new(lo, hi, bins))) {
            Metric::Histo(h) => h,
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` if no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every metric, in ascending name order.
    pub fn export(&self) -> Vec<MetricValue> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries
            .iter()
            .map(|(name, e)| MetricValue {
                name: name.clone(),
                volatile: e.volatile,
                data: match &e.metric {
                    Metric::Counter(c) => MetricData::Counter(c.get()),
                    Metric::Gauge(g) => MetricData::Gauge(g.get()),
                    Metric::Histo(h) => {
                        let snap = h.snapshot();
                        let (lo, hi) = h.range();
                        MetricData::Histogram {
                            lo,
                            hi,
                            counts: snap.counts().to_vec(),
                            total: snap.total(),
                        }
                    }
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("calls", false);
        let b = reg.counter("calls", false);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauge_maximize_is_monotone() {
        let reg = Registry::new();
        let g = reg.gauge("grad_norm", false);
        g.maximize(1.5);
        g.maximize(0.5);
        g.maximize(f64::NAN);
        assert_eq!(g.get(), 1.5);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn histogram_reuses_original_binning() {
        let reg = Registry::new();
        let h = reg.histogram("loss", 0.0, 10.0, 5, false);
        h.observe(1.0);
        h.observe(100.0); // clamps into the top bin
        let h2 = reg.histogram("loss", -1.0, 1.0, 2, false);
        assert_eq!(h2.snapshot().total(), 2);
        assert_eq!(h2.range(), (0.0, 10.0));
    }

    #[test]
    fn export_is_name_ordered_and_typed() {
        let reg = Registry::new();
        reg.gauge("b.gauge", true).set(2.0);
        reg.counter("a.counter", false).add(7);
        reg.histogram("c.hist", 0.0, 1.0, 2, false).observe(0.1);
        let out = reg.export();
        let names: Vec<&str> = out.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a.counter", "b.gauge", "c.hist"]);
        assert!(matches!(out[0].data, MetricData::Counter(7)));
        assert!(out[1].volatile);
        match &out[2].data {
            MetricData::Histogram { counts, total, .. } => {
                assert_eq!(*total, 1);
                assert_eq!(counts, &vec![1, 0]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x", false);
        reg.counter("x", false);
    }

    #[test]
    fn concurrent_maximize_keeps_the_max() {
        let reg = std::sync::Arc::new(Registry::new());
        let g = reg.gauge("peak", false);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        g.maximize(f64::from(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 3999.0);
    }
}

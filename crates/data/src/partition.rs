//! Disjoint per-client data partitioning.
//!
//! The paper divides each training pool into disjoint splits per FL client
//! (§5.3) and studies non-IID distributions produced by a Dirichlet(α) prior
//! over per-class client shares (§5.8): lower α → spikier class distributions
//! → more heterogeneous clients; α → ∞ recovers the IID case.

use crate::{DataError, Dataset, Result};
use dinar_tensor::Rng;

/// How to distribute class mass across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Independent and identically distributed shards (the paper's α = ∞).
    Iid,
    /// Dirichlet non-IID with symmetric concentration α (the paper uses
    /// α ∈ {0.8, 2, 5}).
    Dirichlet(f64),
}

/// Splits sample indices into `clients` disjoint shards.
///
/// For [`Distribution::Iid`], a random permutation is dealt round-robin. For
/// [`Distribution::Dirichlet`], each class's samples are divided according to
/// a fresh Dirichlet draw over clients, so client class histograms become
/// increasingly skewed as α decreases.
///
/// Every client is guaranteed at least one sample (shards are topped up from
/// the largest shard if a Dirichlet draw starves one).
///
/// # Errors
///
/// Returns [`DataError::InvalidSplit`] if `clients == 0`, there are fewer
/// samples than clients, or α is not positive.
pub fn partition_indices(
    labels: &[usize],
    num_classes: usize,
    clients: usize,
    distribution: Distribution,
    rng: &mut Rng,
) -> Result<Vec<Vec<usize>>> {
    if clients == 0 {
        return Err(DataError::InvalidSplit {
            reason: "cannot partition across zero clients".into(),
        });
    }
    if labels.len() < clients {
        return Err(DataError::InvalidSplit {
            reason: format!("{} samples cannot cover {clients} clients", labels.len()),
        });
    }
    if let Distribution::Dirichlet(alpha) = distribution {
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(DataError::InvalidSplit {
                reason: format!("dirichlet alpha {alpha} must be positive and finite"),
            });
        }
    }

    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); clients];
    match distribution {
        Distribution::Iid => {
            let perm = rng.permutation(labels.len());
            for (pos, idx) in perm.into_iter().enumerate() {
                shards[pos % clients].push(idx);
            }
        }
        Distribution::Dirichlet(alpha) => {
            for class in 0..num_classes {
                let mut members: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == class)
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                rng.shuffle(&mut members);
                let shares = rng.dirichlet(alpha, clients);
                // Convert shares to cumulative cut points over this class.
                let n = members.len();
                let mut start = 0usize;
                let mut acc = 0.0f64;
                for (c, &share) in shares.iter().enumerate() {
                    acc += share;
                    let end = if c + 1 == clients {
                        n
                    } else {
                        (acc * n as f64).round() as usize
                    }
                    .clamp(start, n);
                    shards[c].extend_from_slice(&members[start..end]);
                    start = end;
                }
            }
        }
    }

    // Guarantee non-empty shards: move a sample from the largest shard.
    loop {
        let Some(empty) = shards.iter().position(Vec::is_empty) else {
            break;
        };
        let largest = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .expect("at least one shard exists");
        let moved = shards[largest].pop().expect("largest shard is non-empty");
        shards[empty].push(moved);
    }
    Ok(shards)
}

/// Partitions a dataset into per-client datasets.
///
/// # Errors
///
/// Same conditions as [`partition_indices`].
pub fn partition_dataset(
    dataset: &Dataset,
    clients: usize,
    distribution: Distribution,
    rng: &mut Rng,
) -> Result<Vec<Dataset>> {
    let shards = partition_indices(
        dataset.labels(),
        dataset.num_classes(),
        clients,
        distribution,
        rng,
    )?;
    shards.iter().map(|s| dataset.subset(s)).collect()
}

/// Measures partition heterogeneity: the mean total-variation distance
/// between each client's class distribution and the global one, in `[0, 1]`.
///
/// IID partitions score near 0; single-class clients score near 1. Used to
/// verify that lower Dirichlet α produces more non-IID shards (Fig. 8).
pub fn heterogeneity(shards: &[Vec<usize>], labels: &[usize], num_classes: usize) -> f64 {
    if shards.is_empty() || labels.is_empty() {
        return 0.0;
    }
    let mut global = vec![0.0f64; num_classes];
    for &l in labels {
        global[l] += 1.0;
    }
    let total: f64 = global.iter().sum();
    for g in &mut global {
        *g /= total;
    }
    let mut sum_tv = 0.0;
    for shard in shards {
        let mut local = vec![0.0f64; num_classes];
        for &i in shard {
            local[labels[i]] += 1.0;
        }
        let n: f64 = local.iter().sum();
        if n == 0.0 {
            continue;
        }
        let tv: f64 = local
            .iter()
            .zip(&global)
            .map(|(l, g)| (l / n - g).abs())
            .sum::<f64>()
            / 2.0;
        sum_tv += tv;
    }
    sum_tv / shards.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn iid_shards_are_disjoint_and_exhaustive() {
        let l = labels(103, 5);
        let mut rng = Rng::seed_from(0);
        let shards = partition_indices(&l, 5, 4, Distribution::Iid, &mut rng).unwrap();
        assert_eq!(shards.len(), 4);
        let mut all: Vec<usize> = shards.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn iid_shards_are_balanced() {
        let l = labels(100, 5);
        let mut rng = Rng::seed_from(1);
        let shards = partition_indices(&l, 5, 4, Distribution::Iid, &mut rng).unwrap();
        assert!(shards.iter().all(|s| s.len() == 25));
    }

    #[test]
    fn dirichlet_preserves_every_sample() {
        let l = labels(200, 10);
        let mut rng = Rng::seed_from(2);
        let shards =
            partition_indices(&l, 10, 5, Distribution::Dirichlet(0.5), &mut rng).unwrap();
        let mut all: Vec<usize> = shards.concat();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn lower_alpha_is_more_heterogeneous() {
        let l = labels(2000, 10);
        let mut rng = Rng::seed_from(3);
        let het = |alpha: f64, rng: &mut Rng| {
            let shards =
                partition_indices(&l, 10, 5, Distribution::Dirichlet(alpha), rng).unwrap();
            heterogeneity(&shards, &l, 10)
        };
        let spiky = het(0.1, &mut rng);
        let mild = het(5.0, &mut rng);
        let iid_shards = partition_indices(&l, 10, 5, Distribution::Iid, &mut rng).unwrap();
        let iid = heterogeneity(&iid_shards, &l, 10);
        assert!(
            spiky > mild && mild > iid,
            "expected monotone heterogeneity: {spiky} > {mild} > {iid}"
        );
        // IID heterogeneity is only sampling noise (hypergeometric), well
        // below any Dirichlet skew.
        assert!(iid < 0.1);
    }

    #[test]
    fn invalid_requests_rejected() {
        let l = labels(10, 2);
        let mut rng = Rng::seed_from(4);
        assert!(partition_indices(&l, 2, 0, Distribution::Iid, &mut rng).is_err());
        assert!(partition_indices(&l, 2, 11, Distribution::Iid, &mut rng).is_err());
        assert!(partition_indices(&l, 2, 2, Distribution::Dirichlet(0.0), &mut rng).is_err());
        assert!(
            partition_indices(&l, 2, 2, Distribution::Dirichlet(f64::INFINITY), &mut rng)
                .is_err()
        );
    }

    #[test]
    fn partition_dataset_round_trips() {
        use dinar_tensor::Tensor;
        let features = Tensor::from_fn(&[20, 3], |i| i as f32);
        let ds = crate::Dataset::new(features, labels(20, 4), &[3], 4).unwrap();
        let mut rng = Rng::seed_from(5);
        let parts = partition_dataset(&ds, 4, Distribution::Iid, &mut rng).unwrap();
        assert_eq!(parts.iter().map(crate::Dataset::len).sum::<usize>(), 20);
        assert!(parts.iter().all(|p| p.num_classes() == 4));
    }
}

use dinar_tensor::TensorError;
use std::fmt;

/// Error type for dataset construction, splitting and batching.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Feature matrix and label vector lengths disagree.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label exceeded the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Declared number of classes.
        classes: usize,
    },
    /// A sample index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Dataset size.
        len: usize,
    },
    /// A split or partition request was invalid (e.g. zero clients, fraction
    /// outside `[0, 1]`).
    InvalidSplit {
        /// Human-readable description.
        reason: String,
    },
    /// A generator was configured inconsistently.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature rows but {labels} labels")
            }
            DataError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DataError::IndexOutOfBounds { index, len } => {
                write!(f, "sample index {index} out of bounds for dataset of {len}")
            }
            DataError::InvalidSplit { reason } => write!(f, "invalid split: {reason}"),
            DataError::InvalidSpec { reason } => write!(f, "invalid dataset spec: {reason}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: DataError = TensorError::Empty { op: "x" }.into();
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Synthetic class-conditional data generators.
//!
//! Each generator produces a classification task of a given *modality* with a
//! tunable within-class noise level. The noise level controls the Bayes error
//! and therefore how much a model must **memorize** individual samples to fit
//! the training set — which is precisely the property membership inference
//! attacks exploit (§2.2 of the paper: MIAs thrive on the member/non-member
//! generalization gap). Replicating that gap, rather than the pixel
//! statistics of CIFAR or GTSRB, is what makes the paper's experiments
//! reproducible on synthetic data.
//!
//! Modalities:
//!
//! * [`Modality::Image`] — per-class Gaussian prototype images plus i.i.d.
//!   Gaussian noise (stands in for CIFAR-10/100, GTSRB, CelebA),
//! * [`Modality::Audio`] — per-class prototype waveforms built from a few
//!   random sinusoids, with random circular time shift and additive noise
//!   (stands in for Speech Commands),
//! * [`Modality::BinaryTabular`] — per-class Bernoulli feature profiles with
//!   flip noise (stands in for Purchase100 and Texas100's binary records).

use crate::{DataError, Dataset, Result};
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::{Rng, Tensor};

/// The feature modality of a synthetic task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// `channels × height × width` images.
    Image {
        /// Color channels.
        channels: usize,
        /// Image height.
        height: usize,
        /// Image width.
        width: usize,
    },
    /// Single-channel waveforms of `len` samples.
    Audio {
        /// Waveform length.
        len: usize,
    },
    /// `features` binary (0/1) columns.
    BinaryTabular {
        /// Number of binary features.
        features: usize,
    },
}

impl ToJson for Modality {
    fn to_json(&self) -> Json {
        match *self {
            Modality::Image {
                channels,
                height,
                width,
            } => Json::obj(vec![(
                "Image",
                Json::obj(vec![
                    ("channels", channels.to_json()),
                    ("height", height.to_json()),
                    ("width", width.to_json()),
                ]),
            )]),
            Modality::Audio { len } => {
                Json::obj(vec![("Audio", Json::obj(vec![("len", len.to_json())]))])
            }
            Modality::BinaryTabular { features } => Json::obj(vec![(
                "BinaryTabular",
                Json::obj(vec![("features", features.to_json())]),
            )]),
        }
    }
}

impl Modality {
    /// The logical shape of one sample.
    pub fn sample_shape(&self) -> Vec<usize> {
        match *self {
            Modality::Image {
                channels,
                height,
                width,
            } => vec![channels, height, width],
            Modality::Audio { len } => vec![1, len],
            Modality::BinaryTabular { features } => vec![features],
        }
    }

    /// Number of scalar features per sample.
    pub fn feature_len(&self) -> usize {
        self.sample_shape().iter().product()
    }
}

/// Specification of a synthetic classification task.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Dataset name (for reports).
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Feature modality.
    pub modality: Modality,
    /// Within-class noise level.
    ///
    /// For images/audio this is the standard deviation of additive Gaussian
    /// noise relative to unit-variance prototypes; for binary tabular data it
    /// is the per-feature flip probability. Higher noise → harder task →
    /// larger memorization incentive → stronger MIA signal on unprotected
    /// models.
    pub noise: f32,
}

impl ToJson for SynthSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("num_classes", self.num_classes.to_json()),
            ("num_samples", self.num_samples.to_json()),
            ("modality", self.modality.to_json()),
            ("noise", self.noise.to_json()),
        ])
    }
}

impl SynthSpec {
    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for zero classes/samples/features
    /// or out-of-range noise.
    pub fn validate(&self) -> Result<()> {
        if self.num_classes == 0 {
            return Err(DataError::InvalidSpec {
                reason: "num_classes must be positive".into(),
            });
        }
        if self.num_samples == 0 {
            return Err(DataError::InvalidSpec {
                reason: "num_samples must be positive".into(),
            });
        }
        if self.modality.feature_len() == 0 {
            return Err(DataError::InvalidSpec {
                reason: "modality has zero features".into(),
            });
        }
        if self.noise < 0.0 || !self.noise.is_finite() {
            return Err(DataError::InvalidSpec {
                reason: format!("noise {} must be finite and non-negative", self.noise),
            });
        }
        if matches!(self.modality, Modality::BinaryTabular { .. }) && self.noise > 0.5 {
            return Err(DataError::InvalidSpec {
                reason: "flip probability above 0.5 destroys the class signal".into(),
            });
        }
        Ok(())
    }

    /// Generates the dataset.
    ///
    /// Labels are balanced (`num_samples / num_classes` each, up to
    /// remainder) and rows are shuffled. The same `rng` state always yields
    /// the same dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the spec is invalid.
    pub fn generate(&self, rng: &mut Rng) -> Result<Dataset> {
        self.validate()?;
        match self.modality {
            Modality::Image { .. } => self.generate_prototype(rng, false),
            Modality::Audio { .. } => self.generate_prototype(rng, true),
            Modality::BinaryTabular { features } => self.generate_tabular(rng, features),
        }
    }

    /// Prototype-plus-noise generator for images and audio. For audio a
    /// random circular shift is applied so that models must learn
    /// shift-tolerant features (as convolutions with pooling do).
    fn generate_prototype(&self, rng: &mut Rng, shift: bool) -> Result<Dataset> {
        let flen = self.modality.feature_len();
        // Per-class prototypes.
        let prototypes: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|_| match self.modality {
                Modality::Audio { len } => waveform_prototype(rng, len),
                _ => (0..flen).map(|_| rng.normal()).collect(),
            })
            .collect();
        let n = self.num_samples;
        let mut data = vec![0.0f32; n * flen];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            let proto = &prototypes[class];
            let offset = if shift && flen > 8 {
                rng.below(flen / 8)
            } else {
                0
            };
            let row = &mut data[i * flen..(i + 1) * flen];
            for (j, slot) in row.iter_mut().enumerate() {
                let src = (j + offset) % flen;
                *slot = proto[src] + self.noise * rng.normal();
            }
        }
        self.finish(data, labels, rng)
    }

    /// Bernoulli-profile generator for binary tabular data.
    fn generate_tabular(&self, rng: &mut Rng, features: usize) -> Result<Dataset> {
        // Each class has its own activation probability per feature, drawn
        // around a sparse base rate (purchases / medical codes are sparse).
        let profiles: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|_| {
                (0..features)
                    .map(|_| {
                        if rng.bernoulli(0.3) {
                            rng.uniform_in(0.5, 0.95) // class-marker feature
                        } else {
                            rng.uniform_in(0.02, 0.15) // background feature
                        }
                    })
                    .collect()
            })
            .collect();
        let n = self.num_samples;
        let mut data = vec![0.0f32; n * features];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            let profile = &profiles[class];
            let row = &mut data[i * features..(i + 1) * features];
            for (slot, &p) in row.iter_mut().zip(profile) {
                let mut bit = rng.bernoulli(p);
                if rng.bernoulli(self.noise) {
                    bit = !bit; // label-independent flip noise
                }
                *slot = if bit { 1.0 } else { 0.0 };
            }
        }
        self.finish(data, labels, rng)
    }

    fn finish(&self, data: Vec<f32>, labels: Vec<usize>, rng: &mut Rng) -> Result<Dataset> {
        let flen = self.modality.feature_len();
        let features = Tensor::from_vec(data, &[self.num_samples, flen])?;
        let ds = Dataset::new(
            features,
            labels,
            &self.modality.sample_shape(),
            self.num_classes,
        )?;
        // Shuffle rows so class labels are not ordered.
        let perm = rng.permutation(ds.len());
        ds.subset(&perm)
    }
}

/// A smooth per-class waveform: a mixture of a few random sinusoids.
fn waveform_prototype(rng: &mut Rng, len: usize) -> Vec<f32> {
    let n_components = 3;
    let components: Vec<(f32, f32, f32)> = (0..n_components)
        .map(|_| {
            (
                rng.uniform_in(1.0, 24.0),                       // frequency (cycles per window)
                rng.uniform_in(0.0, std::f32::consts::TAU),      // phase
                rng.uniform_in(0.5, 1.0),                        // amplitude
            )
        })
        .collect();
    (0..len)
        .map(|t| {
            let x = t as f32 / len as f32;
            components
                .iter()
                .map(|&(f, p, a)| a * (std::f32::consts::TAU * f * x + p).sin())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_spec(noise: f32) -> SynthSpec {
        SynthSpec {
            name: "test-img".into(),
            num_classes: 4,
            num_samples: 80,
            modality: Modality::Image {
                channels: 2,
                height: 4,
                width: 4,
            },
            noise,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = image_spec(1.0);
        let a = spec.generate(&mut Rng::seed_from(5)).unwrap();
        let b = spec.generate(&mut Rng::seed_from(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_are_balanced() {
        let ds = image_spec(1.0).generate(&mut Rng::seed_from(0)).unwrap();
        assert_eq!(ds.class_histogram(), vec![20, 20, 20, 20]);
    }

    #[test]
    fn sample_shape_matches_modality() {
        let ds = image_spec(1.0).generate(&mut Rng::seed_from(0)).unwrap();
        assert_eq!(ds.sample_shape(), &[2, 4, 4]);
        assert_eq!(ds.feature_len(), 32);
    }

    #[test]
    fn low_noise_classes_are_separable_high_noise_not() {
        // Nearest-prototype accuracy proxy: same-class samples should be
        // closer to each other at low noise.
        let near = image_spec(0.1).generate(&mut Rng::seed_from(1)).unwrap();
        let far = image_spec(5.0).generate(&mut Rng::seed_from(1)).unwrap();
        let within_over_between = |ds: &Dataset| {
            let f = ds.features();
            let mut within = 0.0f64;
            let mut between = 0.0f64;
            let (mut wn, mut bn) = (0u32, 0u32);
            for i in 0..20 {
                for j in (i + 1)..20 {
                    let a = f.row(i).unwrap();
                    let b = f.row(j).unwrap();
                    let d = a.sub(&b).unwrap().norm_l2() as f64;
                    if ds.labels()[i] == ds.labels()[j] {
                        within += d;
                        wn += 1;
                    } else {
                        between += d;
                        bn += 1;
                    }
                }
            }
            (within / wn.max(1) as f64) / (between / bn.max(1) as f64)
        };
        assert!(within_over_between(&near) < 0.3);
        assert!(within_over_between(&far) > 0.8);
    }

    #[test]
    fn tabular_features_are_binary() {
        let spec = SynthSpec {
            name: "test-tab".into(),
            num_classes: 5,
            num_samples: 50,
            modality: Modality::BinaryTabular { features: 30 },
            noise: 0.05,
        };
        let ds = spec.generate(&mut Rng::seed_from(2)).unwrap();
        assert!(ds
            .features()
            .as_slice()
            .iter()
            .all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn audio_waveforms_are_bounded_and_smooth() {
        let spec = SynthSpec {
            name: "test-audio".into(),
            num_classes: 3,
            num_samples: 12,
            modality: Modality::Audio { len: 64 },
            noise: 0.1,
        };
        let ds = spec.generate(&mut Rng::seed_from(3)).unwrap();
        assert_eq!(ds.sample_shape(), &[1, 64]);
        // Sinusoid mixture with amplitude <= 3 plus small noise.
        assert!(ds.features().as_slice().iter().all(|&x| x.abs() < 5.0));
    }

    #[test]
    fn spec_validation() {
        let mut spec = image_spec(1.0);
        spec.num_classes = 0;
        assert!(spec.generate(&mut Rng::seed_from(0)).is_err());

        let mut spec = image_spec(-1.0);
        assert!(spec.generate(&mut Rng::seed_from(0)).is_err());
        spec.noise = f32::NAN;
        assert!(spec.generate(&mut Rng::seed_from(0)).is_err());

        let bad_flip = SynthSpec {
            name: "bad".into(),
            num_classes: 2,
            num_samples: 10,
            modality: Modality::BinaryTabular { features: 5 },
            noise: 0.9,
        };
        assert!(bad_flip.generate(&mut Rng::seed_from(0)).is_err());
    }
}

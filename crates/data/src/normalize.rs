//! Classical data preprocessing (§4.1 of the paper: raw data "prepared
//! following classical data preprocessing techniques" before training).
//!
//! [`Standardizer`] implements the fit-on-train / apply-everywhere protocol:
//! per-feature mean/variance are estimated on the training split only, then
//! frozen, so no test-set statistics leak into training — and, in the FL
//! setting, each client fits on its own shard (its statistics are part of
//! its private state).

use crate::{DataError, Dataset, Result};
use dinar_tensor::Tensor;

/// Per-feature standardization: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fits per-feature statistics on a dataset's flat feature matrix.
    ///
    /// Features with (near-)zero variance get `std = 1` so constant columns
    /// pass through centred instead of exploding.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] for an empty dataset.
    pub fn fit(dataset: &Dataset) -> Result<Self> {
        if dataset.is_empty() {
            return Err(DataError::InvalidSpec {
                reason: "cannot fit a standardizer on an empty dataset".into(),
            });
        }
        let n = dataset.len();
        let d = dataset.feature_len();
        let x = dataset.features().as_slice();
        let mut mean = vec![0.0f64; d];
        for i in 0..n {
            for j in 0..d {
                mean[j] += x[i * d + j] as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; d];
        for i in 0..n {
            for j in 0..d {
                let diff = x[i * d + j] as f64 - mean[j];
                var[j] += diff * diff;
            }
        }
        let std = var
            .iter()
            .map(|&v| {
                let s = (v / n as f64).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Ok(Standardizer {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std,
        })
    }

    /// Number of features this standardizer was fitted on.
    pub fn num_features(&self) -> usize {
        self.mean.len()
    }

    /// Applies the frozen statistics, returning a standardized copy.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSpec`] if the dataset's feature count
    /// differs from the fitted one.
    pub fn transform(&self, dataset: &Dataset) -> Result<Dataset> {
        let d = dataset.feature_len();
        if d != self.mean.len() {
            return Err(DataError::InvalidSpec {
                reason: format!(
                    "standardizer fitted on {} features, dataset has {d}",
                    self.mean.len()
                ),
            });
        }
        let n = dataset.len();
        let x = dataset.features().as_slice();
        let mut out = vec![0.0f32; n * d];
        for i in 0..n {
            for j in 0..d {
                out[i * d + j] = (x[i * d + j] - self.mean[j]) / self.std[j];
            }
        }
        Dataset::new(
            Tensor::from_vec(out, &[n, d])?,
            dataset.labels().to_vec(),
            dataset.sample_shape(),
            dataset.num_classes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    fn skewed_dataset(n: usize) -> Dataset {
        let mut rng = Rng::seed_from(0);
        let features = Tensor::from_fn(&[n, 3], |i| match i % 3 {
            0 => rng.normal_with(100.0, 5.0), // large offset
            1 => rng.normal_with(0.0, 0.01),  // tiny scale
            _ => 7.0,                         // constant column
        });
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(features, labels, &[3], 2).unwrap()
    }

    #[test]
    fn transform_centres_and_scales() {
        let train = skewed_dataset(500);
        let standardizer = Standardizer::fit(&train).unwrap();
        let out = standardizer.transform(&train).unwrap();
        let x = out.features().as_slice();
        for j in 0..2 {
            let vals: Vec<f32> = (0..500).map(|i| x[i * 3 + j]).collect();
            let mean = vals.iter().sum::<f32>() / 500.0;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 500.0;
            assert!(mean.abs() < 1e-3, "feature {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "feature {j} var {var}");
        }
    }

    #[test]
    fn constant_columns_centre_without_exploding() {
        let train = skewed_dataset(100);
        let standardizer = Standardizer::fit(&train).unwrap();
        let out = standardizer.transform(&train).unwrap();
        let x = out.features().as_slice();
        for i in 0..100 {
            assert!(x[i * 3 + 2].abs() < 1e-5); // (7 - 7) / 1
        }
    }

    #[test]
    fn statistics_are_frozen_after_fit() {
        let train = skewed_dataset(200);
        let standardizer = Standardizer::fit(&train).unwrap();
        // A shifted "test" set must be transformed with the TRAIN stats.
        let mut rng = Rng::seed_from(1);
        let shifted = Dataset::new(
            Tensor::from_fn(&[50, 3], |_| rng.normal_with(200.0, 5.0)),
            (0..50).map(|i| i % 2).collect(),
            &[3],
            2,
        )
        .unwrap();
        let out = standardizer.transform(&shifted).unwrap();
        // Feature 0 was centred at 100: the shifted data lands around +20 std.
        let mean0: f32 = (0..50).map(|i| out.features().as_slice()[i * 3]).sum::<f32>() / 50.0;
        assert!(mean0 > 10.0, "test mean {mean0} should reflect train stats");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let train = skewed_dataset(50);
        let standardizer = Standardizer::fit(&train).unwrap();
        let other = Dataset::new(Tensor::zeros(&[4, 2]), vec![0, 1, 0, 1], &[2], 2).unwrap();
        assert!(standardizer.transform(&other).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let empty = Dataset::new(Tensor::zeros(&[0, 3]), vec![], &[3], 2).unwrap();
        assert!(matches!(
            Standardizer::fit(&empty),
            Err(DataError::InvalidSpec { .. })
        ));
    }
}

//! The paper's dataset catalog (Table 2), as synthetic stand-ins.
//!
//! Each entry records the paper's dimensions (records / features / classes /
//! model) and resolves to a [`SynthSpec`] in one of two profiles:
//!
//! * [`Profile::Full`] — the paper's sample and feature counts, for users
//!   with time to burn or a larger machine;
//! * [`Profile::Mini`] — reduced sample counts (and, for Texas100, feature
//!   count) that train in seconds on one CPU core while keeping class
//!   structure and the member/non-member generalization gap. All experiment
//!   binaries use this profile.

use crate::synth::{Modality, SynthSpec};
use crate::{Dataset, Result};
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::Rng;

/// Scale profile for a catalog dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CPU-scale profile used by the experiment binaries.
    Mini,
    /// The paper's dimensions.
    Full,
}

/// The paper-reported dimensions of a dataset (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperDims {
    /// Number of records.
    pub records: usize,
    /// Number of features.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Model family the paper trains on this dataset.
    pub model: &'static str,
}

/// A catalog dataset: paper metadata plus a resolved synthetic spec.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Resolved synthetic generator specification.
    pub spec: SynthSpec,
    /// The paper's dimensions for this dataset.
    pub paper: PaperDims,
}

impl ToJson for PaperDims {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("records", self.records.to_json()),
            ("features", self.features.to_json()),
            ("classes", self.classes.to_json()),
            ("model", self.model.to_json()),
        ])
    }
}

impl ToJson for CatalogEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spec", self.spec.to_json()),
            ("paper", self.paper.to_json()),
        ])
    }
}

impl CatalogEntry {
    /// Generates the dataset with the given RNG.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (the built-in entries never fail).
    pub fn generate(&self, rng: &mut Rng) -> Result<Dataset> {
        self.spec.generate(rng)
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// CIFAR-10: 10-class colour images, ResNet20 (paper: 50,000 × 3,072).
pub fn cifar10(profile: Profile) -> CatalogEntry {
    let (samples, hw, noise) = match profile {
        Profile::Mini => (1600, 8, 1.3),
        Profile::Full => (50_000, 32, 1.3),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "cifar10".into(),
            num_classes: 10,
            num_samples: samples,
            modality: Modality::Image {
                channels: 3,
                height: hw,
                width: hw,
            },
            noise,
        },
        paper: PaperDims {
            records: 50_000,
            features: 3_072,
            classes: 10,
            model: "ResNet20",
        },
    }
}

/// CIFAR-100: 100-class colour images, ResNet20 (paper: 50,000 × 3,072).
pub fn cifar100(profile: Profile) -> CatalogEntry {
    let (samples, hw, noise) = match profile {
        Profile::Mini => (2_000, 8, 1.0),
        Profile::Full => (50_000, 32, 1.0),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "cifar100".into(),
            num_classes: 100,
            num_samples: samples,
            modality: Modality::Image {
                channels: 3,
                height: hw,
                width: hw,
            },
            noise,
        },
        paper: PaperDims {
            records: 50_000,
            features: 3_072,
            classes: 100,
            model: "ResNet20",
        },
    }
}

/// GTSRB: 43-class traffic-sign images, VGG11 (paper: 51,389 × 6,912).
pub fn gtsrb(profile: Profile) -> CatalogEntry {
    let (samples, hw, noise) = match profile {
        Profile::Mini => (1_600, 16, 0.4),
        Profile::Full => (51_389, 48, 0.4),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "gtsrb".into(),
            num_classes: 43,
            num_samples: samples,
            modality: Modality::Image {
                channels: 3,
                height: hw,
                width: hw,
            },
            noise,
        },
        paper: PaperDims {
            records: 51_389,
            features: 6_912,
            classes: 43,
            model: "VGG11",
        },
    }
}

/// CelebA: 32 attribute-combination classes of face crops, VGG11
/// (paper: 202,599 records, 40,000-image 64×64 subset).
pub fn celeba(profile: Profile) -> CatalogEntry {
    let (samples, hw, noise) = match profile {
        Profile::Mini => (1_600, 16, 0.5),
        Profile::Full => (40_000, 64, 0.5),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "celeba".into(),
            num_classes: 32,
            num_samples: samples,
            modality: Modality::Image {
                channels: 1,
                height: hw,
                width: hw,
            },
            noise,
        },
        paper: PaperDims {
            records: 202_599,
            features: 4_096,
            classes: 32,
            model: "VGG11",
        },
    }
}

/// Speech Commands: 35-word audio classification, M18
/// (paper: 64,727 one-second utterances).
pub fn speech_commands(profile: Profile) -> CatalogEntry {
    let (samples, len, noise) = match profile {
        Profile::Mini => (1_400, 256, 0.8),
        Profile::Full => (64_727, 16_000, 0.8),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "speech_commands".into(),
            num_classes: 35,
            num_samples: samples,
            modality: Modality::Audio { len },
            noise,
        },
        paper: PaperDims {
            records: 64_727,
            features: 16_000,
            classes: 36,
            model: "M18",
        },
    }
}

/// Purchase100: 600 binary purchase features, 100 shopper classes,
/// 6-layer FCNN (paper: 97,324 records).
pub fn purchase100(profile: Profile) -> CatalogEntry {
    let samples = match profile {
        Profile::Mini => 2_400,
        Profile::Full => 97_324,
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "purchase100".into(),
            num_classes: 100,
            num_samples: samples,
            modality: Modality::BinaryTabular { features: 600 },
            noise: 0.02,
        },
        paper: PaperDims {
            records: 97_324,
            features: 600,
            classes: 100,
            model: "6-layer FCNN",
        },
    }
}

/// Texas100: binary hospital-discharge features, 100 procedure classes,
/// 6-layer FCNN (paper: 67,330 × 6,170).
pub fn texas100(profile: Profile) -> CatalogEntry {
    let (samples, features) = match profile {
        Profile::Mini => (1_800, 500),
        Profile::Full => (67_330, 6_170),
    };
    CatalogEntry {
        spec: SynthSpec {
            name: "texas100".into(),
            num_classes: 100,
            num_samples: samples,
            modality: Modality::BinaryTabular { features },
            noise: 0.02,
        },
        paper: PaperDims {
            records: 67_330,
            features: 6_170,
            classes: 100,
            model: "6-layer FCNN",
        },
    }
}

/// All seven catalog datasets in the paper's Table 2 order.
pub fn all(profile: Profile) -> Vec<CatalogEntry> {
    vec![
        cifar10(profile),
        cifar100(profile),
        gtsrb(profile),
        celeba(profile),
        speech_commands(profile),
        purchase100(profile),
        texas100(profile),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seven_entries_with_unique_names() {
        let entries = all(Profile::Mini);
        assert_eq!(entries.len(), 7);
        let mut names: Vec<&str> = entries.iter().map(CatalogEntry::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn mini_profiles_generate_quickly_and_validly() {
        let mut rng = Rng::seed_from(0);
        for entry in all(Profile::Mini) {
            let ds = entry.generate(&mut rng).unwrap();
            assert_eq!(ds.num_classes(), entry.spec.num_classes, "{}", entry.name());
            assert_eq!(ds.len(), entry.spec.num_samples);
        }
    }

    #[test]
    fn full_profiles_match_paper_dims() {
        assert_eq!(cifar10(Profile::Full).spec.num_samples, 50_000);
        assert_eq!(
            gtsrb(Profile::Full).spec.modality.feature_len(),
            3 * 48 * 48 // 6,912 — matches Table 2's GTSRB feature count
        );
        assert_eq!(purchase100(Profile::Full).spec.modality.feature_len(), 600);
        assert_eq!(texas100(Profile::Full).spec.modality.feature_len(), 6_170);
        assert_eq!(
            speech_commands(Profile::Full).spec.modality.feature_len(),
            16_000
        );
    }

    #[test]
    fn class_counts_are_faithful_in_both_profiles() {
        for profile in [Profile::Mini, Profile::Full] {
            assert_eq!(cifar10(profile).spec.num_classes, 10);
            assert_eq!(cifar100(profile).spec.num_classes, 100);
            assert_eq!(gtsrb(profile).spec.num_classes, 43);
            assert_eq!(celeba(profile).spec.num_classes, 32);
            assert_eq!(purchase100(profile).spec.num_classes, 100);
            assert_eq!(texas100(profile).spec.num_classes, 100);
        }
    }
}

//! CSV import/export for datasets.
//!
//! Lets users bring their *own* tabular data into the FL pipeline (the
//! cross-silo scenarios the paper motivates — banking records, hospital
//! discharges — live in CSV-shaped systems) and export synthetic datasets
//! for inspection in external tools. Format: one sample per line,
//! `label,feature_0,feature_1,…`; a `#`-prefixed header carries the sample
//! shape and class count so round-trips are lossless.

use crate::{DataError, Dataset, Result};
use dinar_tensor::Tensor;
use std::fmt::Write as _;
use std::path::Path;

/// Serializes a dataset to the CSV format described in the module docs.
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::new();
    let shape: Vec<String> = dataset.sample_shape().iter().map(|d| d.to_string()).collect();
    let _ = writeln!(
        out,
        "# dinar-dataset v1 classes={} shape={}",
        dataset.num_classes(),
        shape.join("x")
    );
    let d = dataset.feature_len();
    let x = dataset.features().as_slice();
    for (i, &label) in dataset.labels().iter().enumerate() {
        let _ = write!(out, "{label}");
        for j in 0..d {
            let _ = write!(out, ",{}", x[i * d + j]);
        }
        out.push('\n');
    }
    out
}

/// Parses a dataset from the CSV format produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`DataError::InvalidSpec`] for a missing/malformed header,
/// unparsable numbers, or ragged rows.
pub fn from_csv(text: &str) -> Result<Dataset> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| DataError::InvalidSpec {
        reason: "empty CSV".into(),
    })?;
    let (classes, shape) = parse_header(header)?;
    let feature_len: usize = shape.iter().product();

    let mut labels = Vec::new();
    let mut data: Vec<f32> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let label: usize = fields
            .next()
            .ok_or_else(|| ragged(lineno))?
            .trim()
            .parse()
            .map_err(|_| DataError::InvalidSpec {
                reason: format!("line {}: bad label", lineno + 2),
            })?;
        labels.push(label);
        let start = data.len();
        for field in fields {
            let v: f32 = field.trim().parse().map_err(|_| DataError::InvalidSpec {
                reason: format!("line {}: bad feature value `{field}`", lineno + 2),
            })?;
            data.push(v);
        }
        if data.len() - start != feature_len {
            return Err(ragged(lineno));
        }
    }
    let n = labels.len();
    Dataset::new(
        Tensor::from_vec(data, &[n, feature_len])?,
        labels,
        &shape,
        classes,
    )
}

fn ragged(lineno: usize) -> DataError {
    DataError::InvalidSpec {
        reason: format!("line {}: wrong number of features", lineno + 2),
    }
}

fn parse_header(header: &str) -> Result<(usize, Vec<usize>)> {
    let err = |why: &str| DataError::InvalidSpec {
        reason: format!("bad CSV header ({why}): `{header}`"),
    };
    if !header.starts_with("# dinar-dataset v1") {
        return Err(err("missing magic"));
    }
    let mut classes = None;
    let mut shape = None;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix("classes=") {
            classes = Some(v.parse().map_err(|_| err("bad classes"))?);
        } else if let Some(v) = token.strip_prefix("shape=") {
            let dims: std::result::Result<Vec<usize>, _> =
                v.split('x').map(str::parse).collect();
            shape = Some(dims.map_err(|_| err("bad shape"))?);
        }
    }
    match (classes, shape) {
        (Some(c), Some(s)) => Ok((c, s)),
        _ => Err(err("missing classes/shape")),
    }
}

/// Writes a dataset to a CSV file.
///
/// # Errors
///
/// I/O failures surface as [`DataError::InvalidSpec`] with the path.
pub fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path.as_ref(), to_csv(dataset)).map_err(|e| DataError::InvalidSpec {
        reason: format!("cannot write {}: {e}", path.as_ref().display()),
    })
}

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// Same conditions as [`from_csv`], plus I/O failures.
pub fn load_csv(path: impl AsRef<Path>) -> Result<Dataset> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| DataError::InvalidSpec {
        reason: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    fn toy() -> Dataset {
        let mut rng = Rng::seed_from(0);
        Dataset::new(
            rng.randn(&[6, 4]),
            vec![0, 1, 2, 0, 1, 2],
            &[2, 2],
            3,
        )
        .unwrap()
    }

    #[test]
    fn csv_roundtrip_preserves_everything() {
        let original = toy();
        let restored = from_csv(&to_csv(&original)).unwrap();
        assert_eq!(restored.labels(), original.labels());
        assert_eq!(restored.num_classes(), original.num_classes());
        assert_eq!(restored.sample_shape(), original.sample_shape());
        assert!(restored
            .features()
            .approx_eq(original.features(), 1e-5));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dinar-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        save_csv(&toy(), &path).unwrap();
        let restored = load_csv(&path).unwrap();
        assert_eq!(restored.len(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_csv("").is_err());
        assert!(from_csv("no header\n1,2,3").is_err());
        assert!(from_csv("# dinar-dataset v1 classes=2\n0,1.0").is_err()); // no shape
        assert!(from_csv("# dinar-dataset v1 classes=2 shape=2\n0,1.0").is_err()); // ragged
        assert!(from_csv("# dinar-dataset v1 classes=2 shape=2\nx,1.0,2.0").is_err()); // bad label
        assert!(from_csv("# dinar-dataset v1 classes=2 shape=2\n0,1.0,oops").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "# dinar-dataset v1 classes=2 shape=2\n0,1.0,2.0\n\n1,3.0,4.0\n";
        let ds = from_csv(csv).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[0, 1]);
    }
}

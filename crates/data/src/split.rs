//! The paper's attacker/train/test data protocol (§5.1).
//!
//! "For each dataset, half of the data is used as the attacker's prior
//! knowledge to conduct MIAs, and the other half is partitioned into training
//! (80%) and test (20%) sets."

use crate::{DataError, Dataset, Result};
use dinar_tensor::Rng;

/// The three-way split used by every experiment.
#[derive(Debug, Clone)]
pub struct AttackSplit {
    /// The attacker's prior knowledge (half the data) — shadow models train
    /// on this.
    pub attacker: Dataset,
    /// The FL participants' training pool (80% of the remaining half). These
    /// are the **members**.
    pub train: Dataset,
    /// Held-out test data (20% of the remaining half). These are the
    /// **non-members** and also measure model utility.
    pub test: Dataset,
}

/// Performs the paper's split: 50% attacker knowledge, then 80/20 train/test
/// on the remainder.
///
/// # Errors
///
/// Returns [`DataError::InvalidSplit`] if the dataset is too small to yield
/// non-empty parts.
pub fn attack_split(dataset: &Dataset, rng: &mut Rng) -> Result<AttackSplit> {
    if dataset.len() < 10 {
        return Err(DataError::InvalidSplit {
            reason: format!(
                "dataset of {} samples is too small for the 50/40/10 protocol",
                dataset.len()
            ),
        });
    }
    let (attacker, rest) = dataset.split_fraction(0.5, rng)?;
    let (train, test) = rest.split_fraction(0.8, rng)?;
    Ok(AttackSplit {
        attacker,
        train,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Tensor;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_fn(&[n, 2], |i| i as f32);
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(features, labels, &[2], 2).unwrap()
    }

    #[test]
    fn proportions_match_the_paper() {
        let ds = toy(1000);
        let mut rng = Rng::seed_from(0);
        let split = attack_split(&ds, &mut rng).unwrap();
        assert_eq!(split.attacker.len(), 500);
        assert_eq!(split.train.len(), 400);
        assert_eq!(split.test.len(), 100);
    }

    #[test]
    fn parts_are_disjoint_and_exhaustive() {
        let ds = toy(100);
        let mut rng = Rng::seed_from(1);
        let split = attack_split(&ds, &mut rng).unwrap();
        let mut ids: Vec<i64> = Vec::new();
        for part in [&split.attacker, &split.train, &split.test] {
            for i in 0..part.len() {
                // Feature column 0 holds the original row index * 2.
                ids.push(part.features().get(&[i, 0]).unwrap() as i64);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn too_small_rejected() {
        let ds = toy(8);
        let mut rng = Rng::seed_from(2);
        assert!(matches!(
            attack_split(&ds, &mut rng),
            Err(DataError::InvalidSplit { .. })
        ));
    }
}

//! In-memory labelled dataset.

use crate::{DataError, Result};
use dinar_tensor::{Rng, Tensor};

/// A labelled classification dataset held in memory.
///
/// Features are stored as a flat `[n, features]` matrix together with the
/// logical per-sample shape (e.g. `[3, 16, 16]` for images); [`Dataset::batch`]
/// reshapes gathered rows to `[batch, ...sample_shape]` so convolutional
/// models receive their expected layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    sample_shape: Vec<usize>,
    num_classes: usize,
}

/// A materialized mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch features, shaped `[batch, ...sample_shape]`.
    pub features: Tensor,
    /// Batch labels.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from a flat feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LengthMismatch`] if rows and labels disagree,
    /// [`DataError::LabelOutOfRange`] for an invalid label and
    /// [`DataError::InvalidSpec`] if `sample_shape` does not match the
    /// feature width.
    pub fn new(
        features: Tensor,
        labels: Vec<usize>,
        sample_shape: &[usize],
        num_classes: usize,
    ) -> Result<Self> {
        let rows = features.nrows()?;
        let cols = features.ncols()?;
        if rows != labels.len() {
            return Err(DataError::LengthMismatch {
                features: rows,
                labels: labels.len(),
            });
        }
        if sample_shape.iter().product::<usize>() != cols {
            return Err(DataError::InvalidSpec {
                reason: format!(
                    "sample shape {sample_shape:?} does not match feature width {cols}"
                ),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::LabelOutOfRange {
                label: bad,
                classes: num_classes,
            });
        }
        Ok(Dataset {
            features,
            labels,
            sample_shape: sample_shape.to_vec(),
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Logical shape of one sample (e.g. `[3, 16, 16]`).
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// Number of scalar features per sample.
    pub fn feature_len(&self) -> usize {
        self.sample_shape.iter().product()
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The flat `[n, features]` feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Gathers the given sample indices into a batch shaped
    /// `[batch, ...sample_shape]`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for invalid indices.
    pub fn batch(&self, indices: &[usize]) -> Result<Batch> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.len()) {
            return Err(DataError::IndexOutOfBounds {
                index: bad,
                len: self.len(),
            });
        }
        let flat = self.features.gather_rows(indices)?;
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        Ok(Batch {
            features: flat.reshape(&shape)?,
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        })
    }

    /// The whole dataset as one batch.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors (practically infallible).
    pub fn full_batch(&self) -> Result<Batch> {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }

    /// A new dataset containing only the given sample indices.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfBounds`] for invalid indices.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.len()) {
            return Err(DataError::IndexOutOfBounds {
                index: bad,
                len: self.len(),
            });
        }
        Ok(Dataset {
            features: self.features.gather_rows(indices)?,
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            sample_shape: self.sample_shape.clone(),
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(first, second)` where `first` holds `fraction` of the
    /// samples, after a deterministic shuffle with `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSplit`] if `fraction` is outside `[0, 1]`.
    pub fn split_fraction(&self, fraction: f64, rng: &mut Rng) -> Result<(Dataset, Dataset)> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(DataError::InvalidSplit {
                reason: format!("fraction {fraction} outside [0, 1]"),
            });
        }
        let perm = rng.permutation(self.len());
        let cut = (self.len() as f64 * fraction).round() as usize;
        let first = self.subset(&perm[..cut])?;
        let second = self.subset(&perm[cut..])?;
        Ok((first, second))
    }

    /// Iterator over shuffled mini-batch index lists of size `batch_size`
    /// (last batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_indices(&self, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let perm = rng.permutation(self.len());
        perm.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }

    /// Per-class sample counts (length `num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Tensor::from_fn(&[6, 4], |i| i as f32);
        Dataset::new(features, vec![0, 1, 2, 0, 1, 2], &[4], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let f = Tensor::zeros(&[3, 4]);
        assert!(matches!(
            Dataset::new(f.clone(), vec![0, 1], &[4], 2),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(f.clone(), vec![0, 1, 5], &[4], 2),
            Err(DataError::LabelOutOfRange { label: 5, .. })
        ));
        assert!(matches!(
            Dataset::new(f, vec![0, 1, 1], &[5], 2),
            Err(DataError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn batch_reshapes_to_sample_shape() {
        let features = Tensor::from_fn(&[4, 12], |i| i as f32);
        let ds = Dataset::new(features, vec![0, 1, 0, 1], &[3, 2, 2], 2).unwrap();
        let b = ds.batch(&[1, 3]).unwrap();
        assert_eq!(b.features.shape(), &[2, 3, 2, 2]);
        assert_eq!(b.labels, vec![1, 1]);
        assert_eq!(b.features.get(&[0, 0, 0, 0]).unwrap(), 12.0);
    }

    #[test]
    fn batch_rejects_bad_index() {
        assert!(matches!(
            toy().batch(&[6]),
            Err(DataError::IndexOutOfBounds { index: 6, len: 6 })
        ));
    }

    #[test]
    fn subset_keeps_metadata() {
        let ds = toy();
        let s = ds.subset(&[0, 3]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.sample_shape(), &[4]);
    }

    #[test]
    fn split_fraction_is_exhaustive_and_disjoint() {
        let ds = toy();
        let mut rng = Rng::seed_from(0);
        let (a, b) = ds.split_fraction(0.5, &mut rng).unwrap();
        assert_eq!(a.len() + b.len(), ds.len());
        assert_eq!(a.len(), 3);
        // Together they contain every original row exactly once.
        let mut all: Vec<f32> = Vec::new();
        for d in [&a, &b] {
            for i in 0..d.len() {
                all.push(d.features().get(&[i, 0]).unwrap());
            }
        }
        all.sort_by(f32::total_cmp);
        assert_eq!(all, vec![0.0, 4.0, 8.0, 12.0, 16.0, 20.0]);
    }

    #[test]
    fn split_fraction_validates() {
        let mut rng = Rng::seed_from(0);
        assert!(toy().split_fraction(1.5, &mut rng).is_err());
    }

    #[test]
    fn batch_indices_cover_everything_once() {
        let ds = toy();
        let mut rng = Rng::seed_from(1);
        let batches = ds.batch_indices(4, &mut rng);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[1].len(), 2);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn class_histogram_counts() {
        assert_eq!(toy().class_histogram(), vec![2, 2, 2]);
    }
}

//! # dinar-data
//!
//! Dataset substrate of the DINAR reproduction.
//!
//! The paper evaluates on seven real datasets (Table 2): CIFAR-10, CIFAR-100,
//! GTSRB, CelebA, Speech Commands, Purchase100 and Texas100. Those datasets
//! (and the GPU needed to train on them) are not available here, so this
//! crate provides **synthetic generators with matching schema** — same
//! feature modality (image / audio / binary tabular), same class structure,
//! and a *controllable generalization gap*, which is the one property every
//! experiment in the paper measures (membership inference exploits exactly
//! the member/non-member loss gap).
//!
//! The crate also implements the paper's data protocol:
//!
//! * the attacker-knowledge split of §5.1 (half the data to the attacker,
//!   the rest 80/20 into train/test) via [`split::AttackSplit`],
//! * disjoint per-client partitioning, IID or Dirichlet(α) non-IID as in
//!   §5.8, via [`partition`].
//!
//! # Example
//!
//! ```
//! use dinar_data::catalog::{self, Profile};
//! use dinar_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let ds = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
//! assert!(ds.len() > 0);
//! let batch = ds.batch(&[0, 1, 2])?;
//! assert_eq!(batch.features.shape()[0], 3);
//! # Ok::<(), dinar_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod dataset;
mod error;
pub mod normalize;
pub mod partition;
pub mod split;
pub mod synth;

pub use dataset::{Batch, Dataset};
pub use error::DataError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;

//! Deterministic, seeded fault injection for distributed simulations.
//!
//! Real federated deployments lose participants constantly: processes crash,
//! uploads vanish in the network, stragglers miss their deadline, flaky
//! nodes fail and come back. The repo's simulations (the threaded FL
//! transport in `dinar-fl`, the gossip protocol here) reproduce those
//! conditions through a shared [`FaultPlan`]: a pure, seedable map from
//! *(node, round)* to a [`FaultKind`], consulted by the runtime at the
//! moment the node would act. Because the plan is data — not timing — the
//! same plan and seed reproduce the same failure schedule on every run and
//! at every worker-pool width, which is what lets the integration tests
//! assert bit-identical models *under* injected faults.
//!
//! The plan deliberately lives in this crate (the lowest layer that knows
//! about distributed nodes) so both the consensus protocols and the FL
//! engine consume one fault vocabulary.

use std::collections::BTreeMap;

/// Deterministic 64-bit mixer (splitmix64), shared by the seeded fault
/// generator and the gossip scheduler.
pub(crate) fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What happens to a node at its scheduled fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node dies silently at the start of the round and never returns:
    /// no farewell message, no further participation. This is the
    /// "client thread died mid-round" condition that used to hang the
    /// threaded FL server.
    Crash,
    /// The node does its round work but its outbound message is lost (a
    /// dropped upload). The node itself stays healthy.
    DropUpdate,
    /// The node does its round work but the result arrives *after* the
    /// round it belongs to (a straggler): the runtime delivers it during
    /// the next round, where tag-checking discards it as stale.
    Delay,
    /// The node goes silent for the round without dying: it neither works
    /// nor reports. Only a round deadline can resolve a stall, so runtimes
    /// reject stall plans when no deadline is configured.
    Stall,
    /// The node fails transiently: the first `failures` attempts of the
    /// round report a retryable error, after which the node recovers and
    /// completes the round normally (if the runtime retries that often).
    Transient {
        /// Number of failed attempts before the node recovers.
        failures: u32,
    },
}

/// A deterministic schedule of injected faults, keyed by `(node, round)`.
///
/// Rounds are 1-based, matching the FL engine's round numbering and the
/// gossip protocol's sweep numbering. At most one fault per `(node, round)`
/// cell; inserting twice keeps the latest.
///
/// # Example
///
/// ```
/// use dinar_consensus::fault::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new().crash(2, 3).delay(0, 1);
/// assert_eq!(plan.action(2, 3), Some(FaultKind::Crash));
/// assert_eq!(plan.action(2, 4), None);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<(usize, usize), FaultKind>,
    /// The seed behind a generated plan ([`FaultPlan::seeded_dropout`]);
    /// `None` for hand-built plans. Carried so benchmark rows and audit
    /// artifacts can name the exact schedule that produced them.
    seed: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no injected faults (the healthy baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` for `node` at `round` (replacing any previous fault
    /// in that cell).
    pub fn with_fault(mut self, node: usize, round: usize, kind: FaultKind) -> Self {
        self.faults.insert((node, round), kind);
        self
    }

    /// Schedules a silent [`FaultKind::Crash`].
    pub fn crash(self, node: usize, round: usize) -> Self {
        self.with_fault(node, round, FaultKind::Crash)
    }

    /// Schedules a lost upload ([`FaultKind::DropUpdate`]).
    pub fn drop_update(self, node: usize, round: usize) -> Self {
        self.with_fault(node, round, FaultKind::DropUpdate)
    }

    /// Schedules a straggler round ([`FaultKind::Delay`]).
    pub fn delay(self, node: usize, round: usize) -> Self {
        self.with_fault(node, round, FaultKind::Delay)
    }

    /// Schedules a silent stall ([`FaultKind::Stall`]).
    pub fn stall(self, node: usize, round: usize) -> Self {
        self.with_fault(node, round, FaultKind::Stall)
    }

    /// Schedules a fail-then-recover round ([`FaultKind::Transient`]).
    pub fn transient(self, node: usize, round: usize, failures: u32) -> Self {
        self.with_fault(node, round, FaultKind::Transient { failures })
    }

    /// The fault scheduled for `node` at `round`, if any.
    pub fn action(&self, node: usize, round: usize) -> Option<FaultKind> {
        self.faults.get(&(node, round)).copied()
    }

    /// The seed this plan was generated from, when it came from a seeded
    /// generator like [`FaultPlan::seeded_dropout`] — `None` for hand-built
    /// plans. Lets telemetry make fault-injected runs self-describing.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Iterates the schedule in `(node, round)` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&(n, r), &k)| (n, r, k))
    }

    /// `true` if any scheduled fault is of `kind` (ignoring payloads for
    /// [`FaultKind::Transient`]).
    pub fn contains_kind(&self, kind: FaultKind) -> bool {
        self.faults.values().any(|&k| {
            std::mem::discriminant(&k) == std::mem::discriminant(&kind)
        })
    }

    /// A seeded independent-dropout schedule: each of `nodes × rounds`
    /// cells receives a [`FaultKind::DropUpdate`] with probability `rate`,
    /// decided by a splitmix64 stream — the same `(seed, nodes, rounds,
    /// rate)` always yields the same plan. `rate` is clamped to `[0, 1]`.
    ///
    /// This models the uniform per-round client dropout studied by the
    /// partial-participation FL literature; the dropout bench sweeps `rate`
    /// against accuracy and rounds-to-converge.
    pub fn seeded_dropout(seed: u64, nodes: usize, rounds: usize, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        // Map the top 53 bits to [0, 1), the standard uniform construction.
        let scale = 1.0 / (1u64 << 53) as f64;
        let mut state = seed ^ 0xD0_5E_ED;
        let mut plan = FaultPlan::new();
        for round in 1..=rounds {
            for node in 0..nodes {
                let u = (splitmix(&mut state) >> 11) as f64 * scale;
                if u < rate {
                    plan.faults.insert((node, round), FaultKind::DropUpdate);
                }
            }
        }
        plan.seed = Some(seed);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_schedules_and_queries() {
        let plan = FaultPlan::new()
            .crash(1, 2)
            .drop_update(0, 1)
            .delay(2, 2)
            .stall(3, 1)
            .transient(4, 5, 2);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.action(1, 2), Some(FaultKind::Crash));
        assert_eq!(plan.action(0, 1), Some(FaultKind::DropUpdate));
        assert_eq!(plan.action(2, 2), Some(FaultKind::Delay));
        assert_eq!(plan.action(3, 1), Some(FaultKind::Stall));
        assert_eq!(plan.action(4, 5), Some(FaultKind::Transient { failures: 2 }));
        assert_eq!(plan.action(4, 4), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn later_insert_replaces_earlier() {
        let plan = FaultPlan::new().crash(0, 1).delay(0, 1);
        assert_eq!(plan.action(0, 1), Some(FaultKind::Delay));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn contains_kind_ignores_payload() {
        let plan = FaultPlan::new().transient(0, 1, 3);
        assert!(plan.contains_kind(FaultKind::Transient { failures: 99 }));
        assert!(!plan.contains_kind(FaultKind::Stall));
    }

    #[test]
    fn seeded_dropout_is_deterministic() {
        let a = FaultPlan::seeded_dropout(7, 10, 20, 0.3);
        let b = FaultPlan::seeded_dropout(7, 10, 20, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::seeded_dropout(8, 10, 20, 0.3);
        assert_ne!(a, c, "different seeds should differ at rate 0.3");
    }

    #[test]
    fn seeded_plans_carry_their_seed_and_built_plans_do_not() {
        assert_eq!(FaultPlan::seeded_dropout(7, 10, 20, 0.3).seed(), Some(7));
        assert_eq!(FaultPlan::new().crash(0, 1).seed(), None);
    }

    #[test]
    fn seeded_dropout_rate_extremes() {
        assert!(FaultPlan::seeded_dropout(1, 5, 5, 0.0).is_empty());
        let all = FaultPlan::seeded_dropout(1, 5, 5, 1.0);
        assert_eq!(all.len(), 25);
        assert!(all
            .iter()
            .all(|(_, _, k)| k == FaultKind::DropUpdate));
    }

    #[test]
    fn seeded_dropout_rate_is_approximately_respected() {
        let plan = FaultPlan::seeded_dropout(42, 50, 100, 0.2);
        let frac = plan.len() as f64 / 5000.0;
        assert!((frac - 0.2).abs() < 0.03, "empirical rate {frac}");
    }

    #[test]
    fn iter_is_sorted_by_node_then_round() {
        let plan = FaultPlan::new().crash(2, 1).crash(0, 5).crash(0, 2);
        let cells: Vec<(usize, usize)> = plan.iter().map(|(n, r, _)| (n, r)).collect();
        assert_eq!(cells, vec![(0, 2), (0, 5), (2, 1)]);
    }
}

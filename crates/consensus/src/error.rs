use std::fmt;

/// Error type for the voting protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConsensusError {
    /// The vote was configured inconsistently (no nodes, no choices, or a
    /// proposal outside the choice range).
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// A node thread panicked or disconnected mid-protocol.
    NodeFailure {
        /// Index of the failed node.
        node: usize,
    },
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::InvalidConfig { reason } => {
                write!(f, "invalid vote configuration: {reason}")
            }
            ConsensusError::NodeFailure { node } => {
                write!(f, "node {node} failed during the protocol")
            }
        }
    }
}

impl std::error::Error for ConsensusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node() {
        assert!(ConsensusError::NodeFailure { node: 3 }.to_string().contains('3'));
    }
}

//! # dinar-consensus
//!
//! The distributed voting substrate of DINAR's initialization phase (§4.1).
//!
//! Before federated training starts, every client measures which of its model
//! layers leaks the most membership information and proposes that layer's
//! index. The clients then agree on a single index via **broadcast
//! distributed multi-choice voting** (DMVR, Salehkaleybar et al.), tolerant
//! of Byzantine participants: each client broadcasts its proposal to all
//! others, tallies the received proposals, and decides the value with the
//! absolute majority.
//!
//! Two implementations are provided:
//!
//! * [`vote`] — the pure decision rule (tally + absolute majority), used for
//!   reasoning and property tests;
//! * [`network`] — a full message-passing simulation where every node runs on
//!   its own thread, exchanges votes over channels, and Byzantine nodes lie,
//!   equivocate (tell different peers different values), or stay silent.
//!
//! **Agreement guarantee.** If every honest node proposes the same value `v`
//! and honest nodes form a strict majority, every honest node decides `v`
//! regardless of Byzantine behaviour — each node receives at least
//! `⌈(n+1)/2⌉` votes for `v`, which no other value can reach. This matches
//! the paper's setting, where honest clients' sensitivity analyses converge
//! on the same (penultimate) layer.
//!
//! # Example
//!
//! ```
//! use dinar_consensus::network::{simulate_vote, NodeBehavior, SimConfig};
//!
//! // 5 clients: 4 honest proposing layer 4, 1 Byzantine lying at random.
//! let behaviors = vec![
//!     NodeBehavior::Honest { proposal: 4 },
//!     NodeBehavior::Honest { proposal: 4 },
//!     NodeBehavior::Honest { proposal: 4 },
//!     NodeBehavior::Honest { proposal: 4 },
//!     NodeBehavior::byzantine_random(),
//! ];
//! let outcome = simulate_vote(&behaviors, &SimConfig { num_choices: 6, seed: 7 })?;
//! assert_eq!(outcome.agreed_value(), Some(4));
//! # Ok::<(), dinar_consensus::ConsensusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fault;
pub mod gossip;
pub mod network;
pub mod vote;

pub use error::ConsensusError;
pub use fault::{FaultKind, FaultPlan};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ConsensusError>;

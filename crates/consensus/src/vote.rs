//! The pure DMVR decision rule: tally received votes and decide.

use crate::{ConsensusError, Result};

/// Tallies votes over `num_choices` alternatives.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidConfig`] if `num_choices` is zero or any
/// vote is out of range.
pub fn tally(votes: &[usize], num_choices: usize) -> Result<Vec<usize>> {
    if num_choices == 0 {
        return Err(ConsensusError::InvalidConfig {
            reason: "num_choices must be positive".into(),
        });
    }
    let mut counts = vec![0usize; num_choices];
    for &v in votes {
        if v >= num_choices {
            return Err(ConsensusError::InvalidConfig {
                reason: format!("vote {v} out of range for {num_choices} choices"),
            });
        }
        counts[v] += 1;
    }
    Ok(counts)
}

/// The DMVR decision: the value holding an **absolute majority** of the
/// votes (strictly more than half), or `None` if no value does.
///
/// # Errors
///
/// Same conditions as [`tally`].
pub fn absolute_majority(votes: &[usize], num_choices: usize) -> Result<Option<usize>> {
    let counts = tally(votes, num_choices)?;
    let threshold = votes.len() / 2; // strictly more than half
    Ok(counts
        .iter()
        .enumerate()
        .find(|(_, &c)| c > threshold)
        .map(|(i, _)| i))
}

/// The full decision rule used by each node: absolute majority if one
/// exists, otherwise the deterministic fallback of the lowest index among
/// the plurality winners (so that nodes observing identical tallies always
/// agree).
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidConfig`] for an empty vote set or the
/// [`tally`] conditions.
pub fn decide(votes: &[usize], num_choices: usize) -> Result<usize> {
    if votes.is_empty() {
        return Err(ConsensusError::InvalidConfig {
            reason: "cannot decide from zero votes".into(),
        });
    }
    if let Some(winner) = absolute_majority(votes, num_choices)? {
        return Ok(winner);
    }
    let counts = tally(votes, num_choices)?;
    let best = *counts.iter().max().expect("num_choices > 0");
    Ok(counts
        .iter()
        .position(|&c| c == best)
        .expect("max exists"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts() {
        assert_eq!(tally(&[0, 1, 1, 2, 1], 3).unwrap(), vec![1, 3, 1]);
    }

    #[test]
    fn tally_rejects_out_of_range() {
        assert!(tally(&[3], 3).is_err());
        assert!(tally(&[], 0).is_err());
    }

    #[test]
    fn absolute_majority_requires_strict_half() {
        // 2 of 4 is not an absolute majority.
        assert_eq!(absolute_majority(&[1, 1, 2, 0], 3).unwrap(), None);
        // 3 of 4 is.
        assert_eq!(absolute_majority(&[1, 1, 1, 0], 3).unwrap(), Some(1));
        // 2 of 3 is.
        assert_eq!(absolute_majority(&[2, 2, 0], 3).unwrap(), Some(2));
    }

    #[test]
    fn decide_uses_majority_then_fallback() {
        assert_eq!(decide(&[4, 4, 4, 1, 2], 6).unwrap(), 4);
        // No majority: plurality tie between 1 and 2 -> lowest index wins.
        assert_eq!(decide(&[1, 1, 2, 2, 0], 3).unwrap(), 1);
    }

    #[test]
    fn decide_rejects_empty() {
        assert!(decide(&[], 3).is_err());
    }
}

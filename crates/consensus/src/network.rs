//! Pooled message-passing simulation of the broadcast vote.
//!
//! The round runs as a deterministic two-phase fan-out on the shared
//! [`dinar_tensor::par`] pool instead of one raw thread per node:
//!
//! 1. **Broadcast** — every node computes its outbox in parallel. Byzantine
//!    RNG draws happen inside the node's own task in ascending-peer order,
//!    so the emitted values match the historical per-thread behaviour.
//! 2. **Deliver + decide** — each honest node receives its inbox sorted by
//!    sender id and decides with [`vote::decide`], which is order-independent
//!    over the vote multiset anyway.
//!
//! The phases are barriers: every message is "sent" before any is delivered,
//! which models a synchronous round (the old channel version approximated
//! the same thing with a generous timeout). The outcome is bit-identical for
//! any `DINAR_THREADS` setting because each node's messages and decision
//! depend only on the config, never on scheduling.

use crate::{vote, ConsensusError, Result};
use dinar_telemetry::Telemetry;
use dinar_tensor::par;

/// A vote message broadcast between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteMsg {
    /// Sender node id.
    pub from: usize,
    /// Proposed value (layer index).
    pub value: usize,
}

/// Adversarial strategies for Byzantine nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Broadcast a uniformly random (but consistent) value.
    Random,
    /// Broadcast a fixed chosen value (targeted manipulation).
    Fixed(usize),
    /// Send a *different* random value to every peer (equivocation).
    Equivocate,
    /// Send nothing at all (crash/omission fault).
    Silent,
}

/// The behaviour of one node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeBehavior {
    /// Follows the protocol, proposing `proposal`.
    Honest {
        /// The value this node measured and proposes.
        proposal: usize,
    },
    /// Deviates from the protocol.
    Byzantine(ByzantineStrategy),
}

impl NodeBehavior {
    /// Shorthand for a random-lying Byzantine node.
    pub fn byzantine_random() -> Self {
        NodeBehavior::Byzantine(ByzantineStrategy::Random)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of vote alternatives (model layers).
    pub num_choices: usize,
    /// RNG seed for Byzantine behaviour.
    pub seed: u64,
}

/// The result of a simulated vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteOutcome {
    /// Per-node decision (`None` for Byzantine nodes, which do not decide).
    pub decisions: Vec<Option<usize>>,
    honest: Vec<bool>,
}

impl VoteOutcome {
    /// The value unanimously decided by all honest nodes, or `None` if the
    /// honest nodes disagree (possible only when honest proposals were split).
    pub fn agreed_value(&self) -> Option<usize> {
        let mut agreed = None;
        for (d, &h) in self.decisions.iter().zip(&self.honest) {
            if !h {
                continue;
            }
            match (agreed, d) {
                (None, Some(v)) => agreed = Some(*v),
                (Some(a), Some(v)) if a == *v => {}
                _ => return None,
            }
        }
        agreed
    }

    /// Decisions of honest nodes only.
    pub fn honest_decisions(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .zip(&self.honest)
            .filter(|(_, &h)| h)
            .filter_map(|(d, _)| *d)
            .collect()
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes node `i`'s outgoing messages: `(destination, message)` pairs in
/// ascending-destination order. Byzantine RNG draws happen here, in the same
/// per-node stream and peer order as the original threaded simulation.
fn outbox(i: usize, behavior: NodeBehavior, n: usize, config: &SimConfig) -> Vec<(usize, VoteMsg)> {
    let peers = (0..n).filter(|&j| j != i);
    let mut rng_state = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
    match behavior {
        NodeBehavior::Honest { proposal } => peers
            .map(|j| (j, VoteMsg { from: i, value: proposal }))
            .collect(),
        NodeBehavior::Byzantine(strategy) => match strategy {
            ByzantineStrategy::Silent => Vec::new(),
            ByzantineStrategy::Fixed(v) => peers
                .map(|j| {
                    (
                        j,
                        VoteMsg {
                            from: i,
                            value: v % config.num_choices,
                        },
                    )
                })
                .collect(),
            ByzantineStrategy::Random => {
                let v = (splitmix(&mut rng_state) % config.num_choices as u64) as usize;
                peers.map(|j| (j, VoteMsg { from: i, value: v })).collect()
            }
            ByzantineStrategy::Equivocate => peers
                .map(|j| {
                    let v = (splitmix(&mut rng_state) % config.num_choices as u64) as usize;
                    (j, VoteMsg { from: i, value: v })
                })
                .collect(),
        },
    }
}

/// Runs the broadcast vote as a two-phase fan-out on the shared pool.
///
/// Honest nodes broadcast their proposal to every peer; after the broadcast
/// barrier each honest node decides with [`vote::decide`] over the received
/// votes plus its own. Byzantine nodes behave per their
/// [`ByzantineStrategy`] and report no decision. The result is identical at
/// every `DINAR_THREADS` width.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidConfig`] for zero nodes/choices or an
/// out-of-range honest proposal.
pub fn simulate_vote(behaviors: &[NodeBehavior], config: &SimConfig) -> Result<VoteOutcome> {
    simulate_vote_with_telemetry(behaviors, config, &Telemetry::disabled())
}

/// [`simulate_vote`] under an attached telemetry sink: the round emits a
/// `consensus.vote` span with `broadcast`/`deliver`/`decide` children (the
/// fan-outs are pool barriers, so the phase spans nest correctly on the
/// calling thread) plus the deterministic `consensus.vote.*` counters —
/// nodes, messages sent, honest decisions reached.
///
/// # Errors
///
/// Same conditions as [`simulate_vote`].
pub fn simulate_vote_with_telemetry(
    behaviors: &[NodeBehavior],
    config: &SimConfig,
    telemetry: &Telemetry,
) -> Result<VoteOutcome> {
    let n = behaviors.len();
    if n == 0 {
        return Err(ConsensusError::InvalidConfig {
            reason: "no nodes".into(),
        });
    }
    if config.num_choices == 0 {
        return Err(ConsensusError::InvalidConfig {
            reason: "num_choices must be positive".into(),
        });
    }
    for (i, b) in behaviors.iter().enumerate() {
        if let NodeBehavior::Honest { proposal } = b {
            if *proposal >= config.num_choices {
                return Err(ConsensusError::InvalidConfig {
                    reason: format!(
                        "node {i} proposes {proposal}, out of range for {} choices",
                        config.num_choices
                    ),
                });
            }
        }
    }

    let _round_span = telemetry.span("consensus.vote");

    // Phase 1: every node computes its outbox in parallel.
    let mut senders: Vec<(usize, NodeBehavior)> =
        behaviors.iter().copied().enumerate().collect();
    let outboxes: Vec<Vec<(usize, VoteMsg)>> = {
        let _span = telemetry.span("broadcast");
        par::map_items_mut(&mut senders, |_, &mut (i, behavior)| {
            outbox(i, behavior, n, config)
        })
    };
    let messages: usize = outboxes.iter().map(Vec::len).sum();

    // Barrier: deliver every message into per-node inboxes. Senders are
    // walked in ascending id order, so each inbox is sorted by sender.
    let mut inboxes: Vec<Vec<VoteMsg>> = vec![Vec::new(); n];
    {
        let _span = telemetry.span("deliver");
        for msgs in &outboxes {
            for &(dest, msg) in msgs {
                inboxes[dest].push(msg);
            }
        }
    }

    // Phase 2: every honest node decides in parallel from its inbox.
    let mut receivers: Vec<(NodeBehavior, Vec<VoteMsg>)> =
        behaviors.iter().copied().zip(inboxes).collect();
    let decisions: Vec<Option<usize>> = {
        let _span = telemetry.span("decide");
        par::map_items_mut(&mut receivers, |_, (behavior, inbox)| match behavior {
            NodeBehavior::Honest { proposal } => {
                let mut votes = vec![*proposal]; // own vote
                votes.extend(inbox.iter().map(|m| m.value.min(config.num_choices - 1)));
                vote::decide(&votes, config.num_choices).ok()
            }
            NodeBehavior::Byzantine(_) => None,
        })
    };

    // All inputs to these counters are pure functions of (behaviors,
    // config), so the metrics replay bit-identically at every pool width.
    telemetry.counter_add("consensus.vote.rounds", 1);
    telemetry.counter_add("consensus.vote.nodes", n as u64);
    telemetry.counter_add("consensus.vote.messages", messages as u64);
    telemetry.counter_add(
        "consensus.vote.decided",
        decisions.iter().flatten().count() as u64,
    );

    Ok(VoteOutcome {
        decisions,
        honest: behaviors
            .iter()
            .map(|b| matches!(b, NodeBehavior::Honest { .. }))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize, proposal: usize) -> Vec<NodeBehavior> {
        vec![NodeBehavior::Honest { proposal }; n]
    }

    #[test]
    fn unanimous_honest_agree() {
        let outcome = simulate_vote(
            &honest(5, 3),
            &SimConfig {
                num_choices: 6,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(outcome.agreed_value(), Some(3));
        assert_eq!(outcome.honest_decisions(), vec![3; 5]);
    }

    #[test]
    fn tolerates_minority_byzantine_of_every_strategy() {
        for strategy in [
            ByzantineStrategy::Random,
            ByzantineStrategy::Fixed(0),
            ByzantineStrategy::Equivocate,
            ByzantineStrategy::Silent,
        ] {
            let mut behaviors = honest(4, 4);
            behaviors.push(NodeBehavior::Byzantine(strategy));
            behaviors.push(NodeBehavior::Byzantine(strategy));
            let outcome = simulate_vote(
                &behaviors,
                &SimConfig {
                    num_choices: 6,
                    seed: 42,
                },
            )
            .unwrap();
            assert_eq!(
                outcome.agreed_value(),
                Some(4),
                "strategy {strategy:?} broke agreement"
            );
        }
    }

    #[test]
    fn split_honest_proposals_still_decide() {
        // 3 propose layer 4, 2 propose layer 3: plurality fallback on 4.
        let mut behaviors = honest(3, 4);
        behaviors.extend(honest(2, 3));
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig {
                num_choices: 6,
                seed: 1,
            },
        )
        .unwrap();
        // All honest nodes see the same 5 votes -> same decision.
        assert_eq!(outcome.agreed_value(), Some(4));
    }

    #[test]
    fn single_node_decides_alone() {
        let outcome = simulate_vote(
            &honest(1, 2),
            &SimConfig {
                num_choices: 3,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(outcome.agreed_value(), Some(2));
    }

    #[test]
    fn config_validation() {
        assert!(simulate_vote(&[], &SimConfig { num_choices: 3, seed: 0 }).is_err());
        assert!(simulate_vote(&honest(2, 5), &SimConfig { num_choices: 3, seed: 0 }).is_err());
        assert!(simulate_vote(&honest(2, 0), &SimConfig { num_choices: 0, seed: 0 }).is_err());
    }

    #[test]
    fn byzantine_nodes_report_no_decision() {
        let mut behaviors = honest(3, 1);
        behaviors.push(NodeBehavior::byzantine_random());
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig {
                num_choices: 4,
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(outcome.decisions[3], None);
        assert!(outcome.decisions[..3].iter().all(Option::is_some));
    }

    #[test]
    fn instrumented_vote_emits_spans_and_counters() {
        use dinar_telemetry::{ManualClock, Telemetry};
        use std::sync::Arc;
        let telemetry = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let mut behaviors = honest(4, 1);
        behaviors.push(NodeBehavior::Byzantine(ByzantineStrategy::Silent));
        let outcome = simulate_vote_with_telemetry(
            &behaviors,
            &SimConfig {
                num_choices: 3,
                seed: 5,
            },
            &telemetry,
        )
        .unwrap();
        assert_eq!(outcome.agreed_value(), Some(1));
        let paths: Vec<String> =
            telemetry.spans().iter().map(|s| s.path.clone()).collect();
        for expect in [
            "consensus.vote",
            "consensus.vote/broadcast",
            "consensus.vote/deliver",
            "consensus.vote/decide",
        ] {
            assert!(paths.iter().any(|p| p == expect), "missing span {expect}");
        }
        assert_eq!(telemetry.counter_value("consensus.vote.rounds"), 1);
        assert_eq!(telemetry.counter_value("consensus.vote.nodes"), 5);
        // 4 honest senders × 4 peers; the silent node sends nothing.
        assert_eq!(telemetry.counter_value("consensus.vote.messages"), 16);
        assert_eq!(telemetry.counter_value("consensus.vote.decided"), 4);
    }

    #[test]
    fn outcome_is_identical_at_every_pool_width() {
        let mut behaviors = honest(5, 2);
        behaviors.push(NodeBehavior::Byzantine(ByzantineStrategy::Equivocate));
        behaviors.push(NodeBehavior::Byzantine(ByzantineStrategy::Random));
        let config = SimConfig {
            num_choices: 4,
            seed: 7,
        };
        let mut outcomes = Vec::new();
        for width in [1usize, 2, 4] {
            par::set_threads(width);
            outcomes.push(simulate_vote(&behaviors, &config).unwrap());
            par::reset_threads();
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }
}

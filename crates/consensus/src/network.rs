//! Threaded message-passing simulation of the broadcast vote.
//!
//! Every node runs on its own thread and communicates only through channels,
//! so the protocol logic is exercised under real concurrency: messages arrive
//! in arbitrary order, Byzantine nodes may equivocate or stay silent, and
//! honest nodes must decide from whatever arrives before the round deadline.

use crate::{vote, ConsensusError, Result};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread;
use std::time::Duration;

/// How long an honest node waits for missing votes before deciding with
/// what it has (simulated round deadline).
const ROUND_TIMEOUT: Duration = Duration::from_millis(500);

/// A vote message broadcast between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteMsg {
    /// Sender node id.
    pub from: usize,
    /// Proposed value (layer index).
    pub value: usize,
}

/// Adversarial strategies for Byzantine nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Broadcast a uniformly random (but consistent) value.
    Random,
    /// Broadcast a fixed chosen value (targeted manipulation).
    Fixed(usize),
    /// Send a *different* random value to every peer (equivocation).
    Equivocate,
    /// Send nothing at all (crash/omission fault).
    Silent,
}

/// The behaviour of one node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeBehavior {
    /// Follows the protocol, proposing `proposal`.
    Honest {
        /// The value this node measured and proposes.
        proposal: usize,
    },
    /// Deviates from the protocol.
    Byzantine(ByzantineStrategy),
}

impl NodeBehavior {
    /// Shorthand for a random-lying Byzantine node.
    pub fn byzantine_random() -> Self {
        NodeBehavior::Byzantine(ByzantineStrategy::Random)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of vote alternatives (model layers).
    pub num_choices: usize,
    /// RNG seed for Byzantine behaviour.
    pub seed: u64,
}

/// The result of a simulated vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteOutcome {
    /// Per-node decision (`None` for Byzantine nodes, which do not decide).
    pub decisions: Vec<Option<usize>>,
    honest: Vec<bool>,
}

impl VoteOutcome {
    /// The value unanimously decided by all honest nodes, or `None` if the
    /// honest nodes disagree (possible only when honest proposals were split).
    pub fn agreed_value(&self) -> Option<usize> {
        let mut agreed = None;
        for (d, &h) in self.decisions.iter().zip(&self.honest) {
            if !h {
                continue;
            }
            match (agreed, d) {
                (None, Some(v)) => agreed = Some(*v),
                (Some(a), Some(v)) if a == *v => {}
                _ => return None,
            }
        }
        agreed
    }

    /// Decisions of honest nodes only.
    pub fn honest_decisions(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .zip(&self.honest)
            .filter(|(_, &h)| h)
            .filter_map(|(d, _)| *d)
            .collect()
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the broadcast vote with one thread per node.
///
/// Honest nodes broadcast their proposal to every peer, wait for the round
/// deadline (or all `n - 1` peer votes, whichever first), then decide with
/// [`vote::decide`] over the received votes plus their own. Byzantine nodes
/// behave per their [`ByzantineStrategy`] and report no decision.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidConfig`] for zero nodes/choices or an
/// out-of-range honest proposal, and [`ConsensusError::NodeFailure`] if a
/// node thread panics.
pub fn simulate_vote(behaviors: &[NodeBehavior], config: &SimConfig) -> Result<VoteOutcome> {
    let n = behaviors.len();
    if n == 0 {
        return Err(ConsensusError::InvalidConfig {
            reason: "no nodes".into(),
        });
    }
    if config.num_choices == 0 {
        return Err(ConsensusError::InvalidConfig {
            reason: "num_choices must be positive".into(),
        });
    }
    for (i, b) in behaviors.iter().enumerate() {
        if let NodeBehavior::Honest { proposal } = b {
            if *proposal >= config.num_choices {
                return Err(ConsensusError::InvalidConfig {
                    reason: format!(
                        "node {i} proposes {proposal}, out of range for {} choices",
                        config.num_choices
                    ),
                });
            }
        }
    }

    // All-to-all mailboxes: one channel per receiving node.
    let mut senders: Vec<Sender<VoteMsg>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<VoteMsg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let mut handles = Vec::with_capacity(n);
    for (i, behavior) in behaviors.iter().copied().enumerate() {
        let my_rx = receivers[i].take().expect("receiver taken once");
        let peers: Vec<(usize, Sender<VoteMsg>)> = senders
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, tx)| (j, tx.clone()))
            .collect();
        let num_choices = config.num_choices;
        let mut rng_state = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
        handles.push(thread::spawn(move || -> Option<usize> {
            match behavior {
                NodeBehavior::Honest { proposal } => {
                    for (_, tx) in &peers {
                        // A disconnected peer is tolerated (it may be silent
                        // Byzantine that already exited).
                        let _ = tx.send(VoteMsg {
                            from: i,
                            value: proposal,
                        });
                    }
                    let mut votes = vec![proposal]; // own vote
                    while votes.len() < peers.len() + 1 {
                        match my_rx.recv_timeout(ROUND_TIMEOUT) {
                            Ok(msg) => votes.push(msg.value.min(num_choices - 1)),
                            Err(_) => break, // deadline: decide with what we have
                        }
                    }
                    vote::decide(&votes, num_choices).ok()
                }
                NodeBehavior::Byzantine(strategy) => {
                    match strategy {
                        ByzantineStrategy::Silent => {}
                        ByzantineStrategy::Fixed(v) => {
                            for (_, tx) in &peers {
                                let _ = tx.send(VoteMsg {
                                    from: i,
                                    value: v % num_choices,
                                });
                            }
                        }
                        ByzantineStrategy::Random => {
                            let v = (splitmix(&mut rng_state) % num_choices as u64) as usize;
                            for (_, tx) in &peers {
                                let _ = tx.send(VoteMsg { from: i, value: v });
                            }
                        }
                        ByzantineStrategy::Equivocate => {
                            for (_, tx) in &peers {
                                let v =
                                    (splitmix(&mut rng_state) % num_choices as u64) as usize;
                                let _ = tx.send(VoteMsg { from: i, value: v });
                            }
                        }
                    }
                    None
                }
            }
        }));
    }
    drop(senders);

    let mut decisions = Vec::with_capacity(n);
    for (i, h) in handles.into_iter().enumerate() {
        decisions.push(h.join().map_err(|_| ConsensusError::NodeFailure { node: i })?);
    }
    Ok(VoteOutcome {
        decisions,
        honest: behaviors
            .iter()
            .map(|b| matches!(b, NodeBehavior::Honest { .. }))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize, proposal: usize) -> Vec<NodeBehavior> {
        vec![NodeBehavior::Honest { proposal }; n]
    }

    #[test]
    fn unanimous_honest_agree() {
        let outcome = simulate_vote(
            &honest(5, 3),
            &SimConfig {
                num_choices: 6,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(outcome.agreed_value(), Some(3));
        assert_eq!(outcome.honest_decisions(), vec![3; 5]);
    }

    #[test]
    fn tolerates_minority_byzantine_of_every_strategy() {
        for strategy in [
            ByzantineStrategy::Random,
            ByzantineStrategy::Fixed(0),
            ByzantineStrategy::Equivocate,
            ByzantineStrategy::Silent,
        ] {
            let mut behaviors = honest(4, 4);
            behaviors.push(NodeBehavior::Byzantine(strategy));
            behaviors.push(NodeBehavior::Byzantine(strategy));
            let outcome = simulate_vote(
                &behaviors,
                &SimConfig {
                    num_choices: 6,
                    seed: 42,
                },
            )
            .unwrap();
            assert_eq!(
                outcome.agreed_value(),
                Some(4),
                "strategy {strategy:?} broke agreement"
            );
        }
    }

    #[test]
    fn split_honest_proposals_still_decide() {
        // 3 propose layer 4, 2 propose layer 3: plurality fallback on 4.
        let mut behaviors = honest(3, 4);
        behaviors.extend(honest(2, 3));
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig {
                num_choices: 6,
                seed: 1,
            },
        )
        .unwrap();
        // All honest nodes see the same 5 votes -> same decision.
        assert_eq!(outcome.agreed_value(), Some(4));
    }

    #[test]
    fn single_node_decides_alone() {
        let outcome = simulate_vote(
            &honest(1, 2),
            &SimConfig {
                num_choices: 3,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(outcome.agreed_value(), Some(2));
    }

    #[test]
    fn config_validation() {
        assert!(simulate_vote(&[], &SimConfig { num_choices: 3, seed: 0 }).is_err());
        assert!(simulate_vote(&honest(2, 5), &SimConfig { num_choices: 3, seed: 0 }).is_err());
        assert!(simulate_vote(&honest(2, 0), &SimConfig { num_choices: 0, seed: 0 }).is_err());
    }

    #[test]
    fn byzantine_nodes_report_no_decision() {
        let mut behaviors = honest(3, 1);
        behaviors.push(NodeBehavior::byzantine_random());
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig {
                num_choices: 4,
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(outcome.decisions[3], None);
        assert!(outcome.decisions[..3].iter().all(Option::is_some));
    }
}

//! Gossip-based distributed multi-choice voting (the DMVR family proper).
//!
//! The broadcast vote in [`crate::network`] assumes all-to-all connectivity.
//! The algorithm the paper's reference \[39\] (Salehkaleybar et al.,
//! *Distributed Voting/Ranking with Optimal Number of States per Node*)
//! actually targets is gossip-style: nodes interact **pairwise** at random,
//! carry a small bounded state, and the population converges to the majority
//! value without any node ever seeing a global tally.
//!
//! This module implements the classic quaternary-state binary-consensus
//! building block generalized to `K` choices by pairwise elimination
//! (population-protocol majority): each node holds a candidate value and a
//! strength in `{strong, weak}`.
//!
//! * strong(a) meets strong(b), a ≠ b → both become weak (mutual
//!   annihilation; the majority survives attrition),
//! * strong(a) meets weak(b), a ≠ b → the weak node converts to weak(a),
//! * weak(a) meets weak(b), a ≠ b → tie-break: both adopt min(a, b) weakly,
//! * equal values reinforce: a weak node meeting its own value strongly
//!   becomes strong.
//!
//! With an initial majority of strong votes for value `v`, the population
//! converges to unanimous `v` with high probability in `O(n log n)` pairwise
//! interactions — verified statistically by the tests below.

use crate::fault::{splitmix, FaultKind, FaultPlan};
use crate::{ConsensusError, Result};
use dinar_telemetry::Telemetry;

/// A node's gossip state: its current candidate and conviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipState {
    /// Current candidate value.
    pub value: usize,
    /// Strong states drive the majority computation; weak states follow.
    pub strong: bool,
}

/// Result of a gossip run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipOutcome {
    /// Final per-node states.
    pub states: Vec<GossipState>,
    /// Number of pairwise interactions executed.
    pub interactions: u64,
    /// Whether the population was unanimous when the run stopped.
    pub converged: bool,
}

impl GossipOutcome {
    /// The unanimous value, if the population converged.
    pub fn unanimous_value(&self) -> Option<usize> {
        let first = self.states.first()?.value;
        self.states
            .iter()
            .all(|s| s.value == first)
            .then_some(first)
    }
}

/// One pairwise interaction between initiator `a` and responder `b`.
fn interact(a: GossipState, b: GossipState) -> (GossipState, GossipState) {
    use GossipState as S;
    if a.value == b.value {
        // Reinforcement: same candidate, strength spreads.
        let strong = a.strong || b.strong;
        return (
            S { value: a.value, strong },
            S { value: b.value, strong },
        );
    }
    match (a.strong, b.strong) {
        (true, true) => (
            // Mutual annihilation: both lose conviction.
            S { value: a.value, strong: false },
            S { value: b.value, strong: false },
        ),
        (true, false) => (a, S { value: a.value, strong: false }),
        (false, true) => (S { value: b.value, strong: false }, b),
        (false, false) => {
            let v = a.value.min(b.value);
            (S { value: v, strong: false }, S { value: v, strong: false })
        }
    }
}

/// Runs the gossip protocol from the given proposals until the population is
/// unanimous or `max_interactions` pairwise meetings have happened.
///
/// # Errors
///
/// Returns [`ConsensusError::InvalidConfig`] for fewer than two nodes or
/// out-of-range proposals.
pub fn gossip_vote(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
) -> Result<GossipOutcome> {
    gossip_vote_with_telemetry(
        proposals,
        num_choices,
        max_interactions,
        seed,
        &Telemetry::disabled(),
    )
}

/// [`gossip_vote`] under an attached telemetry sink: the run executes inside
/// a `consensus.gossip` span and reports the deterministic
/// `consensus.gossip.*` counters — runs, interactions spent, converged runs.
/// The schedule is a pure function of `(proposals, seed)`, so the counters
/// replay bit-identically.
///
/// # Errors
///
/// Same conditions as [`gossip_vote`].
pub fn gossip_vote_with_telemetry(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<GossipOutcome> {
    let _span = telemetry.span("consensus.gossip");
    let outcome = gossip_core(proposals, num_choices, max_interactions, seed)?;
    record_gossip_telemetry(telemetry, &outcome);
    Ok(outcome)
}

fn gossip_core(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
) -> Result<GossipOutcome> {
    if proposals.len() < 2 {
        return Err(ConsensusError::InvalidConfig {
            reason: "gossip needs at least two nodes".into(),
        });
    }
    if let Some(&bad) = proposals.iter().find(|&&p| p >= num_choices) {
        return Err(ConsensusError::InvalidConfig {
            reason: format!("proposal {bad} out of range for {num_choices} choices"),
        });
    }
    let mut states: Vec<GossipState> = proposals
        .iter()
        .map(|&value| GossipState { value, strong: true })
        .collect();
    let n = states.len();
    let mut rng = seed;
    let mut interactions = 0u64;
    // Check convergence every (up to) n interactions to amortize the scan;
    // the final sweep is clamped so the budget is respected *exactly*.
    while interactions < max_interactions {
        let sweep = (n as u64).min(max_interactions - interactions);
        for _ in 0..sweep {
            let i = (splitmix(&mut rng) % n as u64) as usize;
            let mut j = (splitmix(&mut rng) % (n as u64 - 1)) as usize;
            if j >= i {
                j += 1;
            }
            let (a, b) = interact(states[i], states[j]);
            states[i] = a;
            states[j] = b;
            interactions += 1;
        }
        let first = states[0].value;
        if states.iter().all(|s| s.value == first) {
            return Ok(GossipOutcome {
                states,
                interactions,
                converged: true,
            });
        }
    }
    Ok(GossipOutcome {
        states,
        interactions,
        converged: false,
    })
}

/// [`gossip_vote`] under node churn: nodes scheduled with a
/// [`FaultKind::Crash`] in `plan` leave the population at the start of the
/// given *sweep* (one sweep ≈ `n` pairwise meetings, the plan's "round",
/// 1-based) and never interact again — their state freezes at its
/// crash-time value. Other fault kinds model message-level conditions that
/// have no meaning for state-merge gossip and are ignored here.
///
/// Convergence is judged over the *surviving* nodes: the outcome is
/// `converged` when every non-crashed node agrees, and
/// [`GossipOutcome::states`] retains the crashed nodes' frozen states (so
/// [`GossipOutcome::unanimous_value`], which scans everyone, may still
/// return `None` — ask the survivors instead). If churn leaves fewer than
/// two live nodes, the run stops at that sweep.
///
/// Determinism: the interaction schedule is a pure function of
/// `(seed, plan)`, so a run replays bit-identically.
///
/// # Errors
///
/// Same conditions as [`gossip_vote`].
pub fn gossip_vote_under_churn(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
    plan: &FaultPlan,
) -> Result<GossipOutcome> {
    gossip_vote_under_churn_with_telemetry(
        proposals,
        num_choices,
        max_interactions,
        seed,
        plan,
        &Telemetry::disabled(),
    )
}

/// [`gossip_vote_under_churn`] under an attached telemetry sink: the
/// `consensus.gossip` span and counters of
/// [`gossip_vote_with_telemetry`], plus a `consensus.gossip.crashed`
/// counter for the nodes the plan removed.
///
/// # Errors
///
/// Same conditions as [`gossip_vote_under_churn`].
pub fn gossip_vote_under_churn_with_telemetry(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
    plan: &FaultPlan,
    telemetry: &Telemetry,
) -> Result<GossipOutcome> {
    let _span = telemetry.span("consensus.gossip");
    let outcome = churn_core(proposals, num_choices, max_interactions, seed, plan)?;
    record_gossip_telemetry(telemetry, &outcome);
    telemetry.counter_add(
        "consensus.gossip.crashed",
        plan.iter()
            .filter(|&(_, _, k)| k == FaultKind::Crash)
            .count() as u64,
    );
    Ok(outcome)
}

fn churn_core(
    proposals: &[usize],
    num_choices: usize,
    max_interactions: u64,
    seed: u64,
    plan: &FaultPlan,
) -> Result<GossipOutcome> {
    if proposals.len() < 2 {
        return Err(ConsensusError::InvalidConfig {
            reason: "gossip needs at least two nodes".into(),
        });
    }
    if let Some(&bad) = proposals.iter().find(|&&p| p >= num_choices) {
        return Err(ConsensusError::InvalidConfig {
            reason: format!("proposal {bad} out of range for {num_choices} choices"),
        });
    }
    let mut states: Vec<GossipState> = proposals
        .iter()
        .map(|&value| GossipState { value, strong: true })
        .collect();
    let n = states.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut rng = seed;
    let mut interactions = 0u64;
    let mut sweep_no = 0usize;
    while interactions < max_interactions {
        sweep_no += 1;
        // Apply this sweep's churn, then collect the surviving indices.
        for node in 0..n {
            if matches!(plan.action(node, sweep_no), Some(FaultKind::Crash)) {
                alive[node] = false;
            }
        }
        let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        if live.len() < 2 {
            break;
        }
        let m = live.len() as u64;
        let sweep = m.min(max_interactions - interactions);
        for _ in 0..sweep {
            let ix = (splitmix(&mut rng) % m) as usize;
            let mut jx = (splitmix(&mut rng) % (m - 1)) as usize;
            if jx >= ix {
                jx += 1;
            }
            let (i, j) = (live[ix], live[jx]);
            let (a, b) = interact(states[i], states[j]);
            states[i] = a;
            states[j] = b;
            interactions += 1;
        }
        let first = states[live[0]].value;
        if live.iter().all(|&i| states[i].value == first) {
            return Ok(GossipOutcome {
                states,
                interactions,
                converged: true,
            });
        }
    }
    let converged = {
        let live: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        match live.first() {
            Some(&first) => live.iter().all(|&i| states[i].value == states[first].value),
            None => false,
        }
    };
    Ok(GossipOutcome {
        states,
        interactions,
        converged,
    })
}

/// Deterministic gossip counters: every value is a pure function of the
/// run's inputs, so the metrics replay bit-identically.
fn record_gossip_telemetry(telemetry: &Telemetry, outcome: &GossipOutcome) {
    telemetry.counter_add("consensus.gossip.runs", 1);
    telemetry.counter_add("consensus.gossip.interactions", outcome.interactions);
    telemetry.counter_add(
        "consensus.gossip.converged",
        u64::from(outcome.converged),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_majority_wins() {
        // 8 of 11 propose layer 4.
        let mut proposals = vec![4usize; 8];
        proposals.extend([1, 2, 3]);
        let outcome = gossip_vote(&proposals, 6, 200_000, 7).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.unanimous_value(), Some(4));
    }

    #[test]
    fn unanimous_input_converges_immediately() {
        let outcome = gossip_vote(&[2; 10], 5, 1_000, 1).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.unanimous_value(), Some(2));
        assert!(outcome.interactions <= 10);
    }

    #[test]
    fn majority_wins_across_seeds() {
        // Statistical check: a 2/3 majority should win essentially always.
        let mut proposals = vec![3usize; 20];
        proposals.extend(vec![1usize; 10]);
        let mut wins = 0;
        for seed in 0..20 {
            let outcome = gossip_vote(&proposals, 5, 1_000_000, seed).unwrap();
            if outcome.unanimous_value() == Some(3) {
                wins += 1;
            }
        }
        assert!(wins >= 18, "majority won only {wins}/20 runs");
    }

    #[test]
    fn interaction_budget_is_respected() {
        let proposals: Vec<usize> = (0..50).map(|i| i % 5).collect();
        let outcome = gossip_vote(&proposals, 5, 100, 3).unwrap();
        assert!(outcome.interactions <= 100, "{}", outcome.interactions);
    }

    #[test]
    fn interaction_budget_is_exact_for_non_multiple_of_population() {
        // 75 is not a multiple of n = 50: the old per-sweep check would run
        // a full second sweep and overshoot to 100.
        let proposals: Vec<usize> = (0..50).map(|i| i % 5).collect();
        let outcome = gossip_vote(&proposals, 5, 75, 3).unwrap();
        assert!(
            outcome.interactions <= 75,
            "budget overshot: {}",
            outcome.interactions
        );
        // An unconverged run must spend exactly its budget, not less.
        if !outcome.converged {
            assert_eq!(outcome.interactions, 75);
        }
    }

    #[test]
    fn churn_survivors_still_converge_on_majority() {
        // 9 of 12 propose value 4; two of the minority nodes crash early.
        let mut proposals = vec![4usize; 9];
        proposals.extend([1, 2, 3]);
        let plan = FaultPlan::new().crash(9, 2).crash(10, 3);
        let outcome = gossip_vote_under_churn(&proposals, 6, 200_000, 11, &plan).unwrap();
        assert!(outcome.converged);
        // Every surviving node (all but 9 and 10) agrees on the majority.
        for (i, s) in outcome.states.iter().enumerate() {
            if i != 9 && i != 10 {
                assert_eq!(s.value, 4, "node {i} disagrees");
            }
        }
    }

    #[test]
    fn churn_run_is_deterministic() {
        let proposals: Vec<usize> = (0..20).map(|i| usize::from(i % 3 == 0)).collect();
        let plan = FaultPlan::seeded_dropout(5, 20, 10, 0.2).crash(3, 2);
        let a = gossip_vote_under_churn(&proposals, 2, 50_000, 9, &plan).unwrap();
        let b = gossip_vote_under_churn(&proposals, 2, 50_000, 9, &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn churn_below_two_live_nodes_stops() {
        let plan = FaultPlan::new().crash(0, 1).crash(1, 1);
        let outcome = gossip_vote_under_churn(&[0, 1, 2], 3, 10_000, 1, &plan).unwrap();
        // One live node left: the run stops without spending the budget and
        // the lone survivor is trivially unanimous.
        assert!(outcome.interactions < 10_000);
        assert!(outcome.converged);
    }

    #[test]
    fn churn_with_empty_plan_matches_plain_gossip() {
        let mut proposals = vec![2usize; 8];
        proposals.extend([0, 1]);
        let plain = gossip_vote(&proposals, 4, 100_000, 21).unwrap();
        let churn =
            gossip_vote_under_churn(&proposals, 4, 100_000, 21, &FaultPlan::new()).unwrap();
        assert_eq!(plain, churn);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(gossip_vote(&[1], 3, 100, 0).is_err());
        assert!(gossip_vote(&[1, 5], 3, 100, 0).is_err());
    }

    #[test]
    fn instrumented_gossip_emits_span_and_counters() {
        use dinar_telemetry::{ManualClock, Telemetry};
        use std::sync::Arc;
        let telemetry = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let outcome =
            gossip_vote_with_telemetry(&[2; 10], 5, 1_000, 1, &telemetry).unwrap();
        assert!(outcome.converged);
        assert!(telemetry
            .spans()
            .iter()
            .any(|s| s.path == "consensus.gossip"));
        assert_eq!(telemetry.counter_value("consensus.gossip.runs"), 1);
        assert_eq!(
            telemetry.counter_value("consensus.gossip.interactions"),
            outcome.interactions
        );
        assert_eq!(telemetry.counter_value("consensus.gossip.converged"), 1);

        // The churn variant adds the crash count from the plan.
        let plan = FaultPlan::new().crash(0, 1).crash(1, 2);
        gossip_vote_under_churn_with_telemetry(&[0, 1, 2, 2], 3, 1_000, 3, &plan, &telemetry)
            .unwrap();
        assert_eq!(telemetry.counter_value("consensus.gossip.runs"), 2);
        assert_eq!(telemetry.counter_value("consensus.gossip.crashed"), 2);
    }

    #[test]
    fn interaction_rules_are_symmetric_in_value_survival() {
        // strong-strong annihilation leaves both weak with their values.
        let a = GossipState { value: 1, strong: true };
        let b = GossipState { value: 2, strong: true };
        let (a2, b2) = interact(a, b);
        assert!(!a2.strong && !b2.strong);
        assert_eq!(a2.value, 1);
        assert_eq!(b2.value, 2);
        // strong converts weak.
        let w = GossipState { value: 3, strong: false };
        let (s2, w2) = interact(a, w);
        assert_eq!(s2, a);
        assert_eq!(w2.value, 1);
        assert!(!w2.strong);
    }
}

//! Property-based tests of the voting protocols: agreement, validity and
//! Byzantine tolerance across arbitrary configurations.

use dinar_consensus::gossip::gossip_vote;
use dinar_consensus::network::{simulate_vote, ByzantineStrategy, NodeBehavior, SimConfig};
use dinar_consensus::vote;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast vote: when all honest nodes propose the same value and
    /// Byzantine nodes are a strict minority, every honest node decides the
    /// honest value — for every adversarial strategy.
    #[test]
    fn broadcast_agreement_under_byzantine_minority(
        honest in 2usize..7,
        byzantine in 0usize..3,
        value in 0usize..5,
        strategy_idx in 0usize..4,
        seed in 0u64..500,
    ) {
        prop_assume!(byzantine < honest);
        let strategy = [
            ByzantineStrategy::Random,
            ByzantineStrategy::Fixed(0),
            ByzantineStrategy::Equivocate,
            ByzantineStrategy::Silent,
        ][strategy_idx];
        let mut behaviors = vec![NodeBehavior::Honest { proposal: value }; honest];
        behaviors.extend(vec![NodeBehavior::Byzantine(strategy); byzantine]);
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig { num_choices: 5, seed },
        ).unwrap();
        prop_assert_eq!(outcome.agreed_value(), Some(value));
    }

    /// The pure decision rule is *valid*: it only ever returns a value that
    /// was actually voted for.
    #[test]
    fn decide_validity(votes in prop::collection::vec(0usize..7, 1..25)) {
        let decided = vote::decide(&votes, 7).unwrap();
        prop_assert!(votes.contains(&decided));
    }

    /// Absolute majority, when it exists, is unique and decided.
    #[test]
    fn absolute_majority_uniqueness(votes in prop::collection::vec(0usize..4, 1..30)) {
        if let Some(winner) = vote::absolute_majority(&votes, 4).unwrap() {
            let count = votes.iter().filter(|&&v| v == winner).count();
            prop_assert!(count * 2 > votes.len());
            prop_assert_eq!(vote::decide(&votes, 4).unwrap(), winner);
        }
    }

    /// Gossip vote: a 3:1 supermajority converges to the majority value
    /// within the interaction budget for populations up to 30 nodes.
    #[test]
    fn gossip_supermajority_converges(
        minority in 1usize..6,
        value in 0usize..4,
        other in 0usize..4,
        seed in 0u64..200,
    ) {
        prop_assume!(value != other);
        let majority = minority * 3 + 1;
        let mut proposals = vec![value; majority];
        proposals.extend(vec![other; minority]);
        let outcome = gossip_vote(&proposals, 4, 2_000_000, seed).unwrap();
        prop_assert!(outcome.converged);
        prop_assert_eq!(outcome.unanimous_value(), Some(value));
    }
}

//! Property tests of the voting protocols — agreement, validity and
//! Byzantine tolerance across arbitrary configurations — driven by the
//! workspace's own seeded RNG instead of `proptest` so the whole suite is
//! deterministic and dependency-free.

use dinar_consensus::gossip::gossip_vote;
use dinar_consensus::network::{simulate_vote, ByzantineStrategy, NodeBehavior, SimConfig};
use dinar_consensus::vote;
use dinar_tensor::Rng;

const CASES: u64 = 24;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xD1AA_3000 + property * 10_007 + case)
}

/// Random vote multiset: `len` votes over `choices` values.
fn random_votes(rng: &mut Rng, len: usize, choices: usize) -> Vec<usize> {
    (0..len).map(|_| rng.below(choices)).collect()
}

/// Broadcast vote: when all honest nodes propose the same value and
/// Byzantine nodes are a strict minority, every honest node decides the
/// honest value — for every adversarial strategy.
#[test]
fn broadcast_agreement_under_byzantine_minority() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let honest = 2 + rng.below(5);
        let byzantine = rng.below(honest.min(3)); // strict minority
        let value = rng.below(5);
        let strategy = [
            ByzantineStrategy::Random,
            ByzantineStrategy::Fixed(0),
            ByzantineStrategy::Equivocate,
            ByzantineStrategy::Silent,
        ][rng.below(4)];
        let seed = rng.next_u64() % 500;
        let mut behaviors = vec![NodeBehavior::Honest { proposal: value }; honest];
        behaviors.extend(vec![NodeBehavior::Byzantine(strategy); byzantine]);
        let outcome = simulate_vote(
            &behaviors,
            &SimConfig { num_choices: 5, seed },
        ).unwrap();
        assert_eq!(outcome.agreed_value(), Some(value), "case {case}");
    }
}

/// The pure decision rule is *valid*: it only ever returns a value that
/// was actually voted for.
#[test]
fn decide_validity() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let len = 1 + rng.below(24);
        let votes = random_votes(&mut rng, len, 7);
        let decided = vote::decide(&votes, 7).unwrap();
        assert!(votes.contains(&decided), "case {case}");
    }
}

/// Absolute majority, when it exists, is unique and decided.
#[test]
fn absolute_majority_uniqueness() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let len = 1 + rng.below(29);
        let votes = random_votes(&mut rng, len, 4);
        if let Some(winner) = vote::absolute_majority(&votes, 4).unwrap() {
            let count = votes.iter().filter(|&&v| v == winner).count();
            assert!(count * 2 > votes.len(), "case {case}");
            assert_eq!(vote::decide(&votes, 4).unwrap(), winner, "case {case}");
        }
    }
}

/// Gossip vote: a 3:1 supermajority converges to the majority value
/// within the interaction budget for populations up to 30 nodes.
#[test]
fn gossip_supermajority_converges() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let minority = 1 + rng.below(5);
        let value = rng.below(4);
        let other = (value + 1 + rng.below(3)) % 4; // always != value
        let seed = rng.next_u64() % 200;
        let majority = minority * 3 + 1;
        let mut proposals = vec![value; majority];
        proposals.extend(vec![other; minority]);
        let outcome = gossip_vote(&proposals, 4, 2_000_000, seed).unwrap();
        assert!(outcome.converged, "case {case}");
        assert_eq!(outcome.unanimous_value(), Some(value), "case {case}");
    }
}

//! Mid-round resume images: checkpoint a whole FL system — even between
//! two clients of an unfinished round — and restart it bit-identically.
//!
//! A resume image is a `DNCK` file ([`dinar_nn::ckpt`]) with header kind
//! `fl-resume`. It captures everything mutable in the engine:
//!
//! * the server's global model and completed-round counter,
//! * every client's model parameters, RNG stream position
//!   ([`dinar_tensor::RngState`]), optimizer state
//!   ([`dinar_nn::optim::OptimState`]) and middleware state
//!   ([`MiddlewareState`]) — DINAR's stored private layers included,
//! * an optional partial round: the `(loss, update)` pairs of the clients
//!   that already finished this round, in client order.
//!
//! What it deliberately does **not** capture: the private data shards and
//! static configuration (epochs, batch size, architecture, middleware
//! stack). A resumed run rebuilds those from the same builder inputs, then
//! installs the image with [`crate::FlSystem::restore`]. Because the
//! engine's parallel fan-out trains clients independently and aggregates
//! in client order, the sequential partial-round driver
//! ([`crate::FlSystem::begin_round_partial`] / `finish_round`) produces a
//! final model bit-identical to an uninterrupted parallel run — the
//! determinism contract `tests/resume_determinism.rs` pins at every
//! thread-pool width.
//!
//! All model tensors are stored at [`Dtype::F32`]: a resume image is a
//! fidelity-critical artifact, so the narrower f16/i8 widths (meant for
//! serving) are not offered here.

use crate::{ClientUpdate, FlError, MiddlewareState, Result};
use dinar_nn::ckpt::{expect_header, read_tensor, write_header, write_tensor, CkptKind};
use dinar_nn::optim::OptimState;
use dinar_nn::{LayerParams, ModelParams, NnError};
use dinar_tensor::wire::{ByteReader, ByteWriter, WireError};
use dinar_tensor::{Dtype, RngState};
use std::fs;
use std::path::Path;

/// One client's mutable state inside a resume image.
#[derive(Debug, Clone)]
pub struct ClientCkpt {
    /// The client's id (must match the rebuilt client on restore).
    pub id: usize,
    /// The client's (personalized) model parameters.
    pub params: ModelParams,
    /// The client's RNG stream position (batch shuffling determinism).
    pub rng: RngState,
    /// The client's optimizer state (momenta, accumulators, step count).
    pub optim: OptimState,
    /// Per-middleware state, `None` for stateless entries, in stack order.
    pub middleware: Vec<Option<MiddlewareState>>,
}

/// The already-finished portion of an interrupted round: each entry is the
/// `(mean training loss, update)` a client produced, in client order
/// (clients `0..completed.len()` are done; the rest have not started).
#[derive(Debug, Clone, Default)]
pub struct PendingRound {
    /// Finished `(loss, update)` pairs, in client order.
    pub completed: Vec<(f32, ClientUpdate)>,
}

/// A complete FL resume image.
#[derive(Debug, Clone)]
pub struct FlCheckpoint {
    /// Rounds fully completed before the image was taken.
    pub rounds_run: usize,
    /// The server's current global model.
    pub global: ModelParams,
    /// Per-client state, in client order.
    pub clients: Vec<ClientCkpt>,
    /// The interrupted round's finished portion, if the image was taken
    /// mid-round.
    pub pending: Option<PendingRound>,
}

fn ckpt_len(n: usize, what: &'static str) -> Result<u32> {
    u32::try_from(n).map_err(|_| {
        FlError::Nn(NnError::Wire(WireError::LengthOverflow {
            what,
            value: u64::try_from(n).unwrap_or(u64::MAX),
        }))
    })
}

fn write_layer(w: &mut ByteWriter, layer: &LayerParams) -> Result<()> {
    w.put_u32(ckpt_len(layer.tensors.len(), "resume tensor count")?);
    for t in &layer.tensors {
        write_tensor(w, t, Dtype::F32)?;
    }
    Ok(())
}

fn read_layer(r: &mut ByteReader<'_>) -> Result<LayerParams> {
    let count = r.read_u32().map_err(NnError::Wire)?;
    let mut tensors = Vec::new();
    for _ in 0..count {
        tensors.push(read_tensor(r)?.into_tensor());
    }
    Ok(LayerParams::new(tensors))
}

fn write_params(w: &mut ByteWriter, params: &ModelParams) -> Result<()> {
    w.put_u32(ckpt_len(params.layers.len(), "resume layer count")?);
    for layer in &params.layers {
        write_layer(w, layer)?;
    }
    Ok(())
}

fn read_params(r: &mut ByteReader<'_>) -> Result<ModelParams> {
    let count = r.read_u32().map_err(NnError::Wire)?;
    let mut layers = Vec::new();
    for _ in 0..count {
        layers.push(read_layer(r)?);
    }
    Ok(ModelParams::new(layers))
}

fn write_rng(w: &mut ByteWriter, rng: &RngState) {
    for &word in &rng.words {
        w.put_u64(word);
    }
    match rng.gauss_cache {
        Some(cached) => {
            w.put_u8(1);
            w.put_f32(cached);
        }
        None => w.put_u8(0),
    }
}

fn read_rng(r: &mut ByteReader<'_>) -> Result<RngState> {
    let mut words = [0u64; 4];
    for word in &mut words {
        *word = r.read_u64().map_err(NnError::Wire)?;
    }
    let gauss_cache = match r.read_u8().map_err(NnError::Wire)? {
        0 => None,
        _ => Some(r.read_f32().map_err(NnError::Wire)?),
    };
    Ok(RngState { words, gauss_cache })
}

fn write_optim(w: &mut ByteWriter, optim: &OptimState) -> Result<()> {
    w.put_u32(ckpt_len(optim.scalars.len(), "resume optim scalar count")?);
    for &s in &optim.scalars {
        w.put_f32(s);
    }
    w.put_u32(ckpt_len(optim.groups.len(), "resume optim group count")?);
    for group in &optim.groups {
        w.put_u32(ckpt_len(group.len(), "resume optim group size")?);
        for t in group {
            write_tensor(w, t, Dtype::F32)?;
        }
    }
    Ok(())
}

fn read_optim(r: &mut ByteReader<'_>) -> Result<OptimState> {
    let scalar_count = r.read_u32().map_err(NnError::Wire)?;
    let mut scalars = Vec::new();
    for _ in 0..scalar_count {
        scalars.push(r.read_f32().map_err(NnError::Wire)?);
    }
    let group_count = r.read_u32().map_err(NnError::Wire)?;
    let mut groups = Vec::new();
    for _ in 0..group_count {
        let size = r.read_u32().map_err(NnError::Wire)?;
        let mut group = Vec::new();
        for _ in 0..size {
            group.push(read_tensor(r)?.into_tensor());
        }
        groups.push(group);
    }
    Ok(OptimState { scalars, groups })
}

fn write_middleware(w: &mut ByteWriter, state: &Option<MiddlewareState>) -> Result<()> {
    let Some(state) = state else {
        w.put_u8(0);
        return Ok(());
    };
    w.put_u8(1);
    match &state.rng {
        Some(rng) => {
            w.put_u8(1);
            write_rng(w, rng);
        }
        None => w.put_u8(0),
    }
    w.put_u32(ckpt_len(state.stored.len(), "resume middleware slot count")?);
    for slot in &state.stored {
        match slot {
            Some(layer) => {
                w.put_u8(1);
                write_layer(w, layer)?;
            }
            None => w.put_u8(0),
        }
    }
    Ok(())
}

fn read_middleware(r: &mut ByteReader<'_>) -> Result<Option<MiddlewareState>> {
    if r.read_u8().map_err(NnError::Wire)? == 0 {
        return Ok(None);
    }
    let rng = match r.read_u8().map_err(NnError::Wire)? {
        0 => None,
        _ => Some(read_rng(r)?),
    };
    let slot_count = r.read_u32().map_err(NnError::Wire)?;
    let mut stored = Vec::new();
    for _ in 0..slot_count {
        let slot = match r.read_u8().map_err(NnError::Wire)? {
            0 => None,
            _ => Some(read_layer(r)?),
        };
        stored.push(slot);
    }
    Ok(Some(MiddlewareState { rng, stored }))
}

/// Encodes a resume image as `DNCK` bytes (header kind `fl-resume`).
///
/// # Errors
///
/// Returns [`FlError::Nn`] wrapping a wire error if any count exceeds the
/// `u32`/`u64` file fields.
pub fn encode_resume(ckpt: &FlCheckpoint) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    write_header(&mut w, CkptKind::FlResume);
    w.put_u64(u64::try_from(ckpt.rounds_run).unwrap_or(u64::MAX));
    write_params(&mut w, &ckpt.global)?;
    w.put_u32(ckpt_len(ckpt.clients.len(), "resume client count")?);
    for client in &ckpt.clients {
        w.put_u64(u64::try_from(client.id).unwrap_or(u64::MAX));
        write_rng(&mut w, &client.rng);
        write_params(&mut w, &client.params)?;
        write_optim(&mut w, &client.optim)?;
        w.put_u32(ckpt_len(client.middleware.len(), "resume middleware count")?);
        for mw in &client.middleware {
            write_middleware(&mut w, mw)?;
        }
    }
    match &ckpt.pending {
        Some(pending) => {
            w.put_u8(1);
            w.put_u32(ckpt_len(pending.completed.len(), "resume completed count")?);
            for (loss, update) in &pending.completed {
                w.put_u64(u64::try_from(update.client_id).unwrap_or(u64::MAX));
                w.put_f32(*loss);
                w.put_u64(u64::try_from(update.num_samples).unwrap_or(u64::MAX));
                write_params(&mut w, &update.params)?;
            }
        }
        None => w.put_u8(0),
    }
    Ok(w.into_bytes())
}

fn read_file_usize(r: &mut ByteReader<'_>, what: &'static str) -> Result<usize> {
    let value = r.read_u64().map_err(NnError::Wire)?;
    usize::try_from(value)
        .map_err(|_| FlError::Nn(NnError::Wire(WireError::LengthOverflow { what, value })))
}

/// Decodes a resume image. The whole buffer must be consumed.
///
/// # Errors
///
/// Returns [`FlError::Nn`] wrapping the typed wire error for truncation,
/// bad magic/version, a non-`fl-resume` kind, corrupt headers or trailing
/// bytes. Never panics.
pub fn decode_resume(bytes: &[u8]) -> Result<FlCheckpoint> {
    let mut r = ByteReader::new(bytes);
    expect_header(&mut r, CkptKind::FlResume)?;
    let rounds_run = read_file_usize(&mut r, "resume round counter")?;
    let global = read_params(&mut r)?;
    let client_count = r.read_u32().map_err(NnError::Wire)?;
    let mut clients = Vec::new();
    for _ in 0..client_count {
        let id = read_file_usize(&mut r, "resume client id")?;
        let rng = read_rng(&mut r)?;
        let params = read_params(&mut r)?;
        let optim = read_optim(&mut r)?;
        let mw_count = r.read_u32().map_err(NnError::Wire)?;
        let mut middleware = Vec::new();
        for _ in 0..mw_count {
            middleware.push(read_middleware(&mut r)?);
        }
        clients.push(ClientCkpt { id, params, rng, optim, middleware });
    }
    let pending = match r.read_u8().map_err(NnError::Wire)? {
        0 => None,
        _ => {
            let completed_count = r.read_u32().map_err(NnError::Wire)?;
            let mut completed = Vec::new();
            for _ in 0..completed_count {
                let client_id = read_file_usize(&mut r, "resume update client id")?;
                let loss = r.read_f32().map_err(NnError::Wire)?;
                let num_samples = read_file_usize(&mut r, "resume update samples")?;
                let params = read_params(&mut r)?;
                completed.push((loss, ClientUpdate { client_id, params, num_samples }));
            }
            Some(PendingRound { completed })
        }
    };
    r.finish().map_err(NnError::Wire)?;
    Ok(FlCheckpoint { rounds_run, global, clients, pending })
}

/// Saves a resume image to `path`.
///
/// # Errors
///
/// Propagates encode errors; I/O failures surface as
/// [`FlError::InvalidConfig`] with the path in the message.
pub fn save_resume(ckpt: &FlCheckpoint, path: impl AsRef<Path>) -> Result<()> {
    let bytes = encode_resume(ckpt)?;
    fs::write(path.as_ref(), bytes).map_err(|e| FlError::InvalidConfig {
        reason: format!("cannot write resume image {}: {e}", path.as_ref().display()),
    })
}

/// Loads a resume image from `path`.
///
/// # Errors
///
/// Same conditions as [`decode_resume`], plus I/O failures as
/// [`FlError::InvalidConfig`].
pub fn load_resume(path: impl AsRef<Path>) -> Result<FlCheckpoint> {
    let bytes = fs::read(path.as_ref()).map_err(|e| FlError::InvalidConfig {
        reason: format!("cannot read resume image {}: {e}", path.as_ref().display()),
    })?;
    decode_resume(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::{Rng, Tensor};

    fn params(v: f32) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![
            Tensor::full(&[2, 3], v),
            Tensor::full(&[3], v * 2.0),
        ])])
    }

    fn image() -> FlCheckpoint {
        let mut rng = Rng::seed_from(11);
        let _ = rng.normal(); // leave a gauss cache behind
        FlCheckpoint {
            rounds_run: 3,
            global: params(0.5),
            clients: vec![
                ClientCkpt {
                    id: 0,
                    params: params(1.0),
                    rng: rng.state(),
                    optim: OptimState {
                        scalars: vec![7.0],
                        groups: vec![vec![Tensor::full(&[2, 3], 0.1)], vec![]],
                    },
                    middleware: vec![
                        None,
                        Some(MiddlewareState {
                            rng: Some(Rng::seed_from(4).state()),
                            stored: vec![None, Some(LayerParams::new(vec![Tensor::ones(&[3])]))],
                        }),
                    ],
                },
                ClientCkpt {
                    id: 1,
                    params: params(2.0),
                    rng: Rng::seed_from(9).state(),
                    optim: OptimState::default(),
                    middleware: vec![],
                },
            ],
            pending: Some(PendingRound {
                completed: vec![(
                    0.25,
                    ClientUpdate { client_id: 0, params: params(3.0), num_samples: 64 },
                )],
            }),
        }
    }

    #[test]
    fn resume_image_roundtrips_exactly() {
        let ckpt = image();
        let bytes = encode_resume(&ckpt).unwrap();
        assert_eq!(&bytes[..4], b"DNCK");
        let back = decode_resume(&bytes).unwrap();
        assert_eq!(back.rounds_run, ckpt.rounds_run);
        assert_eq!(back.global, ckpt.global);
        assert_eq!(back.clients.len(), 2);
        assert_eq!(back.clients[0].rng, ckpt.clients[0].rng);
        assert_eq!(back.clients[0].optim, ckpt.clients[0].optim);
        assert_eq!(back.clients[0].middleware, ckpt.clients[0].middleware);
        assert_eq!(back.clients[1].id, 1);
        let pending = back.pending.unwrap();
        assert_eq!(pending.completed.len(), 1);
        assert_eq!(pending.completed[0].0, 0.25);
        assert_eq!(pending.completed[0].1.num_samples, 64);
        assert_eq!(pending.completed[0].1.params, params(3.0));
    }

    #[test]
    fn between_rounds_image_has_no_pending() {
        let mut ckpt = image();
        ckpt.pending = None;
        let back = decode_resume(&encode_resume(&ckpt).unwrap()).unwrap();
        assert!(back.pending.is_none());
    }

    #[test]
    fn model_checkpoint_kind_is_rejected() {
        let p = params(1.0);
        let bytes = dinar_nn::ckpt::encode_checkpoint(&p, Dtype::F32).unwrap();
        assert!(matches!(
            decode_resume(&bytes),
            Err(FlError::Nn(NnError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let bytes = encode_resume(&image()).unwrap();
        for cut in [0, 5, 7, 20, bytes.len() - 1] {
            assert!(decode_resume(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_resume(&extended),
            Err(FlError::Nn(NnError::Wire(WireError::TrailingBytes { .. })))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dinar-fl-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.dnck");
        let ckpt = image();
        save_resume(&ckpt, &path).unwrap();
        let back = load_resume(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.global, ckpt.global);
        assert_eq!(back.clients.len(), ckpt.clients.len());
    }
}

//! # dinar-fl
//!
//! Cross-silo federated learning engine: the substrate on which DINAR and
//! every baseline defense run.
//!
//! The engine mirrors the paper's setting (§2.1, §5.3):
//!
//! * a fixed set of clients, each holding a disjoint data shard,
//! * per-round local training (`local_epochs` epochs of mini-batch SGD-family
//!   updates) followed by an upload of the full client model parameters,
//! * **FedAvg** aggregation on the server — a weighted average with weights
//!   proportional to each client's sample count,
//! * the server shares the global model only with participating clients
//!   (cross-silo; no external release).
//!
//! Defenses plug in as middleware, matching the paper's description of DINAR
//! as an FL *middleware*:
//!
//! * [`middleware::ClientMiddleware`] transforms the parameter sets a client
//!   downloads and uploads (LDP, WDP, gradient compression, secure-aggregation
//!   masking, and DINAR's personalize/obfuscate pipeline live here);
//! * [`middleware::ServerMiddleware`] transforms the aggregated model
//!   (central DP lives here).
//!
//! The engine also accounts costs per round — client training wall-clock,
//! server aggregation wall-clock, and peak extra tensor memory on the client
//! — which regenerate Table 3.
//!
//! # Example
//!
//! ```
//! use dinar_fl::{FlConfig, FlSystem};
//! use dinar_data::{catalog::{self, Profile}, partition::{partition_dataset, Distribution}};
//! use dinar_nn::{models, optim::Sgd};
//! use dinar_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let data = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
//! let shards = partition_dataset(&data, 3, Distribution::Iid, &mut rng)?;
//! let config = FlConfig { local_epochs: 1, batch_size: 64, seed: 1 };
//! let mut system = FlSystem::builder(config)
//!     .clients_from_shards(shards, |rng| models::fcnn6(600, 100, 64, rng), |_| Box::new(Sgd::new(0.01)))?
//!     .build()?;
//! let report = system.run_round()?;
//! assert!(report.mean_train_loss > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod client;
pub mod clock;
pub mod deadline;
mod error;
pub mod eval;
pub mod fault;
pub mod middleware;
pub mod netsim;
pub mod server;
pub mod system;
pub mod trace;
pub mod transport;

pub use ckpt::{ClientCkpt, FlCheckpoint, PendingRound};
pub use client::{ClientUpdate, FlClient};
pub use error::FlError;
pub use middleware::MiddlewareState;
pub use fault::{FaultKind, FaultPlan, Quorum, RetryPolicy, RoundFaultStats, RoundPolicy};
pub use middleware::{ClientMiddleware, ServerMiddleware};
pub use netsim::{ClientLink, LinkModel, NetworkModel, RoundWireStats, WireConfig};
pub use server::FlServer;
pub use system::{FlConfig, FlSystem, RoundReport};
pub use transport::{
    run_threaded, run_threaded_resilient, run_threaded_wire, run_threaded_with_clock, ResilientRun,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FlError>;

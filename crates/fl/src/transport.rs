//! Threaded, message-passing execution of an FL system.
//!
//! [`FlSystem::run`](crate::FlSystem::run) drives clients sequentially —
//! ideal for deterministic benchmarking on one core. This module provides
//! the *distributed* execution mode: every client runs on its own OS thread
//! and communicates with the server **exclusively through typed messages
//! over channels**, the way a deployed cross-silo system exchanges models
//! over the network. No memory is shared between server and clients beyond
//! the messages.
//!
//! The two modes are behaviourally identical: client training is
//! self-contained and the server sorts updates by client id before
//! aggregating, so `run_threaded` produces bit-identical global models to
//! the sequential engine given the same seeds (asserted by the integration
//! tests).

use crate::clock::{Clock, WallClock};
use crate::{ClientUpdate, FlClient, FlError, FlSystem, Result, RoundReport};
use dinar_metrics::cost::CostSample;
use dinar_nn::ModelParams;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

/// A message from the server to a client.
#[derive(Debug)]
pub enum ServerMsg {
    /// Start a round: here is the current global model.
    StartRound {
        /// Round number (1-based).
        round: usize,
        /// Global model parameters.
        global: ModelParams,
    },
    /// Training is over; the client thread should return its client state.
    Shutdown,
}

/// A message from a client to the server.
#[derive(Debug)]
pub struct ClientMsg {
    /// Round this update belongs to.
    pub round: usize,
    /// The client's (defense-transformed) update.
    pub update: ClientUpdate,
    /// The client's mean training loss this round.
    pub train_loss: f32,
    /// Client-side wall-clock seconds spent this round.
    pub train_s: f64,
}

struct ClientHandle {
    tx: Sender<ServerMsg>,
    join: thread::JoinHandle<Result<FlClient>>,
}

/// Runs `rounds` FL rounds with one thread per client, consuming and
/// returning the system.
///
/// Message flow per round: the server broadcasts
/// [`ServerMsg::StartRound`] to every client thread; each client installs
/// the global model (running its download middleware), trains locally,
/// applies its upload middleware and sends a [`ClientMsg`] back; the server
/// collects all updates, sorts them by client id (for deterministic
/// aggregation order) and runs FedAvg plus its server middleware.
///
/// # Errors
///
/// Propagates client training and aggregation errors; a panicked client
/// thread surfaces as [`FlError::InvalidConfig`] naming the client.
pub fn run_threaded(system: FlSystem, rounds: usize) -> Result<(FlSystem, Vec<RoundReport>)> {
    run_threaded_with_clock(system, rounds, Arc::new(WallClock::new()))
}

/// [`run_threaded`] with an injected [`Clock`] for the per-round cost
/// timings — pair with [`ManualClock`](crate::clock::ManualClock) to make
/// the reported `CostSample`s deterministic in replay tests.
///
/// # Errors
///
/// Same conditions as [`run_threaded`].
pub fn run_threaded_with_clock(
    system: FlSystem,
    rounds: usize,
    clock: Arc<dyn Clock>,
) -> Result<(FlSystem, Vec<RoundReport>)> {
    let (mut server, clients, rounds_before) = system.into_parts();
    let (update_tx, update_rx): (Sender<ClientMsg>, Receiver<ClientMsg>) = channel();

    // Spawn one thread per client; each owns its client state for the whole
    // training run and speaks only through channels.
    let mut handles: Vec<ClientHandle> = Vec::with_capacity(clients.len());
    for mut client in clients {
        let (tx, rx): (Sender<ServerMsg>, Receiver<ServerMsg>) = channel();
        let updates = update_tx.clone();
        let client_clock = clock.clone();
        let join = thread::spawn(move || -> Result<FlClient> {
            while let Ok(msg) = rx.recv() {
                match msg {
                    ServerMsg::Shutdown => break,
                    ServerMsg::StartRound { round, global } => {
                        let t0 = client_clock.elapsed();
                        client.receive_global(&global)?;
                        let train_loss = client.train_local()?;
                        let update = client.produce_update()?;
                        // The server may already have shut down on another
                        // client's error; a closed channel just ends us.
                        let _ = updates.send(ClientMsg {
                            round,
                            update,
                            train_loss,
                            train_s: client_clock
                                .elapsed()
                                .saturating_sub(t0)
                                .as_secs_f64(),
                        });
                    }
                }
            }
            Ok(client)
        });
        handles.push(ClientHandle { tx, join });
    }
    drop(update_tx);

    let num_clients = handles.len();
    let mut reports = Vec::with_capacity(rounds);
    let mut error: Option<FlError> = None;
    'rounds: for r in 1..=rounds {
        let global = server.global_params().clone();
        for handle in &handles {
            if handle
                .tx
                .send(ServerMsg::StartRound {
                    round: r,
                    global: global.clone(),
                })
                .is_err()
            {
                error = Some(FlError::InvalidConfig {
                    reason: "a client thread exited prematurely".into(),
                });
                break 'rounds;
            }
        }
        let mut updates: Vec<ClientMsg> = Vec::with_capacity(num_clients);
        for _ in 0..num_clients {
            match update_rx.recv() {
                Ok(msg) => updates.push(msg),
                Err(_) => {
                    error = Some(FlError::InvalidConfig {
                        reason: "a client thread died mid-round".into(),
                    });
                    break 'rounds;
                }
            }
        }
        // Deterministic aggregation order regardless of arrival order.
        updates.sort_by_key(|m| m.update.client_id);
        let loss_sum: f64 = updates.iter().map(|m| m.train_loss as f64).sum();
        let train_s_sum: f64 = updates.iter().map(|m| m.train_s).sum();
        let round_updates: Vec<ClientUpdate> =
            updates.into_iter().map(|m| m.update).collect();
        let t0 = clock.elapsed();
        if let Err(e) = server.aggregate(&round_updates) {
            error = Some(e);
            break 'rounds;
        }
        reports.push(RoundReport {
            round: rounds_before + r,
            mean_train_loss: (loss_sum / num_clients.max(1) as f64) as f32,
            cost: CostSample {
                client_train_s: train_s_sum / num_clients.max(1) as f64,
                server_agg_s: clock.elapsed().saturating_sub(t0).as_secs_f64(),
                // Memory accounting is process-global and would attribute
                // concurrent clients to each other; the sequential engine is
                // the cost-measurement mode.
                client_peak_mem_bytes: 0,
            },
        });
    }

    // Tear down the client threads and reassemble the system.
    for handle in &handles {
        let _ = handle.tx.send(ServerMsg::Shutdown);
    }
    let mut clients = Vec::with_capacity(num_clients);
    for handle in handles {
        match handle.join.join() {
            Ok(Ok(client)) => clients.push(client),
            Ok(Err(e)) => error = error.or(Some(e)),
            Err(_) => {
                error = error.or(Some(FlError::InvalidConfig {
                    reason: "a client thread panicked".into(),
                }));
            }
        }
    }
    if let Some(e) = error {
        return Err(e);
    }
    clients.sort_by_key(FlClient::id);
    let completed = rounds_before + reports.len();
    Ok((FlSystem::from_parts(server, clients, completed), reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlConfig;
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;
    use dinar_tensor::{Rng, Tensor};

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut features = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).unwrap();
            features.set(&[i, 1], rng.normal_with(c, 0.6)).unwrap();
            labels.push(class);
        }
        Dataset::new(features, labels, &[2], 2).unwrap()
    }

    fn build_system() -> FlSystem {
        let data = blob_dataset(90, 5);
        let mut rng = Rng::seed_from(9);
        let shards = dinar_data::partition::partition_dataset(
            &data,
            3,
            dinar_data::partition::Distribution::Iid,
            &mut rng,
        )
        .unwrap();
        FlSystem::builder(FlConfig {
            local_epochs: 2,
            batch_size: 16,
            seed: 3,
        })
        .clients_from_shards(
            shards,
            |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
            |_| Box::new(Sgd::new(0.1)),
        )
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn threaded_matches_sequential_exactly() {
        let mut sequential = build_system();
        sequential.run(4).unwrap();

        let (threaded, reports) = run_threaded(build_system(), 4).unwrap();
        assert_eq!(reports.len(), 4);
        let diff = sequential
            .global_params()
            .max_abs_diff(threaded.global_params())
            .unwrap();
        assert!(diff < 1e-7, "threaded diverged from sequential by {diff}");
    }

    #[test]
    fn threaded_reports_progress_and_preserves_clients() {
        let (system, reports) = run_threaded(build_system(), 3).unwrap();
        assert_eq!(system.clients().len(), 3);
        assert_eq!(system.server().rounds_completed(), 3);
        assert_eq!(reports.last().unwrap().round, 3);
        // Client ids intact and ordered after the round trip.
        let ids: Vec<usize> = system.clients().iter().map(FlClient::id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Learning actually happened.
        assert!(reports[2].mean_train_loss < reports[0].mean_train_loss);
    }

    #[test]
    fn manual_clock_yields_deterministic_cost_timings() {
        let clock = Arc::new(crate::clock::ManualClock::new());
        let (_, reports) = run_threaded_with_clock(build_system(), 2, clock).unwrap();
        // The clock never advances, so every timing is exactly zero — the
        // replay-determinism property L002 exists to protect.
        for r in &reports {
            assert_eq!(r.cost.client_train_s, 0.0);
            assert_eq!(r.cost.server_agg_s, 0.0);
        }
    }

    #[test]
    fn threaded_then_sequential_continues_seamlessly() {
        let (mut system, _) = run_threaded(build_system(), 2).unwrap();
        let report = system.run_round().unwrap();
        assert_eq!(report.round, 3);
    }
}

//! Threaded, message-passing execution of an FL system — fault-tolerant.
//!
//! [`FlSystem::run`](crate::FlSystem::run) drives clients sequentially —
//! ideal for deterministic benchmarking on one core. This module provides
//! the *distributed* execution mode: every client runs on its own OS thread
//! and communicates with the server **exclusively through typed messages
//! over channels**, the way a deployed cross-silo system exchanges models
//! over the network. No memory is shared between server and clients beyond
//! the messages.
//!
//! # Fault tolerance
//!
//! Unlike the sequential engine, the threaded engine must survive partial
//! participation: client threads can die mid-round, drop their upload,
//! straggle past a deadline, or fail transiently and recover. Collection is
//! therefore **accounting-driven with a deadline backstop**
//! ([`RoundPolicy`]): the server tracks every outstanding client until it is
//! accounted for — by an update, a fault notice, a detected thread death, or
//! the round deadline (budgeted on the injectable [`Clock`], so a
//! [`ManualClock`](crate::clock::ManualClock) replay, whose deadline never
//! expires, still terminates through the accounting paths). The round then
//! aggregates if at least [`Quorum::required`] updates arrived — FedAvg is
//! sample-weighted, so the partial aggregate renormalizes over the arrived
//! subset — and otherwise fails with [`FlError::ClientFailure`]. Stale
//! updates from earlier rounds are tag-checked and discarded. Transient
//! failures are retried per [`RetryPolicy`]. Deterministic fault schedules
//! come from a [`FaultPlan`].
//!
//! # The wire plane
//!
//! Every model crossing a channel here is **encoded wire bytes**, not a
//! parameter handle: the server encodes the global snapshot once per round
//! (straight out of its copy-on-write buffers, no materialization) and
//! broadcasts the same `Arc`'d frame to every client; each client decodes
//! it, trains, and uploads an encoded frame back. [`WireConfig`] picks the
//! codec per direction — lossless `f32`, 1-bit signs, or quantized `i8`
//! deltas, with error-feedback residuals carried client-side — and a
//! [`NetworkModel`](crate::netsim::NetworkModel) prices every transfer on
//! a deterministic simulated network. Byte counts, frame counts and the
//! simulated per-round makespan surface as `fl.transport.*` telemetry and
//! in [`ResilientRun::wire_stats`]. A frame that fails to decode is typed
//! data, not a panic: a corrupt broadcast fails that client
//! ([`ClientReply::Fatal`]), a corrupt upload drops that update — the run
//! reports, it does not abort.
//!
//! The two engines are behaviourally identical on a healthy system: client
//! training is self-contained and the server sorts updates by client id
//! before aggregating, so `run_threaded` produces bit-identical global
//! models to the sequential engine given the same seeds (the default
//! lossless codec moves exact `f32` bit patterns), and keeps doing so
//! under an injected [`FaultPlan`] for any worker-pool width (asserted by
//! the integration tests).

use crate::clock::{Clock, WallClock};
use crate::deadline::{recv_blocking, DeadlineReceiver, Step};
use crate::fault::{FaultKind, FaultPlan, RoundFaultStats, RoundPolicy};
use crate::netsim::{RoundMeter, RoundWireStats, WireConfig};
use crate::{ClientUpdate, FlClient, FlError, FlSystem, Result, RoundReport};
use dinar_metrics::cost::CostSample;
use dinar_nn::snapshot::{decode_params, encode_params, ErrorFeedback};
use dinar_nn::ModelParams;
use dinar_telemetry::{bridge, Telemetry};
use dinar_tensor::alloc::MemoryScope;
use dinar_tensor::wire::Codec;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A message from the server to a client.
#[derive(Debug)]
pub enum ServerMsg {
    /// Start (or retry) a round: here is the current global model as an
    /// encoded wire frame. One frame is encoded per round and shared
    /// (`Arc`) across the whole broadcast; each client decodes its own
    /// copy-free view.
    StartRound {
        /// Round number (1-based).
        round: usize,
        /// The global snapshot, encoded under
        /// [`WireConfig::downlink`].
        frame: Arc<Vec<u8>>,
    },
    /// Training is over; the client thread should return its client state.
    Shutdown,
}

/// A completed client round: the encoded update plus its per-round
/// measurements.
#[derive(Debug)]
pub struct ClientMsg {
    /// Round this update belongs to.
    pub round: usize,
    /// Uploading client's id.
    pub client_id: usize,
    /// Number of local training samples (FedAvg weight).
    pub num_samples: usize,
    /// The client's (defense-transformed) update, encoded under
    /// [`WireConfig::uplink`].
    pub frame: Vec<u8>,
    /// Whether `frame` encodes a delta against the round's broadcast
    /// global (lossy uplinks) rather than absolute parameters.
    pub delta: bool,
    /// The client's mean training loss this round.
    pub train_loss: f32,
    /// Client-side wall-clock seconds spent this round.
    pub train_s: f64,
    /// Peak extra tensor bytes this client's thread allocated during the
    /// round (its own [`MemoryScope`] ledger — per-thread, so concurrent
    /// clients never attribute each other's allocations).
    pub peak_mem_bytes: u64,
}

/// Everything a client can tell the server during collection.
#[derive(Debug)]
pub enum ClientReply {
    /// A finished round (possibly stale — the server tag-checks `round`).
    Update(ClientMsg),
    /// The client trained but its upload was lost ([`FaultKind::DropUpdate`]).
    Dropped {
        /// Reporting client.
        client: usize,
        /// Round the loss applies to.
        round: usize,
    },
    /// The client is a straggler this round: its update will arrive during
    /// a later round and be discarded as stale ([`FaultKind::Delay`]).
    Delayed {
        /// Reporting client.
        client: usize,
        /// Round being delayed.
        round: usize,
    },
    /// A retryable failure: the server may re-dispatch the round.
    Transient {
        /// Failing client.
        client: usize,
        /// Round that failed.
        round: usize,
        /// Failure description.
        cause: String,
    },
    /// A non-recoverable client error; the client thread exits after
    /// sending this.
    Fatal {
        /// Failing client.
        client: usize,
        /// Round that failed.
        round: usize,
        /// Failure description.
        cause: String,
    },
}

struct ClientHandle {
    id: usize,
    tx: Sender<ServerMsg>,
    join: thread::JoinHandle<Result<FlClient>>,
    /// Set once the client is known gone (crashed, fatal error, or its
    /// channel closed); the server stops dispatching rounds to it.
    departed: bool,
}

/// A completed fault-tolerant run: the reassembled system, the per-round
/// reports, and the per-round fault accounting.
#[derive(Debug)]
pub struct ResilientRun {
    /// The system after the run, clients reassembled in id order.
    pub system: FlSystem,
    /// Per-round training reports (one per *completed* round).
    pub reports: Vec<RoundReport>,
    /// Per-round fault accounting, parallel to `reports`.
    pub fault_stats: Vec<RoundFaultStats>,
    /// Per-round wire traffic and simulated network time, parallel to
    /// `reports`.
    pub wire_stats: Vec<RoundWireStats>,
}

/// Runs `rounds` FL rounds with one thread per client under the strict
/// full-participation policy, consuming and returning the system.
///
/// Message flow per round: the server broadcasts
/// [`ServerMsg::StartRound`] to every client thread; each client installs
/// the global model (running its download middleware), trains locally,
/// applies its upload middleware and sends a [`ClientReply`] back; the
/// server collects all updates, sorts them by client id (for deterministic
/// aggregation order) and runs FedAvg plus its server middleware.
///
/// # Errors
///
/// Propagates client training and aggregation errors; a dead, crashed or
/// failed client thread surfaces as [`FlError::ClientFailure`] naming the
/// client and round (the strict policy requires every client to report).
pub fn run_threaded(system: FlSystem, rounds: usize) -> Result<(FlSystem, Vec<RoundReport>)> {
    run_threaded_with_clock(system, rounds, Arc::new(WallClock::new()))
}

/// [`run_threaded`] with an injected [`Clock`] for the per-round cost
/// timings and deadline budget — pair with
/// [`ManualClock`](crate::clock::ManualClock) to make the reported
/// `CostSample`s deterministic in replay tests.
///
/// # Errors
///
/// Same conditions as [`run_threaded`].
pub fn run_threaded_with_clock(
    system: FlSystem,
    rounds: usize,
    clock: Arc<dyn Clock>,
) -> Result<(FlSystem, Vec<RoundReport>)> {
    let run = run_threaded_resilient(system, rounds, clock, RoundPolicy::strict())?;
    Ok((run.system, run.reports))
}

/// The fault-tolerant entry point: [`run_threaded_with_clock`] under an
/// explicit [`RoundPolicy`] (deadline, quorum, retry, fault plan), returning
/// per-round fault accounting alongside the reports.
///
/// Rounds proceed while at least [`Quorum::required`] updates arrive; a
/// round that falls below quorum fails the run with
/// [`FlError::ClientFailure`] naming the first failed client. Telemetry
/// attached to the system before the call is preserved: rounds emit
/// `round[N]` spans with `broadcast`/`collect`/`aggregate` children and the
/// `fl.transport.*` fault counters.
///
/// [`Quorum::required`]: crate::fault::Quorum::required
///
/// # Errors
///
/// Returns [`FlError::InvalidConfig`] for an unmeetable quorum or a
/// [`FaultKind::Stall`] plan without a deadline (a silent stall can only be
/// resolved by a deadline); [`FlError::ClientFailure`] for below-quorum
/// rounds; and propagates aggregation errors.
pub fn run_threaded_resilient(
    system: FlSystem,
    rounds: usize,
    clock: Arc<dyn Clock>,
    policy: RoundPolicy,
) -> Result<ResilientRun> {
    run_threaded_wire(system, rounds, clock, policy, WireConfig::default())
}

/// The full-surface entry point: [`run_threaded_resilient`] under an
/// explicit [`WireConfig`] — codec per direction plus the simulated
/// network every frame crosses.
///
/// The default config (lossless `f32` both ways, ideal network) makes
/// this identical to [`run_threaded_resilient`]: raw-`f32` frames carry
/// exact bit patterns, so the decoded models match the in-process engines
/// bit for bit. Lossy uplinks switch clients to encoding the *delta*
/// against the received global, with error-feedback residuals carried
/// client-side across rounds; the server reconstructs by adding back its
/// own decode of the round's broadcast frame, so both sides agree on the
/// base even when the downlink is itself lossy.
///
/// # Errors
///
/// Same conditions as [`run_threaded_resilient`], plus
/// [`FlError::Nn`](crate::FlError) wrapping a wire error if the global
/// snapshot cannot be encoded (architecture exceeding the wire's `u32`
/// fields). Per-frame decode failures do **not** abort the run: a corrupt
/// broadcast fails that client, a corrupt upload drops that update, and
/// both land in the round's fault accounting.
pub fn run_threaded_wire(
    system: FlSystem,
    rounds: usize,
    clock: Arc<dyn Clock>,
    policy: RoundPolicy,
    wire: WireConfig,
) -> Result<ResilientRun> {
    let telemetry = system.telemetry().clone();
    let (mut server, clients, rounds_before) = system.into_parts();
    let num_clients = clients.len();
    let required = policy.quorum.required(num_clients);
    if required > num_clients {
        return Err(FlError::InvalidConfig {
            reason: format!("quorum of {required} exceeds the {num_clients} clients"),
        });
    }
    if policy.deadline.is_none() && policy.faults.contains_kind(FaultKind::Stall) {
        return Err(FlError::InvalidConfig {
            reason: "a Stall fault plan requires a round deadline to resolve".into(),
        });
    }

    // Self-describing runs: the policy's fault seed and deadline become
    // deterministic gauges, so exported metrics (and the dropout bench rows
    // built from them) name the exact failure schedule they ran under.
    if telemetry.is_enabled() {
        if let Some(seed) = policy.faults.seed() {
            telemetry.gauge_set("fl.transport.fault_seed", seed as f64);
        }
        if let Some(deadline) = policy.deadline {
            telemetry.gauge_set(
                "fl.transport.deadline_ms",
                deadline.as_millis() as f64,
            );
        }
    }

    let (reply_tx, reply_rx): (Sender<ClientReply>, Receiver<ClientReply>) = channel();
    let plan = Arc::new(policy.faults.clone());

    // Spawn one thread per client; each owns its client state for the whole
    // training run and speaks only through channels.
    let mut handles: Vec<ClientHandle> = Vec::with_capacity(num_clients);
    for client in clients {
        handles.push(spawn_client(
            client,
            reply_tx.clone(),
            clock.clone(),
            plan.clone(),
            wire.uplink,
        ));
    }
    drop(reply_tx);
    // Client id → handle index, for retry dispatch and liveness checks.
    let index: BTreeMap<usize, usize> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| (h.id, i))
        .collect();

    let mut reports = Vec::with_capacity(rounds);
    let mut fault_stats = Vec::with_capacity(rounds);
    let mut wire_stats = Vec::with_capacity(rounds);
    let mut error: Option<FlError> = None;
    'rounds: for r in 1..=rounds {
        let round_span = telemetry.span(&format!("round[{}]", rounds_before + r));
        // Encode the broadcast once, straight out of the snapshot's shared
        // buffers; every client gets the same Arc'd frame.
        let global = server.global_params().share();
        let frame = {
            let _espan = telemetry.span("encode");
            match encode_params(&global, wire.downlink) {
                Ok(bytes) => Arc::new(bytes),
                Err(e) => {
                    error = Some(e.into());
                    break 'rounds;
                }
            }
        };
        // Base for reconstructing delta uploads: the server's own decode of
        // the frame it broadcast, so lossy downlinks leave both sides
        // agreeing on the base bit for bit. Lossless uplinks send absolute
        // parameters and need no base.
        let delta_base = if wire.uplink.is_lossy() {
            match decode_params(&frame) {
                Ok(base) => Some(base),
                Err(e) => {
                    error = Some(e.into());
                    break 'rounds;
                }
            }
        } else {
            None
        };
        let mut meter = RoundMeter::new(&wire.network);

        // Broadcast to every client still alive; a failed send means the
        // thread is gone — account it as dropped instead of failing the run.
        let mut pending: BTreeSet<usize> = BTreeSet::new();
        let mut dropped = 0usize;
        // First failure observed this round, for the below-quorum error.
        let mut first_failure: Option<(usize, String)> = None;
        {
            let _bspan = telemetry.span("broadcast");
            for handle in handles.iter_mut() {
                if handle.departed {
                    dropped += 1;
                    continue;
                }
                let sent = handle.tx.send(ServerMsg::StartRound {
                    round: r,
                    frame: frame.clone(),
                });
                if sent.is_err() {
                    handle.departed = true;
                    dropped += 1;
                    first_failure.get_or_insert((
                        handle.id,
                        "client thread exited before the round started".into(),
                    ));
                } else {
                    pending.insert(handle.id);
                    meter.sent_down(handle.id, frame.len() as u64);
                }
            }
        }

        // Collect until every dispatched client is accounted for or the
        // deadline (extended by retry backoff) expires.
        let round_start = clock.elapsed();
        let mut extension = Duration::ZERO;
        let mut retries: BTreeMap<usize, u32> = BTreeMap::new();
        let mut updates: Vec<(ClientMsg, ClientUpdate)> = Vec::with_capacity(pending.len());
        let mut retried = 0usize;
        let mut stale = 0usize;
        let mut deadline_expired = false;
        {
            let _cspan = telemetry.span("collect");
            let drx = DeadlineReceiver::new(&reply_rx, clock.as_ref());
            while !pending.is_empty() {
                // The simulated network's slowest path extends the deadline:
                // link transit time never counts against the compute budget.
                let deadline = policy
                    .deadline
                    .map(|d| round_start + d + extension + meter.deadline_allowance());
                match drx.step(deadline) {
                    Step::Msg(ClientReply::Update(msg)) => {
                        // The link carried the frame whether or not the round
                        // accepts it — meter before the tag check.
                        meter.received_up(msg.client_id, msg.frame.len() as u64);
                        // Tag check: a straggler's stale round-r update can
                        // arrive during round r+1 once deadlines exist.
                        if msg.round != r || !pending.remove(&msg.client_id) {
                            stale += 1;
                            continue;
                        }
                        // Decode at the trust boundary: a frame that fails
                        // validation is a dropped update, never an abort.
                        match decode_update(&msg, delta_base.as_ref()) {
                            Ok(update) => updates.push((msg, update)),
                            Err(e) => {
                                dropped += 1;
                                telemetry.flight_record(
                                    "wire",
                                    "update_decode_failed",
                                    msg.client_id as u64,
                                );
                                first_failure.get_or_insert((
                                    msg.client_id,
                                    format!("update frame failed to decode: {e}"),
                                ));
                            }
                        }
                    }
                    Step::Msg(ClientReply::Dropped { client, round })
                    | Step::Msg(ClientReply::Delayed { client, round }) => {
                        if round == r && pending.remove(&client) {
                            dropped += 1;
                        }
                    }
                    Step::Msg(ClientReply::Transient { client, round, cause }) => {
                        if round != r || !pending.contains(&client) {
                            continue;
                        }
                        let used = retries.entry(client).or_insert(0);
                        let handle = index.get(&client).map(|&i| &mut handles[i]);
                        if *used < policy.retry.max_retries {
                            *used += 1;
                            retried += 1;
                            extension += policy.retry.backoff;
                            let resent = handle.map(|h| {
                                h.tx.send(ServerMsg::StartRound {
                                    round: r,
                                    frame: frame.clone(),
                                })
                            });
                            if matches!(resent, Some(Ok(()))) {
                                meter.sent_down(client, frame.len() as u64);
                            } else {
                                pending.remove(&client);
                                dropped += 1;
                                first_failure.get_or_insert((client, cause));
                            }
                        } else {
                            pending.remove(&client);
                            dropped += 1;
                            first_failure
                                .get_or_insert((client, format!("retries exhausted: {cause}")));
                        }
                    }
                    Step::Msg(ClientReply::Fatal { client, round, cause }) => {
                        if let Some(&i) = index.get(&client) {
                            handles[i].departed = true;
                        }
                        if round == r && pending.remove(&client) {
                            dropped += 1;
                            first_failure.get_or_insert((client, cause));
                        }
                    }
                    Step::Tick => {
                        // Liveness: a pending client whose thread has exited
                        // will never report — the silent-death path that
                        // used to hang the server forever.
                        let dead: Vec<usize> = pending
                            .iter()
                            .copied()
                            .filter(|id| {
                                index
                                    .get(id)
                                    .is_some_and(|&i| handles[i].join.is_finished())
                            })
                            .collect();
                        for id in dead {
                            pending.remove(&id);
                            dropped += 1;
                            if let Some(&i) = index.get(&id) {
                                handles[i].departed = true;
                            }
                            first_failure
                                .get_or_insert((id, "client thread died mid-round".into()));
                        }
                    }
                    Step::Expired => {
                        deadline_expired = true;
                        dropped += pending.len();
                        if let Some(&id) = pending.iter().next() {
                            first_failure
                                .get_or_insert((id, "missed the round deadline".into()));
                        }
                        telemetry.flight_record(
                            "fault",
                            "deadline_expired",
                            pending.len() as u64,
                        );
                        telemetry.flight_dump_if_requested("deadline");
                        pending.clear();
                    }
                    Step::Disconnected => {
                        dropped += pending.len();
                        if let Some(&id) = pending.iter().next() {
                            first_failure
                                .get_or_insert((id, "all client threads disconnected".into()));
                        }
                        pending.clear();
                    }
                }
            }
        }

        record_round_telemetry(&telemetry, updates.len(), dropped, retried, stale);
        let round_wire = meter.finish(rounds_before + r);
        if telemetry.is_enabled() {
            bridge::record_wire_round(
                &telemetry,
                round_wire.bytes_down,
                round_wire.bytes_up,
                round_wire.frames,
            );
            // Simulated makespan of the slowest client path this round —
            // deterministic (a pure function of byte counts and the link
            // parameters), unlike the wall-clock cost samples.
            telemetry.gauge_set(
                "fl.transport.sim_round_ms",
                round_wire.sim_elapsed.as_secs_f64() * 1e3,
            );
        }
        if updates.len() < required {
            let (client, cause) = first_failure
                .unwrap_or((0, "no client failure observed".into()));
            telemetry.flight_record("fault", "quorum_failed", updates.len() as u64);
            telemetry.flight_dump_if_requested("quorum");
            error = Some(FlError::ClientFailure {
                client,
                round: rounds_before + r,
                cause: format!(
                    "round collected {} of {} updates, below quorum {required}: {cause}",
                    updates.len(),
                    num_clients
                ),
            });
            break 'rounds;
        }

        // Deterministic aggregation order regardless of arrival order; the
        // loss/time folds also run in sorted order so their floating-point
        // sums replay bit-identically.
        updates.sort_by_key(|(m, _)| m.client_id);
        let participants = updates.len();
        let loss_sum: f64 = updates.iter().map(|(m, _)| m.train_loss as f64).sum();
        let train_s_sum: f64 = updates.iter().map(|(m, _)| m.train_s).sum();
        let peak_mem = updates
            .iter()
            .map(|(m, _)| m.peak_mem_bytes)
            .max()
            .unwrap_or(0);
        let round_updates: Vec<ClientUpdate> =
            updates.into_iter().map(|(_, u)| u).collect();
        let t0 = clock.elapsed();
        let agg_result = {
            let _aspan = telemetry.span("aggregate");
            server.aggregate(&round_updates)
        };
        if let Err(e) = agg_result {
            error = Some(e);
            break 'rounds;
        }
        drop(round_span);
        reports.push(RoundReport {
            round: rounds_before + r,
            mean_train_loss: (loss_sum / participants.max(1) as f64) as f32,
            cost: CostSample {
                client_train_s: train_s_sum / participants.max(1) as f64,
                server_agg_s: clock.elapsed().saturating_sub(t0).as_secs_f64(),
                // Max over the participants' per-thread ledgers — each
                // client thread measures its own MemoryScope, so concurrent
                // clients never attribute each other's allocations.
                client_peak_mem_bytes: peak_mem,
            },
        });
        fault_stats.push(RoundFaultStats {
            round: rounds_before + r,
            participants,
            clients_dropped: dropped,
            clients_retried: retried,
            stale_discarded: stale,
            deadline_expired,
        });
        wire_stats.push(round_wire);
    }

    // Tear down the client threads and reassemble the system.
    for handle in &handles {
        if !handle.departed {
            let _ = handle.tx.send(ServerMsg::Shutdown);
        }
    }
    let attempted_rounds = rounds_before + reports.len() + usize::from(error.is_some());
    let mut clients = Vec::with_capacity(num_clients);
    for handle in handles {
        let id = handle.id;
        match handle.join.join() {
            Ok(Ok(client)) => clients.push(client),
            Ok(Err(e)) => error = error.or(Some(e)),
            Err(_) => {
                telemetry.flight_record("fault", "client_panic", id as u64);
                telemetry.flight_dump_if_requested("panic");
                error = error.or(Some(FlError::ClientFailure {
                    client: id,
                    round: attempted_rounds,
                    cause: "client thread panicked".into(),
                }));
            }
        }
    }
    if let Some(e) = error {
        return Err(e);
    }
    clients.sort_by_key(FlClient::id);
    let completed = rounds_before + reports.len();
    let mut system = FlSystem::from_parts(server, clients, completed);
    if telemetry.is_enabled() {
        system.set_telemetry(telemetry);
    }
    Ok(ResilientRun {
        system,
        reports,
        fault_stats,
        wire_stats,
    })
}

/// Decodes and validates one client upload at the server's trust boundary,
/// reconstructing absolute parameters from a delta frame by adding back
/// `delta_base` (the server's decode of the round's broadcast).
fn decode_update(msg: &ClientMsg, delta_base: Option<&ModelParams>) -> Result<ClientUpdate> {
    let mut params = decode_params(&msg.frame)?;
    if msg.delta {
        let base = delta_base.ok_or_else(|| FlError::InvalidConfig {
            reason: format!(
                "client {} sent a delta update but the uplink codec is lossless",
                msg.client_id
            ),
        })?;
        params.add_assign(base)?;
    }
    Ok(ClientUpdate {
        client_id: msg.client_id,
        params,
        num_samples: msg.num_samples,
    })
}

/// Spawns one client thread: a command loop that serves rounds, consults
/// the fault plan at each [`ServerMsg::StartRound`], and reports through
/// [`ClientReply`]s. A [`FaultKind::Crash`] exits the thread silently —
/// the server detects the death through its liveness check, exactly as it
/// would a real panic.
///
/// The thread owns the client's wire state: it decodes each broadcast
/// frame, and encodes its upload under `uplink` — absolute parameters for
/// a lossless codec, the delta against the received global (with an
/// [`ErrorFeedback`] residual carried across rounds) for a lossy one.
fn spawn_client(
    mut client: FlClient,
    replies: Sender<ClientReply>,
    clock: Arc<dyn Clock>,
    plan: Arc<FaultPlan>,
    uplink: Codec,
) -> ClientHandle {
    let id = client.id();
    let (tx, rx): (Sender<ServerMsg>, Receiver<ServerMsg>) = channel();
    let join = thread::spawn(move || -> Result<FlClient> {
        let delta_mode = uplink.is_lossy();
        let mut feedback = ErrorFeedback::new();
        // A Delay fault holds the finished round here until the next
        // StartRound flushes it — by then it is stale and the server's tag
        // check discards it, like a real straggler's late upload.
        let mut held: Option<ClientMsg> = None;
        // Transient-fault bookkeeping: attempts already failed this round.
        let mut failed_round = 0usize;
        let mut failed_attempts = 0u32;
        while let Some(msg) = recv_blocking(&rx) {
            match msg {
                ServerMsg::Shutdown => break,
                ServerMsg::StartRound { round, frame } => {
                    if let Some(stale) = held.take() {
                        client
                            .telemetry()
                            .flight_record("send", "stale_update", round as u64);
                        let _ = replies.send(ClientReply::Update(stale));
                    }
                    let fault = plan.action(id, round);
                    if let Some(kind) = fault {
                        // The fault plan triggering is exactly the moment a
                        // postmortem wants on record: which kind, what round,
                        // on which client's thread.
                        client
                            .telemetry()
                            .flight_record("fault", fault_label(kind), round as u64);
                    }
                    match fault {
                        Some(FaultKind::Crash) => return Ok(client),
                        Some(FaultKind::Stall) => continue,
                        Some(FaultKind::Transient { failures }) => {
                            if failed_round != round {
                                failed_round = round;
                                failed_attempts = 0;
                            }
                            if failed_attempts < failures {
                                failed_attempts += 1;
                                client
                                    .telemetry()
                                    .flight_record("send", "transient", round as u64);
                                let _ = replies.send(ClientReply::Transient {
                                    client: id,
                                    round,
                                    cause: format!(
                                        "injected transient fault (attempt {failed_attempts})"
                                    ),
                                });
                                continue;
                            }
                            // Recovered: fall through and train normally.
                        }
                        _ => {}
                    }
                    // Decode the broadcast at the client's trust boundary: a
                    // frame this client cannot decode is a fatal condition
                    // for this client alone — report and exit, never panic.
                    let global = match decode_params(&frame) {
                        Ok(g) => g,
                        Err(e) => {
                            client
                                .telemetry()
                                .flight_record("wire", "broadcast_decode_failed", round as u64);
                            let _ = replies.send(ClientReply::Fatal {
                                client: id,
                                round,
                                cause: format!("broadcast frame failed to decode: {e}"),
                            });
                            return Ok(client);
                        }
                    };
                    let scope = MemoryScope::enter();
                    let t0 = clock.elapsed();
                    let _round_span = client.round_span(&format!("round[{round}]"));
                    match client.run_protocol(&global) {
                        Err(e) => {
                            // The reply carries the diagnosis; the thread
                            // exits like a crashed process, returning its
                            // state for post-mortem reassembly.
                            client
                                .telemetry()
                                .flight_record("send", "fatal", round as u64);
                            let _ = replies.send(ClientReply::Fatal {
                                client: id,
                                round,
                                cause: e.to_string(),
                            });
                            return Ok(client);
                        }
                        Ok((train_loss, update)) => {
                            let train_s = clock.elapsed().saturating_sub(t0).as_secs_f64();
                            let peak_mem_bytes = scope.peak_extra_bytes();
                            // Encode the upload: absolute parameters over a
                            // lossless uplink; otherwise the delta against
                            // the received global, error-feedback
                            // compensated. Encode failure is fatal for this
                            // client, reported like any training error.
                            let encoded = if delta_mode {
                                update
                                    .params
                                    .sub(&global)
                                    .and_then(|d| feedback.compress(&d, uplink))
                            } else {
                                encode_params(&update.params, uplink)
                            };
                            let upload = match encoded {
                                Ok(bytes) => bytes,
                                Err(e) => {
                                    client
                                        .telemetry()
                                        .flight_record("wire", "encode_failed", round as u64);
                                    let _ = replies.send(ClientReply::Fatal {
                                        client: id,
                                        round,
                                        cause: format!("update frame failed to encode: {e}"),
                                    });
                                    return Ok(client);
                                }
                            };
                            let msg = ClientMsg {
                                round,
                                client_id: id,
                                num_samples: update.num_samples,
                                frame: upload,
                                delta: delta_mode,
                                train_loss,
                                train_s,
                                peak_mem_bytes,
                            };
                            // The server may already have given up on this
                            // round (or shut down); a closed channel just
                            // ends us.
                            let (label, reply) = match fault {
                                Some(FaultKind::DropUpdate) => {
                                    ("dropped", ClientReply::Dropped { client: id, round })
                                }
                                Some(FaultKind::Delay) => {
                                    held = Some(msg);
                                    ("delayed", ClientReply::Delayed { client: id, round })
                                }
                                _ => ("update", ClientReply::Update(msg)),
                            };
                            client.telemetry().flight_record("send", label, round as u64);
                            let _ = replies.send(reply);
                        }
                    }
                }
            }
        }
        Ok(client)
    });
    ClientHandle {
        id,
        tx,
        join,
        departed: false,
    }
}

/// Stable flight-recorder label for an injected fault kind.
fn fault_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Crash => "crash",
        FaultKind::DropUpdate => "drop_update",
        FaultKind::Delay => "delay",
        FaultKind::Stall => "stall",
        FaultKind::Transient { .. } => "transient",
    }
}

/// Per-round transport metrics (deterministic counters; see DESIGN.md §10).
fn record_round_telemetry(
    telemetry: &Telemetry,
    participants: usize,
    dropped: usize,
    retried: usize,
    stale: usize,
) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.counter_add("fl.transport.rounds", 1);
    telemetry.counter_add("fl.transport.updates", participants as u64);
    telemetry.counter_add("fl.transport.clients_dropped", dropped as u64);
    telemetry.counter_add("fl.transport.clients_retried", retried as u64);
    telemetry.counter_add("fl.transport.stale_updates", stale as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlConfig;
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;
    use dinar_tensor::{Rng, Tensor};

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut features = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).unwrap();
            features.set(&[i, 1], rng.normal_with(c, 0.6)).unwrap();
            labels.push(class);
        }
        Dataset::new(features, labels, &[2], 2).unwrap()
    }

    fn build_system() -> FlSystem {
        let data = blob_dataset(90, 5);
        let mut rng = Rng::seed_from(9);
        let shards = dinar_data::partition::partition_dataset(
            &data,
            3,
            dinar_data::partition::Distribution::Iid,
            &mut rng,
        )
        .unwrap();
        FlSystem::builder(FlConfig {
            local_epochs: 2,
            batch_size: 16,
            seed: 3,
        })
        .clients_from_shards(
            shards,
            |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
            |_| Box::new(Sgd::new(0.1)),
        )
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn threaded_matches_sequential_exactly() {
        let mut sequential = build_system();
        sequential.run(4).unwrap();

        let (threaded, reports) = run_threaded(build_system(), 4).unwrap();
        assert_eq!(reports.len(), 4);
        let diff = sequential
            .global_params()
            .max_abs_diff(threaded.global_params())
            .unwrap();
        assert!(diff < 1e-7, "threaded diverged from sequential by {diff}");
    }

    #[test]
    fn threaded_reports_progress_and_preserves_clients() {
        let (system, reports) = run_threaded(build_system(), 3).unwrap();
        assert_eq!(system.clients().len(), 3);
        assert_eq!(system.server().rounds_completed(), 3);
        assert_eq!(reports.last().unwrap().round, 3);
        // Client ids intact and ordered after the round trip.
        let ids: Vec<usize> = system.clients().iter().map(FlClient::id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Learning actually happened.
        assert!(reports[2].mean_train_loss < reports[0].mean_train_loss);
    }

    #[test]
    fn manual_clock_yields_deterministic_cost_timings() {
        let clock = Arc::new(crate::clock::ManualClock::new());
        let (_, reports) = run_threaded_with_clock(build_system(), 2, clock).unwrap();
        // The clock never advances, so every timing is exactly zero — the
        // replay-determinism property L002 exists to protect.
        for r in &reports {
            assert_eq!(r.cost.client_train_s, 0.0);
            assert_eq!(r.cost.server_agg_s, 0.0);
        }
    }

    #[test]
    fn threaded_then_sequential_continues_seamlessly() {
        let (mut system, _) = run_threaded(build_system(), 2).unwrap();
        let report = system.run_round().unwrap();
        assert_eq!(report.round, 3);
    }

    #[test]
    fn threaded_reports_real_per_client_peak_memory() {
        let (_, reports) = run_threaded(build_system(), 1).unwrap();
        // Training allocates activation and gradient tensors; the per-thread
        // ledger must observe them (the old transport hard-coded 0 here).
        assert!(
            reports[0].cost.client_peak_mem_bytes > 0,
            "per-client peak memory not measured"
        );
    }

    #[test]
    fn healthy_resilient_run_reports_no_faults() {
        let run = run_threaded_resilient(
            build_system(),
            2,
            Arc::new(WallClock::new()),
            RoundPolicy::strict(),
        )
        .unwrap();
        assert_eq!(run.fault_stats.len(), 2);
        for s in &run.fault_stats {
            assert_eq!(s.participants, 3);
            assert_eq!(s.clients_dropped, 0);
            assert_eq!(s.clients_retried, 0);
            assert_eq!(s.stale_discarded, 0);
            assert!(!s.deadline_expired);
        }
    }

    #[test]
    fn unmeetable_quorum_is_rejected_upfront() {
        let policy = RoundPolicy::with_quorum(crate::fault::Quorum::AtLeast(7), None);
        let err = run_threaded_resilient(
            build_system(),
            1,
            Arc::new(WallClock::new()),
            policy,
        )
        .unwrap_err();
        assert!(matches!(err, FlError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn stall_plan_without_deadline_is_rejected_upfront() {
        let policy = RoundPolicy::strict().with_faults(FaultPlan::new().stall(0, 1));
        let err = run_threaded_resilient(
            build_system(),
            1,
            Arc::new(WallClock::new()),
            policy,
        )
        .unwrap_err();
        assert!(matches!(err, FlError::InvalidConfig { .. }), "{err}");
    }
}

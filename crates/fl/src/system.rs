//! Round orchestration, system builder and cost accounting.

use crate::ckpt::{FlCheckpoint, PendingRound};
use crate::{ClientMiddleware, ClientUpdate, FlClient, FlError, FlServer, Result, ServerMiddleware};
use dinar_data::Dataset;
use dinar_metrics::cost::{measure, CostSample};
use dinar_nn::optim::Optimizer;
use dinar_nn::{Model, ModelParams};
use dinar_telemetry::{bridge, Telemetry};
use dinar_tensor::{par, profile, Rng};
use std::time::Duration;

/// Runs one round of local training for each referenced client on the
/// [`par`] pool (clients are data-independent within a round) and returns
/// the per-client outcomes **in input order**, so the caller's loss fold
/// and the aggregation order are identical to the sequential loop. Each
/// client's [`measure`] runs entirely on its worker thread, so the
/// per-thread memory scope attributes only that client's allocations.
/// Tensor kernels invoked inside a worker run serially (nested parallel
/// regions execute inline), preventing clients × threads oversubscription.
///
/// `span_parent` seeds each client's span lineage (worker threads start
/// with an empty span stack); pass the enclosing round span's path.
fn train_fan_out(
    clients: &mut [&mut FlClient],
    global: &ModelParams,
    span_parent: &str,
) -> Vec<(Result<(f32, ClientUpdate)>, Duration, u64)> {
    par::map_items_mut(clients, |_, client| {
        let _client_span = client.round_span(span_parent);
        measure(|| client.run_protocol(global))
    })
}

/// Static configuration of an FL system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlConfig {
    /// Local epochs per client per round (the paper uses 5, or 10 for
    /// Purchase100).
    pub local_epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Master seed; every client derives an independent stream from it.
    pub seed: u64,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            local_epochs: 5,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// Per-round measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReport {
    /// Round number (1-based).
    pub round: usize,
    /// Mean training loss across clients.
    pub mean_train_loss: f32,
    /// Cost sample for this round: mean client training time, server
    /// aggregation time, max client peak memory.
    pub cost: CostSample,
}

/// A complete federated learning system: one server plus its clients.
#[derive(Debug)]
pub struct FlSystem {
    server: FlServer,
    clients: Vec<FlClient>,
    rounds_run: usize,
    /// The finished portion of an interrupted round (see
    /// [`FlSystem::begin_round_partial`]); `None` between rounds.
    pending: Option<PendingRound>,
    telemetry: Telemetry,
}

impl FlSystem {
    /// Starts building a system with the given configuration.
    pub fn builder(config: FlConfig) -> FlSystemBuilder {
        FlSystemBuilder {
            config,
            clients: Vec::new(),
            server_middleware: Vec::new(),
            initial: None,
        }
    }

    /// The server.
    pub fn server(&self) -> &FlServer {
        &self.server
    }

    /// Mutable access to the server (to attach middleware after build).
    pub fn server_mut(&mut self) -> &mut FlServer {
        &mut self.server
    }

    /// The clients.
    pub fn clients(&self) -> &[FlClient] {
        &self.clients
    }

    /// Mutable access to the clients (to attach middleware after build).
    pub fn clients_mut(&mut self) -> &mut [FlClient] {
        &mut self.clients
    }

    /// Current global model parameters.
    pub fn global_params(&self) -> &ModelParams {
        self.server.global_params()
    }

    /// Decomposes the system into its server, clients and completed-round
    /// count (used by the threaded transport, which needs to move clients
    /// into their own threads). The system-level telemetry handle is not
    /// part of the tuple — callers that need it should clone it via
    /// [`FlSystem::telemetry`] first (the threaded transport does, and
    /// re-attaches it on reassembly); each client keeps carrying its own
    /// handle across the move. Any pending partial round is dropped.
    pub fn into_parts(self) -> (FlServer, Vec<FlClient>, usize) {
        (self.server, self.clients, self.rounds_run)
    }

    /// Reassembles a system from parts produced by [`FlSystem::into_parts`].
    /// The reassembled system starts with telemetry disabled; call
    /// [`FlSystem::set_telemetry`] to re-attach a sink.
    pub fn from_parts(server: FlServer, clients: Vec<FlClient>, rounds_run: usize) -> Self {
        FlSystem {
            server,
            clients,
            rounds_run,
            pending: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink to the system, **every client** (and
    /// through them, every client model, optimizer and middleware stack)
    /// and the server's middleware. Each subsequent round emits a
    /// `round[N]` span with nested `client[i]` (download / train / upload /
    /// middleware / per-layer) and `aggregate` children, plus the bridged
    /// tensor kernel counters; defenses on either side charge the sink's
    /// privacy ledger. See `dinar-telemetry` for the export side.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for client in &mut self.clients {
            client.set_telemetry(telemetry.clone()); // lint: allow(L009, telemetry handle, not params)
        }
        self.server.set_telemetry(telemetry.clone()); // lint: allow(L009, telemetry handle, not params)
        self.telemetry = telemetry;
    }

    /// The system's telemetry handle (disabled unless
    /// [`set_telemetry`](FlSystem::set_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Returns an error if a partial round is pending — the caller must
    /// [`finish_round`](FlSystem::finish_round) before starting a new one.
    fn check_no_pending(&self) -> Result<()> {
        if self.pending.is_some() {
            return Err(FlError::InvalidConfig {
                reason: "a partial round is pending; call finish_round first".into(),
            });
        }
        Ok(())
    }

    /// Runs one FL round: every client downloads the global model, trains
    /// locally and uploads; the server aggregates.
    ///
    /// # Errors
    ///
    /// Propagates client training, middleware and aggregation errors;
    /// returns [`FlError::InvalidConfig`] if a partial round is pending.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        self.check_no_pending()?;
        let kernels_before = profile::snapshot();
        let round_span = self.telemetry.span(&format!("round[{}]", self.rounds_run + 1));
        let span_parent = round_span.path().to_string();
        let global = self.server.global_params().share();
        let mut refs: Vec<&mut FlClient> = self.clients.iter_mut().collect();
        let results = train_fan_out(&mut refs, &global, &span_parent);
        drop(refs);
        let mut updates = Vec::with_capacity(self.clients.len());
        let mut loss_sum = 0.0f64;
        let mut train_time_sum = 0.0f64;
        let mut peak_mem = 0u64;
        for (result, elapsed, mem) in results {
            let (loss, update) = result?;
            loss_sum += loss as f64;
            train_time_sum += elapsed.as_secs_f64();
            peak_mem = peak_mem.max(mem);
            updates.push(update);
        }
        let (agg_result, agg_elapsed, _) = {
            let _agg_span = self.telemetry.span("aggregate");
            measure(|| self.server.aggregate(&updates).map(|_| ()))
        };
        agg_result?;
        self.rounds_run += 1;
        drop(round_span);
        self.record_round_metrics(&kernels_before, updates.len(), peak_mem);
        Ok(RoundReport {
            round: self.rounds_run,
            mean_train_loss: (loss_sum / self.clients.len().max(1) as f64) as f32,
            cost: CostSample {
                client_train_s: train_time_sum / self.clients.len().max(1) as f64,
                server_agg_s: agg_elapsed.as_secs_f64(),
                client_peak_mem_bytes: peak_mem,
            },
        })
    }

    /// Post-round metrics: deterministic round/update counters, the bridged
    /// tensor kernel delta for the round, and the volatile alloc/peak-memory
    /// gauges.
    fn record_round_metrics(
        &self,
        kernels_before: &profile::KernelSnapshot,
        updates: usize,
        peak_mem: u64,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.counter_add("fl.rounds", 1);
        self.telemetry.counter_add("fl.updates", updates as u64);
        bridge::record_kernel_delta(
            &self.telemetry,
            &profile::snapshot().delta_since(kernels_before),
        );
        bridge::record_alloc_gauges(&self.telemetry);
        self.telemetry
            .gauge_max_volatile("fl.client_peak_mem_bytes", peak_mem as f64);
    }

    /// Runs `rounds` FL rounds and returns the per-round reports.
    ///
    /// # Errors
    ///
    /// Propagates [`FlSystem::run_round`] errors.
    pub fn run(&mut self, rounds: usize) -> Result<Vec<RoundReport>> {
        (0..rounds).map(|_| self.run_round()).collect()
    }

    /// Runs one round with **partial participation**: the server selects a
    /// uniformly random subset of `participants` clients (§2.1: "the FL
    /// server selects N participating clients"); only they download, train
    /// and upload this round. Cross-silo deployments typically select
    /// everyone (use [`FlSystem::run_round`]); this entry point models
    /// cross-device-style sampling.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] if `participants` is zero or
    /// exceeds the client count; propagates training/aggregation errors.
    pub fn run_round_with_selection(
        &mut self,
        participants: usize,
        rng: &mut Rng,
    ) -> Result<RoundReport> {
        self.check_no_pending()?;
        if participants == 0 || participants > self.clients.len() {
            return Err(FlError::InvalidConfig {
                reason: format!(
                    "cannot select {participants} of {} clients",
                    self.clients.len()
                ),
            });
        }
        let mut selected = rng.permutation(self.clients.len());
        selected.truncate(participants);
        selected.sort_unstable();

        let kernels_before = profile::snapshot();
        let round_span = self.telemetry.span(&format!("round[{}]", self.rounds_run + 1));
        let span_parent = round_span.path().to_string();
        let global = self.server.global_params().share();
        // Collect &mut references to the selected clients (indices are
        // sorted, so a single forward sweep suffices).
        let mut refs: Vec<&mut FlClient> = Vec::with_capacity(participants);
        {
            let mut wanted = selected.iter().peekable();
            for (i, client) in self.clients.iter_mut().enumerate() {
                if wanted.peek() == Some(&&i) {
                    refs.push(client);
                    wanted.next();
                }
            }
        }
        let results = train_fan_out(&mut refs, &global, &span_parent);
        drop(refs);
        let mut updates = Vec::with_capacity(participants);
        let mut loss_sum = 0.0f64;
        let mut train_time_sum = 0.0f64;
        let mut peak_mem = 0u64;
        for (result, elapsed, mem) in results {
            let (loss, update) = result?;
            loss_sum += loss as f64;
            train_time_sum += elapsed.as_secs_f64();
            peak_mem = peak_mem.max(mem);
            updates.push(update);
        }
        let (agg_result, agg_elapsed, _) = {
            let _agg_span = self.telemetry.span("aggregate");
            measure(|| self.server.aggregate(&updates).map(|_| ()))
        };
        agg_result?;
        self.rounds_run += 1;
        drop(round_span);
        self.record_round_metrics(&kernels_before, updates.len(), peak_mem);
        Ok(RoundReport {
            round: self.rounds_run,
            mean_train_loss: (loss_sum / participants as f64) as f32,
            cost: CostSample {
                client_train_s: train_time_sum / participants as f64,
                server_agg_s: agg_elapsed.as_secs_f64(),
                client_peak_mem_bytes: peak_mem,
            },
        })
    }

    /// Whether an interrupted round is pending (some clients trained, no
    /// aggregation yet).
    pub fn has_pending_round(&self) -> bool {
        self.pending.is_some()
    }

    /// Trains clients `0..stop_after` of the next round **sequentially**
    /// and parks their `(loss, update)` pairs instead of aggregating —
    /// modelling a run killed after `stop_after` clients. Take a
    /// [`checkpoint`](FlSystem::checkpoint) afterwards to persist the
    /// partial round, and call [`finish_round`](FlSystem::finish_round)
    /// (possibly after a [`restore`](FlSystem::restore) in a fresh
    /// process) to complete it.
    ///
    /// Clients are data-independent within a round and the engine
    /// aggregates in client order, so splitting a round this way is
    /// bit-identical to the parallel [`run_round`](FlSystem::run_round) at
    /// any thread-pool width.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] if a partial round is already
    /// pending or `stop_after` is not in `1..=clients`; propagates client
    /// training errors.
    pub fn begin_round_partial(&mut self, stop_after: usize) -> Result<()> {
        self.check_no_pending()?;
        if stop_after == 0 || stop_after > self.clients.len() {
            return Err(FlError::InvalidConfig {
                reason: format!(
                    "cannot stop after {stop_after} of {} clients",
                    self.clients.len()
                ),
            });
        }
        let global = self.server.global_params().share();
        let mut completed = Vec::with_capacity(stop_after);
        for client in &mut self.clients[..stop_after] {
            completed.push(client.run_protocol(&global)?);
        }
        self.pending = Some(PendingRound { completed });
        Ok(())
    }

    /// Completes a pending partial round: trains the remaining clients
    /// sequentially against the same global snapshot, then aggregates all
    /// updates in client order. The resulting global model is bit-identical
    /// to an uninterrupted [`run_round`](FlSystem::run_round).
    ///
    /// The report's cost sample covers only the clients trained in this
    /// call (the earlier portion's wall-clock belongs to the interrupted
    /// process).
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] if no partial round is pending;
    /// propagates training and aggregation errors.
    pub fn finish_round(&mut self) -> Result<RoundReport> {
        let Some(mut pending) = self.pending.take() else {
            return Err(FlError::InvalidConfig {
                reason: "no partial round is pending; call begin_round_partial first".into(),
            });
        };
        let global = self.server.global_params().share();
        let done = pending.completed.len();
        let mut train_time_sum = 0.0f64;
        for client in &mut self.clients[done..] {
            let (result, elapsed, _mem) = measure(|| client.run_protocol(&global));
            train_time_sum += elapsed.as_secs_f64();
            pending.completed.push(result?);
        }
        let mut updates = Vec::with_capacity(pending.completed.len());
        let mut loss_sum = 0.0f64;
        for (loss, update) in pending.completed {
            loss_sum += loss as f64;
            updates.push(update);
        }
        let (agg_result, agg_elapsed, _) = measure(|| self.server.aggregate(&updates).map(|_| ()));
        agg_result?;
        self.rounds_run += 1;
        Ok(RoundReport {
            round: self.rounds_run,
            mean_train_loss: (loss_sum / self.clients.len().max(1) as f64) as f32,
            cost: CostSample {
                client_train_s: train_time_sum / self.clients.len().max(1) as f64,
                server_agg_s: agg_elapsed.as_secs_f64(),
                client_peak_mem_bytes: 0,
            },
        })
    }

    /// Captures a complete resume image of the system: global model,
    /// completed-round counter, every client's mutable state and any
    /// pending partial round. Persist it with [`crate::ckpt::save_resume`].
    pub fn checkpoint(&self) -> FlCheckpoint {
        FlCheckpoint {
            rounds_run: self.rounds_run,
            global: self.server.global_params().share(),
            clients: self.clients.iter().map(FlClient::export_state).collect(),
            // lint: allow(L009, PendingRound's derived Clone bumps COW refcounts, O(1) like share())
            pending: self.pending.clone(),
        }
    }

    /// Installs a resume image into this system. The system must have been
    /// rebuilt with the same builder inputs (shards, architecture,
    /// optimizer, middleware stack, seed); the image then overwrites all
    /// mutable state, making the resumed run bit-identical to one that was
    /// never interrupted.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] on a client-count mismatch and
    /// propagates per-client restore errors.
    pub fn restore(&mut self, ckpt: FlCheckpoint) -> Result<()> {
        if ckpt.clients.len() != self.clients.len() {
            return Err(FlError::InvalidConfig {
                reason: format!(
                    "resume image has {} client(s), system has {}",
                    ckpt.clients.len(),
                    self.clients.len()
                ),
            });
        }
        for (client, state) in self.clients.iter_mut().zip(ckpt.clients) {
            client.import_state(state)?;
        }
        self.server.restore_state(ckpt.global, ckpt.rounds_run);
        self.rounds_run = ckpt.rounds_run;
        self.pending = ckpt.pending;
        Ok(())
    }

    /// Pushes the final global model to every client (running their download
    /// middleware), so client models reflect the end-of-training state.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors.
    pub fn sync_clients(&mut self) -> Result<()> {
        let global = self.server.global_params().share();
        let mut refs: Vec<&mut FlClient> = self.clients.iter_mut().collect();
        let results = par::map_items_mut(&mut refs, |_, client| client.receive_global(&global));
        results.into_iter().collect()
    }

    /// Mean accuracy of the clients' (personalized) models on a dataset —
    /// the paper's overall model utility metric (Appendix A).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn mean_client_accuracy(&mut self, dataset: &Dataset) -> Result<f32> {
        let n = self.clients.len().max(1);
        let mut refs: Vec<&mut FlClient> = self.clients.iter_mut().collect();
        let accuracies = par::map_items_mut(&mut refs, |_, client| client.evaluate(dataset));
        let mut sum = 0.0f64;
        for accuracy in accuracies {
            sum += accuracy? as f64;
        }
        Ok((sum / n as f64) as f32)
    }
}

/// Builder for [`FlSystem`].
#[derive(Debug)]
pub struct FlSystemBuilder {
    config: FlConfig,
    clients: Vec<FlClient>,
    server_middleware: Vec<Box<dyn ServerMiddleware>>,
    initial: Option<ModelParams>,
}

impl FlSystemBuilder {
    /// Creates one client per data shard.
    ///
    /// All clients start from the **same** initial parameters (drawn once
    /// from `model_fn`), matching the FL protocol where round 0 distributes
    /// a common global model. Each client gets an independent RNG stream and
    /// a fresh optimizer from `opt_fn`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for empty shards or model factory
    /// failures.
    pub fn clients_from_shards(
        mut self,
        shards: Vec<Dataset>,
        model_fn: impl Fn(&mut Rng) -> dinar_nn::Result<Model>,
        opt_fn: impl Fn(usize) -> Box<dyn Optimizer>,
    ) -> Result<Self> {
        let root = Rng::seed_from(self.config.seed);
        let mut init_rng = root.split(u64::MAX);
        let init_model = model_fn(&mut init_rng).map_err(FlError::from)?;
        let initial = init_model.params();
        let base_id = self.clients.len();
        for (offset, shard) in shards.into_iter().enumerate() {
            let id = base_id + offset;
            let mut client_rng = root.split(id as u64);
            let mut model = model_fn(&mut client_rng).map_err(FlError::from)?;
            model.set_params(&initial).map_err(FlError::from)?;
            let client = FlClient::new(
                id,
                model,
                opt_fn(id),
                shard,
                client_rng.split(0xC11E),
                self.config.local_epochs,
                self.config.batch_size,
            )?;
            self.clients.push(client);
        }
        self.initial = Some(initial);
        Ok(self)
    }

    /// Attaches middleware to every client, built per client id.
    pub fn with_client_middleware(
        mut self,
        factory: impl Fn(usize) -> Vec<Box<dyn ClientMiddleware>>,
    ) -> Self {
        for client in &mut self.clients {
            for mw in factory(client.id()) {
                client.push_middleware(mw);
            }
        }
        self
    }

    /// Attaches a server middleware.
    pub fn with_server_middleware(mut self, mw: Box<dyn ServerMiddleware>) -> Self {
        self.server_middleware.push(mw);
        self
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] if no clients were added.
    pub fn build(self) -> Result<FlSystem> {
        let initial = self.initial.ok_or_else(|| FlError::InvalidConfig {
            reason: "no clients configured; call clients_from_shards first".into(),
        })?;
        if self.clients.is_empty() {
            return Err(FlError::InvalidConfig {
                reason: "system needs at least one client".into(),
            });
        }
        let mut server = FlServer::new(initial);
        for mw in self.server_middleware {
            server.push_middleware(mw);
        }
        Ok(FlSystem {
            server,
            clients: self.clients,
            rounds_run: 0,
            pending: None,
            telemetry: Telemetry::disabled(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_data::partition::{partition_dataset, Distribution};
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;
    use dinar_tensor::Tensor;

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut features = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).unwrap();
            features.set(&[i, 1], rng.normal_with(c, 0.6)).unwrap();
            labels.push(class);
        }
        Dataset::new(features, labels, &[2], 2).unwrap()
    }

    fn small_system(clients: usize) -> FlSystem {
        let data = blob_dataset(120, 5);
        let mut rng = Rng::seed_from(9);
        let shards = partition_dataset(&data, clients, Distribution::Iid, &mut rng).unwrap();
        FlSystem::builder(FlConfig {
            local_epochs: 2,
            batch_size: 16,
            seed: 3,
        })
        .clients_from_shards(
            shards,
            |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
            |_| Box::new(Sgd::new(0.1)),
        )
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn clients_start_from_identical_models() {
        let system = small_system(3);
        let p0 = system.clients()[0].model().params();
        for c in &system.clients()[1..] {
            assert!(c.model().params().max_abs_diff(&p0).unwrap() < 1e-9);
        }
        assert!(system.global_params().max_abs_diff(&p0).unwrap() < 1e-9);
    }

    #[test]
    fn federated_training_converges_on_easy_task() {
        let mut system = small_system(3);
        let reports = system.run(12).unwrap();
        assert!(reports[11].mean_train_loss < reports[0].mean_train_loss * 0.5);
        system.sync_clients().unwrap();
        let test = blob_dataset(60, 77);
        assert!(system.mean_client_accuracy(&test).unwrap() > 0.9);
    }

    #[test]
    fn round_reports_count_and_cost() {
        let mut system = small_system(2);
        let reports = system.run(3).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].round, 3);
        assert!(reports.iter().all(|r| r.cost.client_train_s > 0.0));
        assert_eq!(system.server().rounds_completed(), 3);
    }

    #[test]
    fn build_without_clients_fails() {
        assert!(matches!(
            FlSystem::builder(FlConfig::default()).build(),
            Err(FlError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn global_model_differs_from_any_single_client_after_round() {
        let mut system = small_system(3);
        system.run(1).unwrap();
        // The aggregate should be a mixture, not equal to one client's model
        // (clients trained on different shards).
        let global = system.global_params().clone();
        for c in system.clients() {
            assert!(c.model().params().max_abs_diff(&global).unwrap() > 1e-6);
        }
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use dinar_data::partition::{partition_dataset, Distribution};
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;

    fn system(clients: usize) -> FlSystem {
        let mut rng = Rng::seed_from(1);
        let features = rng.randn(&[clients * 20, 3]);
        let labels = (0..clients * 20).map(|i| i % 2).collect();
        let data = Dataset::new(features, labels, &[3], 2).unwrap();
        let shards = partition_dataset(&data, clients, Distribution::Iid, &mut rng).unwrap();
        FlSystem::builder(FlConfig {
            local_epochs: 1,
            batch_size: 8,
            seed: 2,
        })
        .clients_from_shards(
            shards,
            |rng| models::mlp(&[3, 4, 2], Activation::ReLU, rng),
            |_| Box::new(Sgd::new(0.05)),
        )
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn partial_participation_round_runs() {
        let mut sys = system(6);
        let mut rng = Rng::seed_from(3);
        let report = sys.run_round_with_selection(2, &mut rng).unwrap();
        assert_eq!(report.round, 1);
        assert!(report.mean_train_loss.is_finite());
    }

    #[test]
    fn full_selection_equals_plain_round() {
        let mut a = system(4);
        let mut b = system(4);
        let mut rng = Rng::seed_from(4);
        a.run_round().unwrap();
        b.run_round_with_selection(4, &mut rng).unwrap();
        assert!(a
            .global_params()
            .max_abs_diff(b.global_params())
            .unwrap()
            < 1e-7);
    }

    #[test]
    fn invalid_selection_rejected() {
        let mut sys = system(3);
        let mut rng = Rng::seed_from(5);
        assert!(sys.run_round_with_selection(0, &mut rng).is_err());
        assert!(sys.run_round_with_selection(4, &mut rng).is_err());
    }
}

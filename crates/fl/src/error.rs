use dinar_data::DataError;
use dinar_nn::NnError;
use dinar_tensor::TensorError;
use std::fmt;

/// Error type for the federated learning engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The system was configured inconsistently.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Aggregation was attempted with no client updates.
    NoUpdates,
    /// A client failed during a round: its thread died, it reported a
    /// training error, or so many clients dropped out that the round fell
    /// below its quorum. `client` names the (first) failed client.
    ClientFailure {
        /// Id of the failed client.
        client: usize,
        /// Round (1-based, absolute) in which the failure surfaced.
        round: usize,
        /// Human-readable description of the failure.
        cause: String,
    },
    /// A middleware reported a failure.
    Middleware {
        /// Middleware name.
        name: &'static str,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "network error: {e}"),
            FlError::Data(e) => write!(f, "data error: {e}"),
            FlError::Tensor(e) => write!(f, "tensor error: {e}"),
            FlError::InvalidConfig { reason } => write!(f, "invalid FL configuration: {reason}"),
            FlError::NoUpdates => write!(f, "aggregation requires at least one client update"),
            FlError::ClientFailure {
                client,
                round,
                cause,
            } => {
                write!(f, "client {client} failed in round {round}: {cause}")
            }
            FlError::Middleware { name, reason } => {
                write!(f, "middleware `{name}` failed: {reason}")
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Data(e) => Some(e),
            FlError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<DataError> for FlError {
    fn from(e: DataError) -> Self {
        FlError::Data(e)
    }
}

impl From<TensorError> for FlError {
    fn from(e: TensorError) -> Self {
        FlError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_failure_names_client_round_and_cause() {
        let e = FlError::ClientFailure {
            client: 3,
            round: 7,
            cause: "thread died".into(),
        };
        let s = e.to_string();
        assert!(s.contains("client 3"), "{s}");
        assert!(s.contains("round 7"), "{s}");
        assert!(s.contains("thread died"), "{s}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn conversions_and_sources() {
        let e: FlError = NnError::BackwardBeforeForward { layer: "dense" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: FlError = DataError::InvalidSplit { reason: "x".into() }.into();
        assert!(e.to_string().contains("data error"));
    }
}

//! Deterministic simulated network for the threaded transport.
//!
//! The threaded engine moves every model as wire bytes (see
//! [`crate::transport`]); this module prices those bytes. Each direction
//! of each client's link has a [`LinkModel`] — fixed latency plus a
//! byte-rate — and a [`NetworkModel`] maps clients to links with
//! per-client overrides over a default pair. Transfer times are computed
//! in integer nanoseconds from the byte counts alone, so a round's
//! simulated timings are a pure function of (model architecture, codec,
//! link parameters): bit-identical across pool widths, arrival orders and
//! wall time.
//!
//! The simulation never sleeps. Simulated durations compose with the
//! transport's round deadline, which is budgeted on the injectable
//! [`Clock`](crate::clock::Clock): the round's deadline is extended by the
//! slowest simulated path so far (see [`RoundMeter::deadline_allowance`]),
//! and the per-round makespan is reported in [`RoundWireStats`] and as
//! `fl.transport.*` telemetry. Under a
//! [`ManualClock`](crate::clock::ManualClock) the whole simulation
//! replays exactly.

pub use dinar_tensor::wire::Codec;
use std::collections::BTreeMap;
use std::time::Duration;

/// One direction of one network link: fixed latency plus a byte-rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Propagation latency added to every transfer.
    pub latency: Duration,
    /// Throughput in bytes per second; `0` means infinite (transfer time
    /// is the latency alone).
    pub bytes_per_s: u64,
}

impl LinkModel {
    /// The ideal link: zero latency, infinite bandwidth.
    pub const fn ideal() -> LinkModel {
        LinkModel {
            latency: Duration::ZERO,
            bytes_per_s: 0,
        }
    }

    /// A link with `latency` and `bytes_per_s` throughput.
    pub const fn new(latency: Duration, bytes_per_s: u64) -> LinkModel {
        LinkModel {
            latency,
            bytes_per_s,
        }
    }

    /// Simulated time to move `bytes` over this link: latency plus the
    /// serialization delay, in exact integer nanoseconds (saturating at
    /// `u64::MAX` ns, ~584 years).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bytes_per_s == 0 {
            return self.latency;
        }
        let nanos = (u128::from(bytes) * 1_000_000_000u128) / u128::from(self.bytes_per_s);
        self.latency
            .saturating_add(Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX)))
    }
}

/// A client's downlink/uplink pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientLink {
    /// Server → client direction.
    pub down: LinkModel,
    /// Client → server direction.
    pub up: LinkModel,
}

/// Per-link latency/bandwidth model over the whole client population:
/// a default link pair plus per-client overrides.
#[derive(Debug, Clone, Default)]
pub struct NetworkModel {
    default: Option<ClientLink>,
    overrides: BTreeMap<usize, ClientLink>,
}

impl NetworkModel {
    /// The ideal network: every transfer is instantaneous.
    pub fn ideal() -> NetworkModel {
        NetworkModel::default()
    }

    /// A network where every client has symmetric links of `latency` and
    /// `bytes_per_s` in both directions.
    pub fn uniform(latency: Duration, bytes_per_s: u64) -> NetworkModel {
        let link = LinkModel::new(latency, bytes_per_s);
        NetworkModel {
            default: Some(ClientLink {
                down: link,
                up: link,
            }),
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides one client's link pair (a straggler's slow uplink, say).
    #[must_use]
    pub fn with_client(mut self, client: usize, link: ClientLink) -> NetworkModel {
        self.overrides.insert(client, link);
        self
    }

    /// The link pair serving `client`.
    pub fn link(&self, client: usize) -> ClientLink {
        self.overrides
            .get(&client)
            .copied()
            .or(self.default)
            .unwrap_or(ClientLink {
                down: LinkModel::ideal(),
                up: LinkModel::ideal(),
            })
    }
}

/// Wire-plane configuration for a threaded run: which codec each
/// direction uses, and the simulated network the bytes cross.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Codec for the server → client global-model broadcast. Lossy
    /// downlinks change what clients train on; the default is lossless.
    pub downlink: Codec,
    /// Codec for client → server updates. Lossy codecs send the delta
    /// against the received global, with error-feedback residuals carried
    /// client-side.
    pub uplink: Codec,
    /// The simulated network.
    pub network: NetworkModel,
}

impl Default for WireConfig {
    /// Lossless in both directions over an ideal network — byte metering
    /// with zero behavioral change versus the in-process engines.
    fn default() -> WireConfig {
        WireConfig {
            downlink: Codec::F32,
            uplink: Codec::F32,
            network: NetworkModel::ideal(),
        }
    }
}

impl WireConfig {
    /// The default lossless configuration.
    pub fn lossless() -> WireConfig {
        WireConfig::default()
    }

    /// Sets the uplink codec (the direction compression targets first:
    /// updates outnumber broadcasts `num_clients`-fold per round).
    #[must_use]
    pub fn with_uplink(mut self, codec: Codec) -> WireConfig {
        self.uplink = codec;
        self
    }

    /// Sets the simulated network.
    #[must_use]
    pub fn with_network(mut self, network: NetworkModel) -> WireConfig {
        self.network = network;
        self
    }
}

/// One completed round's wire traffic and simulated network time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundWireStats {
    /// Round number (1-based, absolute).
    pub round: usize,
    /// Bytes broadcast server → clients (per-client, not per-encode:
    /// one encoded frame sent to `n` clients meters `n × len`).
    pub bytes_down: u64,
    /// Bytes received client → server (accepted and stale updates both —
    /// the link carried them either way).
    pub bytes_up: u64,
    /// Wire frames moved in either direction.
    pub frames: u64,
    /// Simulated network makespan: the slowest client's download +
    /// upload transfer time.
    pub sim_elapsed: Duration,
}

/// Accumulates one round's transfers into a [`RoundWireStats`].
///
/// Arrival order does not matter: the makespan is a max over per-client
/// path times, so the stats replay bit-identically for any pool width.
#[derive(Debug)]
pub struct RoundMeter<'a> {
    net: &'a NetworkModel,
    down_time: BTreeMap<usize, Duration>,
    bytes_down: u64,
    bytes_up: u64,
    frames: u64,
    max_path: Duration,
}

impl<'a> RoundMeter<'a> {
    /// A fresh meter over `net`.
    pub fn new(net: &'a NetworkModel) -> RoundMeter<'a> {
        RoundMeter {
            net,
            down_time: BTreeMap::new(),
            bytes_down: 0,
            bytes_up: 0,
            frames: 0,
            max_path: Duration::ZERO,
        }
    }

    /// Meters a broadcast frame sent to `client`. Retries accumulate onto
    /// the client's download path.
    pub fn sent_down(&mut self, client: usize, bytes: u64) {
        self.bytes_down += bytes;
        self.frames += 1;
        let t = self.net.link(client).down.transfer_time(bytes);
        let path = self.down_time.entry(client).or_insert(Duration::ZERO);
        *path = path.saturating_add(t);
        self.max_path = self.max_path.max(*path);
    }

    /// Meters an update frame received from `client`.
    pub fn received_up(&mut self, client: usize, bytes: u64) {
        self.bytes_up += bytes;
        self.frames += 1;
        let up = self.net.link(client).up.transfer_time(bytes);
        let down = self.down_time.get(&client).copied().unwrap_or(Duration::ZERO);
        self.max_path = self.max_path.max(down.saturating_add(up));
    }

    /// Extra round-deadline budget the simulated network has earned so
    /// far: the slowest simulated path. Added to the Clock-budgeted
    /// deadline so a slow simulated link does not count against the
    /// compute deadline.
    pub fn deadline_allowance(&self) -> Duration {
        self.max_path
    }

    /// Closes the round.
    pub fn finish(self, round: usize) -> RoundWireStats {
        RoundWireStats {
            round,
            bytes_down: self.bytes_down,
            bytes_up: self.bytes_up,
            frames: self.frames,
            sim_elapsed: self.max_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_instant() {
        let l = LinkModel::ideal();
        assert_eq!(l.transfer_time(0), Duration::ZERO);
        assert_eq!(l.transfer_time(u64::MAX), Duration::ZERO);
    }

    #[test]
    fn transfer_time_is_exact_integer_nanos() {
        let l = LinkModel::new(Duration::from_millis(5), 1_000_000);
        // 250_000 bytes at 1 MB/s = 250 ms + 5 ms latency.
        assert_eq!(l.transfer_time(250_000), Duration::from_millis(255));
        // 1 byte at 3 B/s = 333_333_333 ns exactly (integer division).
        let l = LinkModel::new(Duration::ZERO, 3);
        assert_eq!(l.transfer_time(1), Duration::from_nanos(333_333_333));
    }

    #[test]
    fn network_overrides_fall_back_to_default() {
        let slow = ClientLink {
            down: LinkModel::new(Duration::from_millis(100), 0),
            up: LinkModel::new(Duration::from_millis(200), 0),
        };
        let net = NetworkModel::uniform(Duration::from_millis(1), 0).with_client(7, slow);
        assert_eq!(net.link(7).up.latency, Duration::from_millis(200));
        assert_eq!(net.link(0).up.latency, Duration::from_millis(1));
        assert_eq!(NetworkModel::ideal().link(3).down, LinkModel::ideal());
    }

    #[test]
    fn meter_makespan_is_max_over_client_paths_not_sum() {
        let net = NetworkModel::uniform(Duration::from_millis(10), 1_000_000);
        let mut m = RoundMeter::new(&net);
        for c in 0..3 {
            m.sent_down(c, 1_000_000); // 10 ms + 1 s each
        }
        m.received_up(0, 500_000); // path 0: 1.01 s + 0.51 s
        m.received_up(2, 1_000_000); // path 2: 1.01 s + 1.01 s
        let stats = m.finish(4);
        assert_eq!(stats.round, 4);
        assert_eq!(stats.bytes_down, 3_000_000);
        assert_eq!(stats.bytes_up, 1_500_000);
        assert_eq!(stats.frames, 5);
        assert_eq!(stats.sim_elapsed, Duration::from_millis(2020));
    }

    #[test]
    fn meter_is_arrival_order_invariant() {
        let net = NetworkModel::uniform(Duration::from_millis(3), 10_000);
        let runs: Vec<RoundWireStats> = [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]]
            .iter()
            .map(|order| {
                let mut m = RoundMeter::new(&net);
                for &c in order {
                    m.sent_down(c, 4_000 + 100 * u64::try_from(c).unwrap());
                }
                for &c in order.iter().rev() {
                    m.received_up(c, 2_000 + 50 * u64::try_from(c).unwrap());
                }
                m.finish(1)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn default_wire_config_is_lossless_and_ideal() {
        let w = WireConfig::default();
        assert_eq!(w.downlink, Codec::F32);
        assert_eq!(w.uplink, Codec::F32);
        assert_eq!(w.network.link(0).down, LinkModel::ideal());
        let w = WireConfig::lossless().with_uplink(Codec::Sign1);
        assert_eq!(w.uplink, Codec::Sign1);
        assert_eq!(w.downlink, Codec::F32);
    }
}

//! The FL client: local model, local data, local training.

use crate::ckpt::ClientCkpt;
use crate::{ClientMiddleware, FlError, Result};
use dinar_data::Dataset;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::optim::Optimizer;
use dinar_nn::{Model, ModelParams};
use dinar_telemetry::{SpanGuard, Telemetry};
use dinar_tensor::Rng;

/// The parameter set a client uploads after local training, with the sample
/// count the server uses as its FedAvg weight.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Uploading client's id.
    pub client_id: usize,
    /// The (possibly defense-transformed) model parameters.
    pub params: ModelParams,
    /// Number of local training samples (FedAvg weight).
    pub num_samples: usize,
}

/// One federated learning participant.
///
/// A client owns its model, optimizer, private data shard, RNG stream and
/// middleware stack. The round protocol is
/// [`receive_global`](FlClient::receive_global) →
/// [`train_local`](FlClient::train_local) →
/// [`produce_update`](FlClient::produce_update).
#[derive(Debug)]
pub struct FlClient {
    id: usize,
    model: Model,
    optimizer: Box<dyn Optimizer>,
    data: Dataset,
    middleware: Vec<Box<dyn ClientMiddleware>>,
    rng: Rng,
    local_epochs: usize,
    batch_size: usize,
    telemetry: Telemetry,
}

impl FlClient {
    /// Creates a client.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for an empty shard or zero
    /// epochs/batch size.
    pub fn new(
        id: usize,
        model: Model,
        optimizer: Box<dyn Optimizer>,
        data: Dataset,
        rng: Rng,
        local_epochs: usize,
        batch_size: usize,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(FlError::InvalidConfig {
                reason: format!("client {id} has no local data"),
            });
        }
        if local_epochs == 0 || batch_size == 0 {
            return Err(FlError::InvalidConfig {
                reason: "local_epochs and batch_size must be positive".into(),
            });
        }
        Ok(FlClient {
            id,
            model,
            optimizer,
            data,
            middleware: Vec::new(),
            rng,
            local_epochs,
            batch_size,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry sink to this client, its model, its optimizer
    /// **and its middleware stack**: the round protocol then emits
    /// `download` / `train` / `upload` spans, one `mw[name]` span per
    /// middleware transform, the model's per-layer spans nested beneath
    /// them — and every defense in the stack charges the sink's privacy
    /// ledger.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.model.set_telemetry(telemetry.clone()); // lint: allow(L009, telemetry handle, not params)
        self.optimizer.attach_telemetry(&telemetry, self.id);
        for mw in &mut self.middleware {
            mw.attach_telemetry(&telemetry, self.id);
        }
        self.telemetry = telemetry;
    }

    /// The client's telemetry handle (disabled unless
    /// [`set_telemetry`](FlClient::set_telemetry) was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Opens this client's per-round span under the explicit `parent` path
    /// — the fan-out in [`FlSystem`](crate::FlSystem) runs clients on pool
    /// threads whose span stack starts empty, so the round lineage must be
    /// seeded explicitly.
    pub fn round_span(&self, parent: &str) -> SpanGuard {
        self.telemetry
            .span_at(parent, &format!("client[{}]", self.id))
    }

    /// Client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local training samples.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// The client's local dataset (its members, for attack evaluation).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The client's current (personalized) model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable access to the client's model (used by evaluation helpers).
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Appends a middleware to the client's stack, handing it the
    /// client's current telemetry sink.
    pub fn push_middleware(&mut self, mw: Box<dyn ClientMiddleware>) {
        self.middleware.push(mw);
        if let Some(mw) = self.middleware.last_mut() {
            mw.attach_telemetry(&self.telemetry, self.id);
        }
    }

    /// Names of the installed middleware, in order.
    pub fn middleware_names(&self) -> Vec<&'static str> {
        self.middleware.iter().map(|m| m.name()).collect()
    }

    /// Receives the global model: runs the download middleware chain and
    /// installs the result into the local model.
    ///
    /// # Errors
    ///
    /// Propagates middleware and shape errors.
    pub fn receive_global(&mut self, global: &ModelParams) -> Result<()> {
        let _span = self.telemetry.span("download");
        let mut install = global.share();
        for mw in &mut self.middleware {
            let _mw_span = if self.telemetry.is_enabled() {
                Some(self.telemetry.span(&format!("mw[{}]", mw.name())))
            } else {
                None
            };
            mw.transform_download(self.id, &mut install)?;
        }
        self.model.set_params(&install)?;
        Ok(())
    }

    /// Runs `local_epochs` of mini-batch training on the local shard and
    /// returns the mean training loss over all batches.
    ///
    /// # Errors
    ///
    /// Propagates forward/backward and optimizer errors.
    pub fn train_local(&mut self) -> Result<f32> {
        let _span = self.telemetry.span("train");
        let loss_fn = CrossEntropyLoss;
        let mut total = 0.0f64;
        let mut batches = 0u32;
        for _ in 0..self.local_epochs {
            for indices in self.data.batch_indices(self.batch_size, &mut self.rng) {
                let batch = self.data.batch(&indices)?;
                let logits = self.model.forward(&batch.features, true)?;
                let (loss, grad) = loss_fn.loss_and_grad(&logits, &batch.labels)?;
                self.model.zero_grad();
                self.model.backward(&grad)?;
                self.optimizer.step(&mut self.model)?;
                total += loss as f64;
                batches += 1;
            }
        }
        Ok((total / batches.max(1) as f64) as f32)
    }

    /// Produces the upload for this round: snapshots the model parameters and
    /// runs the upload middleware chain (defense transforms) over them.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors.
    pub fn produce_update(&mut self) -> Result<ClientUpdate> {
        let _span = self.telemetry.span("upload");
        let mut params = self.model.params();
        for mw in &mut self.middleware {
            let _mw_span = if self.telemetry.is_enabled() {
                Some(self.telemetry.span(&format!("mw[{}]", mw.name())))
            } else {
                None
            };
            mw.transform_upload(self.id, &mut params)?;
        }
        Ok(ClientUpdate {
            client_id: self.id,
            params,
            num_samples: self.data.len(),
        })
    }

    /// Runs the client's complete round protocol against `global`:
    /// [`receive_global`](FlClient::receive_global) →
    /// [`train_local`](FlClient::train_local) →
    /// [`produce_update`](FlClient::produce_update). Returns the mean
    /// training loss and the produced update. Both the sequential fan-out
    /// and the threaded transport drive rounds through this single entry
    /// point, so the two engines cannot drift apart.
    ///
    /// # Errors
    ///
    /// Propagates middleware, training and shape errors.
    pub fn run_protocol(&mut self, global: &ModelParams) -> Result<(f32, ClientUpdate)> {
        self.receive_global(global)?;
        let loss = self.train_local()?;
        let update = self.produce_update()?;
        Ok((loss, update))
    }

    /// Exports the client's full mutable state — model parameters, RNG
    /// stream position, optimizer state and per-middleware state — for a
    /// resume image. The private data shard and static configuration are
    /// *not* part of the export; a resumed run rebuilds them from the same
    /// builder inputs.
    pub fn export_state(&self) -> ClientCkpt {
        ClientCkpt {
            id: self.id,
            params: self.model.params(),
            rng: self.rng.state(),
            optim: self.optimizer.export_state(),
            middleware: self.middleware.iter().map(|m| m.export_state()).collect(),
        }
    }

    /// Restores state captured by [`export_state`](FlClient::export_state)
    /// into this client. The client must have been rebuilt with the same
    /// id, architecture, optimizer and middleware stack.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] on an id or stack-shape mismatch
    /// and propagates parameter/optimizer/middleware restore errors.
    pub fn import_state(&mut self, state: ClientCkpt) -> Result<()> {
        if state.id != self.id {
            return Err(FlError::InvalidConfig {
                reason: format!("resume image is for client {}, not {}", state.id, self.id),
            });
        }
        if state.middleware.len() != self.middleware.len() {
            return Err(FlError::InvalidConfig {
                reason: format!(
                    "resume image has {} middleware state slot(s), client has {}",
                    state.middleware.len(),
                    self.middleware.len()
                ),
            });
        }
        self.model.set_params(&state.params)?;
        self.rng = Rng::from_state(state.rng);
        self.optimizer.import_state(state.optim)?;
        for (mw, st) in self.middleware.iter_mut().zip(state.middleware) {
            if let Some(st) = st {
                mw.import_state(st)?;
            }
        }
        Ok(())
    }

    /// Accuracy of the client's current model on a labelled dataset.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn evaluate(&mut self, dataset: &Dataset) -> Result<f32> {
        let batch = dataset.full_batch()?;
        Ok(self.model.accuracy(&batch.features, &batch.labels)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;
    use dinar_tensor::Tensor;

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut features = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.5)).unwrap();
            features.set(&[i, 1], rng.normal_with(c, 0.5)).unwrap();
            labels.push(class);
        }
        Dataset::new(features, labels, &[2], 2).unwrap()
    }

    fn make_client(id: usize) -> FlClient {
        let mut rng = Rng::seed_from(42);
        let model = models::mlp(&[2, 8, 2], Activation::ReLU, &mut rng).unwrap();
        FlClient::new(
            id,
            model,
            Box::new(Sgd::new(0.1)),
            blob_dataset(64, id as u64),
            rng.split(id as u64),
            2,
            16,
        )
        .unwrap()
    }

    #[test]
    fn local_training_learns() {
        let mut client = make_client(0);
        let first = client.train_local().unwrap();
        for _ in 0..5 {
            client.train_local().unwrap();
        }
        let last = client.train_local().unwrap();
        assert!(last < first * 0.5, "{first} -> {last}");
        let acc = client.evaluate(&blob_dataset(32, 99)).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn receive_global_installs_parameters() {
        let mut a = make_client(0);
        let mut b = make_client(1);
        a.train_local().unwrap();
        let params = a.model().params();
        b.receive_global(&params).unwrap();
        assert!(b.model().params().max_abs_diff(&params).unwrap() < 1e-7);
    }

    #[test]
    fn produce_update_carries_weight() {
        let mut client = make_client(3);
        let update = client.produce_update().unwrap();
        assert_eq!(update.client_id, 3);
        assert_eq!(update.num_samples, 64);
    }

    #[test]
    fn empty_shard_rejected() {
        let mut rng = Rng::seed_from(0);
        let model = models::mlp(&[2, 2], Activation::ReLU, &mut rng).unwrap();
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), vec![], &[2], 2).unwrap();
        assert!(matches!(
            FlClient::new(0, model, Box::new(Sgd::new(0.1)), empty, rng, 1, 8),
            Err(FlError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn middleware_chain_runs_in_order() {
        #[derive(Debug)]
        struct Tag(f32);
        impl ClientMiddleware for Tag {
            fn transform_upload(&mut self, _c: usize, p: &mut ModelParams) -> Result<()> {
                let v = self.0;
                p.map_inplace(move |x| x + v);
                Ok(())
            }
            fn name(&self) -> &'static str {
                "tag"
            }
        }
        let mut client = make_client(0);
        let base = client.model().params();
        client.push_middleware(Box::new(Tag(1.0)));
        client.push_middleware(Box::new(Tag(10.0)));
        let update = client.produce_update().unwrap();
        let diff = update.params.sub(&base).unwrap();
        assert!(diff.to_flat().iter().all(|&d| (d - 11.0).abs() < 1e-6));
    }
}

//! The sanctioned channel-wait helpers for the FL runtime.
//!
//! The original threaded transport collected round updates with a bare
//! blocking `mpsc` `recv()`, which only errors once **every** sender has
//! dropped — so a single dead client thread hung the server forever (the
//! documented "client thread died mid-round" path was unreachable). Lint
//! rule L008 now bans bare `recv()`/`recv_timeout()` throughout `dinar-fl`
//! outside this module; all waits go through [`DeadlineReceiver`], which
//!
//! * budgets the wait against an injectable [`Clock`] deadline (so
//!   [`ManualClock`](crate::clock::ManualClock) replay tests stay
//!   deterministic — a clock that never advances never expires a deadline),
//! * surfaces periodic [`Step::Tick`]s between messages so the caller can
//!   run liveness checks (e.g. "has a pending client's thread exited?")
//!   instead of blocking blindly,
//! * reports sender disconnection distinctly from deadline expiry.
//!
//! Client command loops, which legitimately block until the server speaks
//! or hangs up, use [`recv_blocking`].

use crate::clock::Clock;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// Real-time granularity of one poll slice: how often a waiting receiver
/// wakes to emit a [`Step::Tick`]. Liveness checks and (wall-clock)
/// deadline checks happen at this cadence; it bounds the *detection*
/// latency of a dead sender, not any result value, so it has no effect on
/// deterministic outputs.
const POLL_SLICE: Duration = Duration::from_millis(1);

/// Outcome of one bounded wait step on a [`DeadlineReceiver`].
#[derive(Debug)]
pub enum Step<T> {
    /// A message arrived.
    Msg(T),
    /// No message within one poll slice; run liveness checks and call
    /// [`DeadlineReceiver::step`] again.
    Tick,
    /// The clock passed the caller's deadline with no message.
    Expired,
    /// Every sender has dropped; no further message can arrive.
    Disconnected,
}

/// A receiver whose waits are budgeted by an injectable [`Clock`].
#[derive(Debug)]
pub struct DeadlineReceiver<'a, T> {
    rx: &'a Receiver<T>,
    clock: &'a dyn Clock,
}

impl<'a, T> DeadlineReceiver<'a, T> {
    /// Wraps `rx`, timing deadlines on `clock`.
    pub fn new(rx: &'a Receiver<T>, clock: &'a dyn Clock) -> Self {
        DeadlineReceiver { rx, clock }
    }

    /// Waits up to one poll slice for a message. `deadline` is an absolute
    /// instant on the clock's timeline (e.g. `round_start + budget`);
    /// `None` means no deadline. Pending messages are always drained before
    /// the deadline is consulted, so a message that raced the deadline is
    /// never lost.
    pub fn step(&self, deadline: Option<Duration>) -> Step<T> {
        // Drain without waiting first: a queued message beats both the
        // deadline check and the poll sleep.
        match self.rx.try_recv() {
            Ok(msg) => return Step::Msg(msg),
            Err(TryRecvError::Disconnected) => return Step::Disconnected,
            Err(TryRecvError::Empty) => {}
        }
        if let Some(d) = deadline {
            if self.clock.elapsed() >= d {
                return Step::Expired;
            }
        }
        match self.rx.recv_timeout(POLL_SLICE) {
            Ok(msg) => Step::Msg(msg),
            Err(RecvTimeoutError::Timeout) => Step::Tick,
            Err(RecvTimeoutError::Disconnected) => Step::Disconnected,
        }
    }
}

/// Blocks until a message arrives or every sender has dropped (`None`).
/// The sanctioned wait for client command loops, which have no deadline:
/// they serve rounds until the server hangs up.
pub fn recv_blocking<T>(rx: &Receiver<T>) -> Option<T> {
    rx.recv().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ManualClock, WallClock};
    use std::sync::mpsc::channel;

    #[test]
    fn queued_message_beats_expired_deadline() {
        let (tx, rx) = channel();
        let clock = ManualClock::new();
        clock.advance(Duration::from_secs(10));
        tx.send(7u32).unwrap();
        let drx = DeadlineReceiver::new(&rx, &clock);
        // Deadline long past, but the message is already queued.
        assert!(matches!(drx.step(Some(Duration::from_secs(1))), Step::Msg(7)));
        // Now the queue is empty: the deadline fires.
        assert!(matches!(drx.step(Some(Duration::from_secs(1))), Step::Expired));
    }

    #[test]
    fn manual_clock_never_expires_a_deadline() {
        let (_tx, rx) = channel::<u32>();
        let clock = ManualClock::new();
        let drx = DeadlineReceiver::new(&rx, &clock);
        // The clock sits at zero, so even a tiny deadline never expires;
        // the step degrades to a tick (after one real poll slice).
        assert!(matches!(drx.step(Some(Duration::from_nanos(1))), Step::Tick));
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        let clock = WallClock::new();
        let drx = DeadlineReceiver::new(&rx, &clock);
        assert!(matches!(drx.step(None), Step::Disconnected));
    }

    #[test]
    fn wall_clock_deadline_expires() {
        let (_tx, rx) = channel::<u32>();
        let clock = WallClock::new();
        let drx = DeadlineReceiver::new(&rx, &clock);
        // An already-elapsed deadline expires on the first empty step.
        assert!(matches!(drx.step(Some(Duration::ZERO)), Step::Expired));
    }

    #[test]
    fn recv_blocking_returns_message_then_none() {
        let (tx, rx) = channel();
        tx.send(1u8).unwrap();
        assert_eq!(recv_blocking(&rx), Some(1));
        drop(tx);
        assert_eq!(recv_blocking(&rx), None);
    }
}

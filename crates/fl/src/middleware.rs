//! Middleware hook points for privacy defenses.
//!
//! The paper frames DINAR as an FL *middleware* running at the client side
//! (Fig. 2): it intercepts the global model on its way in (personalization)
//! and the client model on its way out (obfuscation). The baseline defenses
//! fit the same two hook points — LDP/WDP/GC/SA transform uploads, CDP
//! transforms the server aggregate — so this module defines both traits and
//! the engine threads every exchanged parameter set through them.
//!
//! Middleware and fault tolerance compose cleanly: the threaded transport
//! drives each round through [`FlClient::run_protocol`](crate::FlClient::run_protocol),
//! so download/upload transforms run on the client's own thread and a
//! middleware error there surfaces as a fatal client failure (see
//! [`crate::fault`]) rather than poisoning the server loop.

use crate::Result;
use dinar_nn::{LayerParams, ModelParams};
use dinar_telemetry::Telemetry;
use dinar_tensor::RngState;

/// Snapshot of a stateful client middleware, captured for a mid-round
/// resume image (see [`crate::ckpt`]).
///
/// The two fields cover what the paper's defenses actually carry between
/// rounds: an RNG stream (obfuscation/noise randomness) and per-layer
/// stored parameters (DINAR's private layer(s) `θᵢᵖ*`). A middleware with
/// richer state can fold it into `stored` as extra layer entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiddlewareState {
    /// The middleware's RNG stream position, if it holds one.
    pub rng: Option<RngState>,
    /// Per-slot stored layer parameters (`None` for slots not yet filled).
    pub stored: Vec<Option<LayerParams>>,
}

/// Client-side hooks: transforms applied to downloaded and uploaded
/// parameter sets.
///
/// Middleware is stateful and per-client (e.g. DINAR stores the private
/// layer between rounds). Hooks run in registration order on upload and in
/// the same order on download.
pub trait ClientMiddleware: std::fmt::Debug + Send {
    /// Transforms the global parameters received from the server *before*
    /// they are installed into the client model.
    ///
    /// The default is the identity (install the global model as-is).
    ///
    /// # Errors
    ///
    /// Implementations return an error if the parameter structure is
    /// incompatible with their state.
    fn transform_download(&mut self, client_id: usize, params: &mut ModelParams) -> Result<()> {
        let _ = (client_id, params);
        Ok(())
    }

    /// Transforms the client parameters *after* local training, before they
    /// are uploaded to the server.
    ///
    /// The default is the identity (upload the trained model as-is).
    ///
    /// # Errors
    ///
    /// Implementations return an error if the parameter structure is
    /// incompatible with their state.
    fn transform_upload(&mut self, client_id: usize, params: &mut ModelParams) -> Result<()> {
        let _ = (client_id, params);
        Ok(())
    }

    /// Short middleware name for reports.
    fn name(&self) -> &'static str;

    /// Hands the middleware the telemetry sink of the system it serves,
    /// plus the id of the client it is attached to. Called by
    /// [`FlClient::set_telemetry`](crate::FlClient::set_telemetry) and on
    /// registration; stateless middleware can ignore it, defenses use it
    /// to charge the privacy ledger (lint rule L016).
    fn attach_telemetry(&mut self, telemetry: &Telemetry, client_id: usize) {
        let _ = (telemetry, client_id);
    }

    /// Exports the middleware's mutable state for a mid-round resume image,
    /// or `None` for stateless middleware (the default).
    fn export_state(&self) -> Option<MiddlewareState> {
        None
    }

    /// Restores state previously captured by
    /// [`export_state`](ClientMiddleware::export_state). Only called with
    /// a `Some` export, so the stateless default rejects: reaching it means
    /// a resume image was taken with a different middleware stack.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlError::Middleware`] if the state is incompatible.
    fn import_state(&mut self, state: MiddlewareState) -> Result<()> {
        let _ = state;
        Err(crate::FlError::Middleware {
            name: self.name(),
            reason: "middleware is stateless; resume image does not match this stack".into(),
        })
    }
}

/// Server-side hook: transforms the aggregated global model before it is
/// shared back with the clients (e.g. central differential privacy).
pub trait ServerMiddleware: std::fmt::Debug + Send {
    /// Transforms the freshly aggregated global parameters.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the parameter structure is
    /// incompatible with their state.
    fn transform_aggregate(&mut self, params: &mut ModelParams) -> Result<()>;

    /// Short middleware name for reports.
    fn name(&self) -> &'static str;

    /// Hands the middleware the telemetry sink of the system it serves.
    /// Called by [`FlServer::set_telemetry`](crate::FlServer::set_telemetry)
    /// and on registration; server defenses use it to charge the privacy
    /// ledger (lint rule L016).
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let _ = telemetry;
    }
}

/// The no-op middleware (the undefended FL baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct Passthrough;

impl ClientMiddleware for Passthrough {
    fn name(&self) -> &'static str {
        "passthrough"
    }
}

impl ServerMiddleware for Passthrough {
    fn transform_aggregate(&mut self, _params: &mut ModelParams) -> Result<()> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    #[test]
    fn passthrough_is_identity() {
        let mut mw = Passthrough;
        let mut params = ModelParams::new(vec![LayerParams::new(vec![Tensor::ones(&[3])])]);
        let before = params.clone();
        ClientMiddleware::transform_download(&mut mw, 0, &mut params).unwrap();
        ClientMiddleware::transform_upload(&mut mw, 0, &mut params).unwrap();
        ServerMiddleware::transform_aggregate(&mut mw, &mut params).unwrap();
        assert_eq!(params, before);
    }
}

//! Fault-tolerance policy for the threaded transport.
//!
//! The paper's cross-silo protocol (§2.1) assumes every selected client
//! returns an update each round; real deployments do not get that luxury.
//! This module defines how the threaded engine degrades when clients fail:
//!
//! * a per-round **deadline** ([`RoundPolicy::deadline`]) bounds how long
//!   the server waits for stragglers, budgeted by the injectable
//!   [`Clock`](crate::clock::Clock) so replay tests stay deterministic;
//! * a **quorum** ([`Quorum`]) decides whether the updates that *did*
//!   arrive are enough to aggregate — FedAvg is sample-weighted, so a
//!   partial aggregate renormalizes gracefully over the arrived subset;
//! * a **retry policy** ([`RetryPolicy`]) re-dispatches transiently failed
//!   clients a bounded number of times, extending the round deadline by a
//!   backoff per retry;
//! * a **fault plan** ([`FaultPlan`], shared with `dinar-consensus`)
//!   injects deterministic crash / drop / delay / stall / fail-then-recover
//!   faults so every failure path is testable bit-for-bit.
//!
//! The default policy ([`RoundPolicy::default`]) is the faithful §2.1
//! protocol: no deadline, full quorum, no retries, no faults — with the one
//! crucial difference that a dead client now surfaces as
//! [`FlError::ClientFailure`](crate::FlError::ClientFailure) instead of
//! hanging the server forever.

pub use dinar_consensus::fault::{FaultKind, FaultPlan};
use std::time::Duration;

/// Minimum number of client updates a round must collect to aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quorum {
    /// Every client must report (the paper's full-participation protocol).
    All,
    /// At least this many updates (clamped to ≥ 1).
    AtLeast(usize),
    /// At least `⌈fraction · clients⌉` updates (clamped to `[1, clients]`).
    Fraction(f64),
}

impl Quorum {
    /// The number of updates required out of `clients` total.
    pub fn required(&self, clients: usize) -> usize {
        match *self {
            Quorum::All => clients,
            Quorum::AtLeast(q) => q.max(1),
            Quorum::Fraction(f) => {
                let need = (f.clamp(0.0, 1.0) * clients as f64).ceil();
                (need as usize).clamp(1, clients.max(1))
            }
        }
    }
}

impl Default for Quorum {
    fn default() -> Self {
        Quorum::All
    }
}

/// Bounded retry with deadline-extending backoff for transient client
/// failures.
///
/// When a client reports a transient failure, the server re-dispatches the
/// round to it up to `max_retries` times and extends the round deadline by
/// `backoff` per retry (the simulation's analogue of waiting out an
/// exponential backoff — the collection loop keeps serving other clients
/// instead of sleeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Maximum retry attempts per client per round (0 = fail fast).
    pub max_retries: u32,
    /// Deadline extension granted per retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy of `max_retries` immediate retries (zero backoff).
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
        }
    }
}

/// The complete fault-tolerance configuration of a threaded run.
#[derive(Debug, Clone, Default)]
pub struct RoundPolicy {
    /// Per-round collection deadline, measured on the run's [`Clock`]
    /// from the round's first broadcast. `None` waits until every
    /// outstanding client is *accounted for* (update, fault notice, or
    /// detected death) — it never spins on a silent stall, which is why
    /// [`FaultKind::Stall`] plans require a deadline.
    ///
    /// [`Clock`]: crate::clock::Clock
    pub deadline: Option<Duration>,
    /// Minimum updates required to aggregate the round.
    pub quorum: Quorum,
    /// Retry policy for transient client failures.
    pub retry: RetryPolicy,
    /// Injected fault schedule (empty = healthy run).
    pub faults: FaultPlan,
}

impl RoundPolicy {
    /// The strict full-participation policy (no deadline, full quorum,
    /// no retries, no faults) — behaviourally identical to the sequential
    /// engine on a healthy system.
    pub fn strict() -> Self {
        RoundPolicy::default()
    }

    /// A lenient policy: aggregate whatever arrived as long as `quorum`
    /// clients reported, with `deadline` bounding the wait.
    pub fn with_quorum(quorum: Quorum, deadline: Option<Duration>) -> Self {
        RoundPolicy {
            deadline,
            quorum,
            ..RoundPolicy::default()
        }
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Per-round fault accounting reported by the resilient transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundFaultStats {
    /// Round number (1-based, absolute).
    pub round: usize,
    /// Updates actually aggregated this round.
    pub participants: usize,
    /// Clients that contributed nothing this round (crashed, dropped,
    /// delayed, stalled past the deadline, or exhausted their retries).
    pub clients_dropped: usize,
    /// Retry dispatches issued for transient failures.
    pub clients_retried: usize,
    /// Stale (wrong-round) updates discarded by the tag check.
    pub stale_discarded: usize,
    /// Whether the collection deadline expired with clients outstanding.
    pub deadline_expired: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_required_math() {
        assert_eq!(Quorum::All.required(5), 5);
        assert_eq!(Quorum::AtLeast(3).required(5), 3);
        assert_eq!(Quorum::AtLeast(0).required(5), 1);
        assert_eq!(Quorum::Fraction(0.5).required(5), 3); // ceil(2.5)
        assert_eq!(Quorum::Fraction(0.0).required(5), 1);
        assert_eq!(Quorum::Fraction(1.0).required(5), 5);
        assert_eq!(Quorum::Fraction(2.0).required(5), 5); // clamped
    }

    #[test]
    fn default_policy_is_strict_full_participation() {
        let p = RoundPolicy::default();
        assert_eq!(p.deadline, None);
        assert_eq!(p.quorum, Quorum::All);
        assert_eq!(p.retry.max_retries, 0);
        assert!(p.faults.is_empty());
    }

    #[test]
    fn builders_compose() {
        let p = RoundPolicy::with_quorum(Quorum::AtLeast(2), Some(Duration::from_secs(1)))
            .with_retry(RetryPolicy::retries(3))
            .with_faults(FaultPlan::new().crash(0, 1));
        assert_eq!(p.quorum, Quorum::AtLeast(2));
        assert_eq!(p.deadline, Some(Duration::from_secs(1)));
        assert_eq!(p.retry.max_retries, 3);
        assert_eq!(p.faults.len(), 1);
    }
}

//! Injectable time sources for the FL runtime.
//!
//! The [`Clock`] abstraction moved to `dinar-telemetry` so the span layer
//! and the FL runtime share one time source; this module re-exports it for
//! source compatibility (`dinar_fl::clock::ManualClock` keeps working).
//! See `dinar_telemetry::clock` for the determinism rationale.

pub use dinar_telemetry::clock::{Clock, ManualClock, WallClock};

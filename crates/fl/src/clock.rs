//! Injectable time sources for the FL runtime.
//!
//! The [`Clock`] abstraction moved to `dinar-telemetry` so the span layer
//! and the FL runtime share one time source; this module re-exports it for
//! source compatibility (`dinar_fl::clock::ManualClock` keeps working).
//! See `dinar_telemetry::clock` for the determinism rationale.
//!
//! The threaded transport also budgets its **round deadlines** on this
//! clock (see [`crate::deadline`]): under a [`ManualClock`], whose
//! `elapsed()` never advances on its own, a deadline never expires — which
//! is exactly what replay tests need, because every client is then
//! accounted for through explicit messages or liveness checks rather than
//! timing.

pub use dinar_telemetry::clock::{Clock, ManualClock, WallClock};

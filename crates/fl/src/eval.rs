//! Evaluation helpers over parameter sets.
//!
//! Attacks and experiment harnesses evaluate *parameter sets* (the global
//! model, an intercepted client upload) rather than live models. These
//! helpers install a parameter set into a caller-provided template model —
//! an architecture-matched [`Model`] instance — and compute accuracies,
//! per-sample losses and confidence vectors from it.

use crate::Result;
use dinar_data::Dataset;
use dinar_metrics::confusion::ConfusionMatrix;
use dinar_nn::loss::{softmax_rows, CrossEntropyLoss};
use dinar_nn::{Model, ModelParams};
use dinar_tensor::Tensor;

/// Accuracy of `params` (installed into `template`) on a dataset.
///
/// # Errors
///
/// Propagates shape and forward-pass errors.
pub fn accuracy_of_params(
    params: &ModelParams,
    template: &mut Model,
    dataset: &Dataset,
) -> Result<f32> {
    template.set_params(params)?;
    let batch = dataset.full_batch()?;
    Ok(template.accuracy(&batch.features, &batch.labels)?)
}

/// Per-sample cross-entropy losses of `params` on a dataset (inference
/// mode) — the raw material of the loss-threshold MIA and Fig. 3.
///
/// # Errors
///
/// Propagates shape and forward-pass errors.
pub fn losses_of_params(
    params: &ModelParams,
    template: &mut Model,
    dataset: &Dataset,
) -> Result<Vec<f32>> {
    template.set_params(params)?;
    let batch = dataset.full_batch()?;
    let logits = template.forward(&batch.features, false)?;
    Ok(CrossEntropyLoss.per_sample(&logits, &batch.labels)?)
}

/// Softmax confidence vectors (`[n, classes]`) of `params` on a dataset —
/// the feature space of the shadow-model MIA.
///
/// # Errors
///
/// Propagates shape and forward-pass errors.
pub fn confidences_of_params(
    params: &ModelParams,
    template: &mut Model,
    dataset: &Dataset,
) -> Result<Tensor> {
    template.set_params(params)?;
    let batch = dataset.full_batch()?;
    let logits = template.forward(&batch.features, false)?;
    Ok(softmax_rows(&logits)?)
}

/// Confusion matrix of `params` on a dataset (inference mode) — per-class
/// accuracy for the non-IID analyses.
///
/// # Errors
///
/// Propagates shape and forward-pass errors.
pub fn confusion_of_params(
    params: &ModelParams,
    template: &mut Model,
    dataset: &Dataset,
) -> Result<ConfusionMatrix> {
    template.set_params(params)?;
    let batch = dataset.full_batch()?;
    let predicted = template.predict(&batch.features)?;
    Ok(ConfusionMatrix::from_pairs(
        &batch.labels,
        &predicted,
        dataset.num_classes(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::models::{self, Activation};
    use dinar_tensor::Rng;

    fn toy() -> (ModelParams, Model, Dataset) {
        let mut rng = Rng::seed_from(0);
        let model = models::mlp(&[3, 6, 2], Activation::ReLU, &mut rng).unwrap();
        let params = model.params();
        let mut template = models::mlp(&[3, 6, 2], Activation::ReLU, &mut rng).unwrap();
        template.set_params(&params).unwrap();
        let features = rng.randn(&[10, 3]);
        let labels = (0..10).map(|i| i % 2).collect();
        let ds = Dataset::new(features, labels, &[3], 2).unwrap();
        (params, template, ds)
    }

    #[test]
    fn losses_and_confidences_are_consistent() {
        let (params, mut template, ds) = toy();
        let losses = losses_of_params(&params, &mut template, &ds).unwrap();
        let confs = confidences_of_params(&params, &mut template, &ds).unwrap();
        assert_eq!(losses.len(), 10);
        assert_eq!(confs.shape(), &[10, 2]);
        // loss_i == -ln(conf_i[label_i])
        for i in 0..10 {
            let p = confs.get(&[i, ds.labels()[i]]).unwrap();
            assert!((losses[i] + p.max(1e-12).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn accuracy_in_unit_range() {
        let (params, mut template, ds) = toy();
        let acc = accuracy_of_params(&params, &mut template, &ds).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn confusion_matches_accuracy() {
        let (params, mut template, ds) = toy();
        let acc = accuracy_of_params(&params, &mut template, &ds).unwrap();
        let matrix = confusion_of_params(&params, &mut template, &ds).unwrap();
        assert_eq!(matrix.total(), ds.len() as u64);
        assert!((matrix.accuracy() - acc as f64).abs() < 1e-6);
    }
}

//! Structured tracing of FL protocol events.
//!
//! A deployed FL middleware needs observability: which client trained when,
//! what the middleware transformed, how long aggregation took. This module
//! provides a lightweight, allocation-friendly event log —
//! [`TraceSink`] collects [`FlEvent`]s with monotonic timestamps, and
//! [`TraceSummary`] rolls them up per client and per round for reports.
//!
//! The sink is `Sync` (mutex-protected) so the threaded transport's client
//! threads can share one collector.

use crate::clock::{Clock, WallClock};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum FlEvent {
    /// A round began on the server.
    RoundStarted {
        /// Round number (1-based).
        round: usize,
    },
    /// A client finished local training.
    ClientTrained {
        /// Client id.
        client: usize,
        /// Round number.
        round: usize,
        /// Mean training loss.
        loss: f32,
    },
    /// A middleware transformed a download or upload.
    MiddlewareApplied {
        /// Client id (`usize::MAX` for server middleware).
        client: usize,
        /// Middleware name.
        name: &'static str,
        /// `true` for upload transforms, `false` for downloads.
        upload: bool,
    },
    /// The server produced a new global model.
    Aggregated {
        /// Round number.
        round: usize,
        /// Number of updates aggregated.
        updates: usize,
    },
}

/// A timestamped event record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Microseconds since the sink was created.
    pub at_us: u64,
    /// The event.
    pub event: FlEvent,
}

/// Thread-safe event collector.
///
/// # Example
///
/// ```
/// use dinar_fl::trace::{FlEvent, TraceSink};
///
/// let sink = TraceSink::new();
/// sink.emit(FlEvent::RoundStarted { round: 1 });
/// assert_eq!(sink.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<Vec<TraceRecord>>>,
    clock: Arc<dyn Clock>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Creates an empty sink timed by the wall clock; timestamps are
    /// relative to this moment.
    pub fn new() -> Self {
        TraceSink::with_clock(Arc::new(WallClock::new()))
    }

    /// Creates an empty sink timed by an injected [`Clock`] — pair with
    /// [`ManualClock`](crate::clock::ManualClock) for replayable timestamps.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        TraceSink {
            inner: Arc::new(Mutex::new(Vec::new())),
            clock,
        }
    }

    /// Locks the record buffer, absorbing poison: a panicked emitter leaves
    /// a valid (if truncated) log, which is still worth reading.
    fn records_mut(&self) -> std::sync::MutexGuard<'_, Vec<TraceRecord>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an event with the current timestamp.
    pub fn emit(&self, event: FlEvent) {
        let at_us = u64::try_from(self.clock.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.records_mut().push(TraceRecord { at_us, event });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records_mut().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records_mut().is_empty()
    }

    /// Snapshot of all records in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records_mut().clone()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.records_mut().clear();
    }

    /// Rolls the log up into a summary.
    pub fn summary(&self) -> TraceSummary {
        let records = self.records();
        let mut rounds = 0usize;
        let mut client_events = std::collections::BTreeMap::<usize, usize>::new();
        let mut middleware_events = std::collections::BTreeMap::<&'static str, usize>::new();
        let mut total_loss = 0.0f64;
        let mut loss_count = 0usize;
        for r in &records {
            match &r.event {
                FlEvent::RoundStarted { round } => rounds = rounds.max(*round),
                FlEvent::ClientTrained { client, loss, .. } => {
                    *client_events.entry(*client).or_default() += 1;
                    total_loss += *loss as f64;
                    loss_count += 1;
                }
                FlEvent::MiddlewareApplied { name, .. } => {
                    *middleware_events.entry(name).or_default() += 1;
                }
                FlEvent::Aggregated { .. } => {}
            }
        }
        let span = records.last().map(|r| r.at_us).unwrap_or(0);
        TraceSummary {
            events: records.len(),
            rounds,
            trainings_per_client: client_events.into_iter().collect(),
            middleware_invocations: middleware_events
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            mean_train_loss: if loss_count == 0 {
                0.0
            } else {
                (total_loss / loss_count as f64) as f32
            },
            span: Duration::from_micros(span),
        }
    }
}

/// Aggregated view of a trace.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Total events recorded.
    pub events: usize,
    /// Highest round number observed.
    pub rounds: usize,
    /// `(client, trainings)` pairs, ordered by client id.
    pub trainings_per_client: Vec<(usize, usize)>,
    /// `(middleware, invocations)` pairs.
    pub middleware_invocations: Vec<(String, usize)>,
    /// Mean of all traced training losses.
    pub mean_train_loss: f32,
    /// Time between sink creation and the last event.
    pub span: Duration,
}

/// A [`ClientMiddleware`](crate::ClientMiddleware) decorator that traces
/// every transform of an inner middleware.
#[derive(Debug)]
pub struct Traced<M> {
    inner: M,
    sink: TraceSink,
    client: usize,
}

impl<M> Traced<M> {
    /// Wraps `inner`, reporting into `sink` as `client`.
    pub fn new(inner: M, sink: TraceSink, client: usize) -> Self {
        Traced {
            inner,
            sink,
            client,
        }
    }
}

impl<M: crate::ClientMiddleware> crate::ClientMiddleware for Traced<M> {
    fn transform_download(
        &mut self,
        client_id: usize,
        params: &mut dinar_nn::ModelParams,
    ) -> crate::Result<()> {
        self.sink.emit(FlEvent::MiddlewareApplied {
            client: self.client,
            name: self.inner.name(),
            upload: false,
        });
        self.inner.transform_download(client_id, params)
    }

    fn transform_upload(
        &mut self,
        client_id: usize,
        params: &mut dinar_nn::ModelParams,
    ) -> crate::Result<()> {
        self.sink.emit(FlEvent::MiddlewareApplied {
            client: self.client,
            name: self.inner.name(),
            upload: true,
        });
        self.inner.transform_upload(client_id, params)
    }

    fn name(&self) -> &'static str {
        // Surface the wrapped middleware's identity: a decorator that
        // renames everything to "traced" hides which defense ran in
        // summaries and span paths.
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::Passthrough;
    use crate::ClientMiddleware;
    use dinar_nn::{LayerParams, ModelParams};
    use dinar_tensor::Tensor;

    #[test]
    fn events_are_ordered_and_timestamped() {
        let sink = TraceSink::new();
        sink.emit(FlEvent::RoundStarted { round: 1 });
        sink.emit(FlEvent::ClientTrained {
            client: 0,
            round: 1,
            loss: 2.0,
        });
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert!(records[0].at_us <= records[1].at_us);
    }

    #[test]
    fn summary_rolls_up_per_client_and_middleware() {
        let sink = TraceSink::new();
        for round in 1..=3 {
            sink.emit(FlEvent::RoundStarted { round });
            for client in 0..2 {
                sink.emit(FlEvent::ClientTrained {
                    client,
                    round,
                    loss: 1.0,
                });
            }
            sink.emit(FlEvent::Aggregated { round, updates: 2 });
        }
        let summary = sink.summary();
        assert_eq!(summary.rounds, 3);
        assert_eq!(summary.trainings_per_client, vec![(0, 3), (1, 3)]);
        assert!((summary.mean_train_loss - 1.0).abs() < 1e-6);
    }

    #[test]
    fn traced_middleware_reports_both_directions() {
        let sink = TraceSink::new();
        let mut mw = Traced::new(Passthrough, sink.clone(), 7);
        let mut params = ModelParams::new(vec![LayerParams::new(vec![Tensor::ones(&[2])])]);
        mw.transform_download(7, &mut params).unwrap();
        mw.transform_upload(7, &mut params).unwrap();
        let summary = sink.summary();
        assert_eq!(summary.middleware_invocations, vec![("passthrough".to_string(), 2)]);
        let records = sink.records();
        assert!(matches!(
            records[0].event,
            FlEvent::MiddlewareApplied { upload: false, .. }
        ));
        assert!(matches!(
            records[1].event,
            FlEvent::MiddlewareApplied { upload: true, .. }
        ));
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = TraceSink::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = sink.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..25 {
                    s.emit(FlEvent::ClientTrained {
                        client: t,
                        round,
                        loss: 0.5,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.summary().trainings_per_client.len(), 4);
    }

    #[test]
    fn manual_clock_makes_timestamps_deterministic() {
        let clock = Arc::new(crate::clock::ManualClock::new());
        let sink = TraceSink::with_clock(clock.clone());
        sink.emit(FlEvent::RoundStarted { round: 1 });
        clock.advance(Duration::from_micros(1500));
        sink.emit(FlEvent::Aggregated { round: 1, updates: 2 });
        let records = sink.records();
        assert_eq!(records[0].at_us, 0);
        assert_eq!(records[1].at_us, 1500);
        assert_eq!(sink.summary().span, Duration::from_micros(1500));
    }

    #[test]
    fn clear_empties_the_log() {
        let sink = TraceSink::new();
        sink.emit(FlEvent::RoundStarted { round: 1 });
        assert!(!sink.is_empty());
        sink.clear();
        assert!(sink.is_empty());
    }
}

//! The FL server: FedAvg aggregation and server-side middleware.

use crate::{ClientUpdate, FlError, Result, ServerMiddleware};
use dinar_nn::ModelParams;
use dinar_telemetry::Telemetry;

/// The federated learning server.
///
/// Holds the current global model and aggregates client updates with
/// **FedAvg**: a weighted average where each client's weight is proportional
/// to its local sample count (§2.1). Server middleware (e.g. central DP)
/// transforms the aggregate before it becomes the new global model.
#[derive(Debug)]
pub struct FlServer {
    global: ModelParams,
    /// Last round's superseded global model, recycled as the accumulation
    /// buffer of the next [`FlServer::aggregate`] call so steady-state
    /// aggregation allocates nothing: peak memory stays O(model), never
    /// O(clients × model).
    scratch: Option<ModelParams>,
    middleware: Vec<Box<dyn ServerMiddleware>>,
    rounds_completed: usize,
    telemetry: Telemetry,
}

impl FlServer {
    /// Creates a server with the given initial global model.
    pub fn new(initial: ModelParams) -> Self {
        FlServer {
            global: initial,
            scratch: None,
            middleware: Vec::new(),
            rounds_completed: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink to the server's middleware stack, so
    /// server-side defenses (central DP) charge the sink's privacy ledger.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for mw in &mut self.middleware {
            mw.attach_telemetry(&telemetry);
        }
        self.telemetry = telemetry;
    }

    /// The current global model parameters.
    pub fn global_params(&self) -> &ModelParams {
        &self.global
    }

    /// Number of aggregation rounds completed.
    pub fn rounds_completed(&self) -> usize {
        self.rounds_completed
    }

    /// Appends a server middleware, handing it the server's current
    /// telemetry sink.
    pub fn push_middleware(&mut self, mw: Box<dyn ServerMiddleware>) {
        self.middleware.push(mw);
        if let Some(mw) = self.middleware.last_mut() {
            mw.attach_telemetry(&self.telemetry);
        }
    }

    /// Restores the server to a checkpointed position: installs `global`
    /// as the current model and sets the completed-round counter. The
    /// recycled aggregation scratch is dropped — its content never affects
    /// results (it is zero-filled before reuse), so a resumed run stays
    /// bit-identical to an uninterrupted one.
    pub fn restore_state(&mut self, global: ModelParams, rounds_completed: usize) {
        self.global = global;
        self.scratch = None;
        self.rounds_completed = rounds_completed;
    }

    /// FedAvg-aggregates the client updates into a new global model and runs
    /// the server middleware chain over it.
    ///
    /// The weights normalize over the updates *presented*, not over the full
    /// client population — so a quorum round that lost some clients (see
    /// [`transport::run_threaded_resilient`](crate::transport::run_threaded_resilient))
    /// renormalizes gracefully over the arrived subset, exactly as FedAvg
    /// with partial participation prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoUpdates`] for an empty update set, or shape
    /// errors if a client uploaded an incompatible architecture.
    pub fn aggregate(&mut self, updates: &[ClientUpdate]) -> Result<&ModelParams> {
        if updates.is_empty() {
            return Err(FlError::NoUpdates);
        }
        let total: usize = updates.iter().map(|u| u.num_samples).sum();
        if total == 0 {
            return Err(FlError::InvalidConfig {
                reason: "all client updates report zero samples".into(),
            });
        }
        // Accumulate into last round's recycled global when its architecture
        // still matches; zero-filling never copies the superseded data.
        let mut aggregate = match self.scratch.take() {
            Some(mut s) if s.same_shape(&updates[0].params) => {
                s.zero_fill();
                s
            }
            _ => updates[0].params.zeros_like(),
        };
        for update in updates {
            let weight = update.num_samples as f32 / total as f32;
            aggregate.scaled_add_assign(weight, &update.params)?;
        }
        for mw in &mut self.middleware {
            mw.transform_aggregate(&mut aggregate)?;
        }
        self.scratch = Some(std::mem::replace(&mut self.global, aggregate));
        self.rounds_completed += 1;
        Ok(&self.global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[4], value)])])
    }

    fn update(id: usize, value: f32, n: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            params: params(value),
            num_samples: n,
        }
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let mut server = FlServer::new(params(0.0));
        // 1*100 + 5*300 over 400 samples = 4.0
        server
            .aggregate(&[update(0, 1.0, 100), update(1, 5.0, 300)])
            .unwrap();
        let g = server.global_params();
        assert!(g.layers[0].tensors[0]
            .as_slice()
            .iter()
            .all(|&x| (x - 4.0).abs() < 1e-6));
        assert_eq!(server.rounds_completed(), 1);
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let mut server = FlServer::new(params(0.0));
        server
            .aggregate(&[update(0, 2.0, 50), update(1, 4.0, 50)])
            .unwrap();
        assert!((server.global_params().layers[0].tensors[0].as_slice()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn partial_participation_renormalizes_over_arrived_subset() {
        // Three clients exist, but only two report (a quorum round). The
        // weights must renormalize over the arrived 100 + 300 samples — the
        // absent client's 600 samples play no part.
        let mut server = FlServer::new(params(0.0));
        server
            .aggregate(&[update(0, 1.0, 100), update(2, 5.0, 300)])
            .unwrap();
        let g = server.global_params().layers[0].tensors[0].as_slice()[0];
        assert!((g - 4.0).abs() < 1e-6, "partial FedAvg got {g}");
    }

    #[test]
    fn empty_updates_rejected() {
        let mut server = FlServer::new(params(0.0));
        assert!(matches!(server.aggregate(&[]), Err(FlError::NoUpdates)));
    }

    #[test]
    fn zero_total_samples_rejected() {
        let mut server = FlServer::new(params(0.0));
        assert!(server.aggregate(&[update(0, 1.0, 0)]).is_err());
    }

    #[test]
    fn server_middleware_transforms_aggregate() {
        #[derive(Debug)]
        struct AddOne;
        impl ServerMiddleware for AddOne {
            fn transform_aggregate(&mut self, p: &mut ModelParams) -> Result<()> {
                p.map_inplace(|x| x + 1.0);
                Ok(())
            }
            fn name(&self) -> &'static str {
                "add_one"
            }
        }
        let mut server = FlServer::new(params(0.0));
        server.push_middleware(Box::new(AddOne));
        server.aggregate(&[update(0, 2.0, 10)]).unwrap();
        assert!((server.global_params().layers[0].tensors[0].as_slice()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_architectures_rejected() {
        let mut server = FlServer::new(params(0.0));
        let bad = ClientUpdate {
            client_id: 1,
            params: ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[5], 1.0)])]),
            num_samples: 10,
        };
        assert!(server.aggregate(&[update(0, 1.0, 10), bad]).is_err());
    }
}

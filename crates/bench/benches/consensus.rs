//! Cost of the DINAR initialization vote: a full threaded broadcast round
//! across N nodes, with and without Byzantine participants. Runs on the
//! in-repo std-only harness (`dinar_bench::timing`).

use dinar_bench::timing::{bench, Config};
use dinar_consensus::network::{simulate_vote, NodeBehavior, SimConfig};
use std::hint::black_box;

fn main() {
    let config = Config::heavy();
    for &n in &[5usize, 10, 30] {
        let behaviors = vec![NodeBehavior::Honest { proposal: 4 }; n];
        bench(&format!("broadcast_vote/honest/{n}"), &config, || {
            black_box(
                simulate_vote(
                    &behaviors,
                    &SimConfig {
                        num_choices: 10,
                        seed: 1,
                    },
                )
                .unwrap(),
            )
        });

        let mut mixed = vec![NodeBehavior::Honest { proposal: 4 }; n - n / 3];
        mixed.extend(vec![NodeBehavior::byzantine_random(); n / 3]);
        bench(&format!("broadcast_vote/byzantine_third/{n}"), &config, || {
            black_box(
                simulate_vote(
                    &mixed,
                    &SimConfig {
                        num_choices: 10,
                        seed: 2,
                    },
                )
                .unwrap(),
            )
        });
    }
}

//! Cost of the DINAR initialization vote: a full threaded broadcast round
//! across N nodes, with and without Byzantine participants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinar_consensus::network::{simulate_vote, NodeBehavior, SimConfig};
use std::hint::black_box;

fn bench_vote(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_vote");
    group.sample_size(10);
    for &n in &[5usize, 10, 30] {
        group.bench_with_input(BenchmarkId::new("honest", n), &n, |b, &n| {
            let behaviors = vec![NodeBehavior::Honest { proposal: 4 }; n];
            b.iter(|| {
                black_box(
                    simulate_vote(
                        &behaviors,
                        &SimConfig {
                            num_choices: 10,
                            seed: 1,
                        },
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("byzantine_third", n), &n, |b, &n| {
            let mut behaviors = vec![NodeBehavior::Honest { proposal: 4 }; n - n / 3];
            behaviors.extend(vec![NodeBehavior::byzantine_random(); n / 3]);
            b.iter(|| {
                black_box(
                    simulate_vote(
                        &behaviors,
                        &SimConfig {
                            num_choices: 10,
                            seed: 2,
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vote
}
criterion_main!(benches);

//! Micro-benchmarks of the tensor substrate: the hot kernels every FL round
//! is built from. Runs on the in-repo std-only harness (`dinar_bench::timing`).

use dinar_bench::timing::{bench, bench_batched, Config};
use dinar_tensor::conv::{im2col2d, Conv2dGeom};
use dinar_tensor::Rng;
use std::hint::black_box;

fn bench_matmul(config: &Config) {
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = rng.randn(&[n, n]);
        let b = rng.randn(&[n, n]);
        bench(&format!("matmul/{n}"), config, || {
            black_box(a.matmul(&b).unwrap())
        });
    }
}

fn bench_matmul_t(config: &Config) {
    let mut rng = Rng::seed_from(1);
    let a = rng.randn(&[64, 128]);
    let b = rng.randn(&[96, 128]);
    bench("matmul_t_64x128x96", config, || {
        black_box(a.matmul_t(&b).unwrap())
    });
}

fn bench_im2col(config: &Config) {
    let mut rng = Rng::seed_from(2);
    let x = rng.randn(&[8, 8, 16, 16]);
    let geom = Conv2dGeom {
        channels: 8,
        height: 16,
        width: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    bench("im2col2d_8x8x16x16_k3", config, || {
        black_box(im2col2d(&x, &geom).unwrap())
    });
}

fn bench_elementwise(config: &Config) {
    let mut rng = Rng::seed_from(3);
    let a = rng.randn(&[100_000]);
    let b = rng.randn(&[100_000]);
    bench_batched(
        "scaled_add_assign_100k",
        config,
        || a.clone(),
        |mut t| {
            t.scaled_add_assign(0.5, &b).unwrap();
            black_box(t)
        },
    );
}

fn bench_rng(config: &Config) {
    let mut rng = Rng::seed_from(4);
    bench("randn_100k", config, || black_box(rng.randn(&[100_000])));
}

fn main() {
    let config = Config::default();
    bench_matmul(&config);
    bench_matmul_t(&config);
    bench_im2col(&config);
    bench_elementwise(&Config::heavy());
    bench_rng(&config);
}

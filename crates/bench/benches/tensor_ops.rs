//! Micro-benchmarks of the tensor substrate: the hot kernels every FL round
//! is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinar_tensor::conv::{im2col2d, Conv2dGeom};
use dinar_tensor::Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = rng.randn(&[n, n]);
        let b = rng.randn(&[n, n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_matmul_t(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let a = rng.randn(&[64, 128]);
    let b = rng.randn(&[96, 128]);
    c.bench_function("matmul_t_64x128x96", |bench| {
        bench.iter(|| black_box(a.matmul_t(&b).unwrap()));
    });
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = rng.randn(&[8, 8, 16, 16]);
    let geom = Conv2dGeom {
        channels: 8,
        height: 16,
        width: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    c.bench_function("im2col2d_8x8x16x16_k3", |bench| {
        bench.iter(|| black_box(im2col2d(&x, &geom).unwrap()));
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let a = rng.randn(&[100_000]);
    let b = rng.randn(&[100_000]);
    c.bench_function("scaled_add_assign_100k", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut t| {
                t.scaled_add_assign(0.5, &b).unwrap();
                black_box(t)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("randn_100k", |bench| {
        let mut rng = Rng::seed_from(4);
        bench.iter(|| black_box(rng.randn(&[100_000])));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_matmul_t, bench_im2col, bench_elementwise, bench_rng
}
criterion_main!(benches);

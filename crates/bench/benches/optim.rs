//! Optimizer step costs (the Fig. 11 ablation's runtime side): one
//! full forward/backward/step cycle per optimizer on the Purchase100 FCNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models::{self};
use dinar_nn::optim::{self};
use dinar_tensor::Rng;
use std::hint::black_box;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_fcnn6");
    group.sample_size(20);
    for name in ["sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            let mut rng = Rng::seed_from(0);
            let mut model = models::fcnn6(600, 100, 64, &mut rng).unwrap();
            let mut opt = optim::by_name(name, 0.01).unwrap();
            let x = rng.rand_uniform(&[64, 600], 0.0, 1.0);
            let labels: Vec<usize> = (0..64).map(|i| i % 100).collect();
            b.iter(|| {
                let logits = model.forward(&x, true).unwrap();
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
                model.zero_grad();
                model.backward(&grad).unwrap();
                opt.step(&mut model).unwrap();
                black_box(());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_step
}
criterion_main!(benches);

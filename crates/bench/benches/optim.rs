//! Optimizer step costs (the Fig. 11 ablation's runtime side): one
//! full forward/backward/step cycle per optimizer on the Purchase100 FCNN.
//! Runs on the in-repo std-only harness (`dinar_bench::timing`).

use dinar_bench::timing::{bench, Config};
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models::{self};
use dinar_nn::optim::{self};
use dinar_tensor::Rng;
use std::hint::black_box;

fn main() {
    let config = Config::heavy();
    for name in ["sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"] {
        let mut rng = Rng::seed_from(0);
        let mut model = models::fcnn6(600, 100, 64, &mut rng).unwrap();
        let mut opt = optim::by_name(name, 0.01).unwrap();
        let x = rng.rand_uniform(&[64, 600], 0.0, 1.0);
        let labels: Vec<usize> = (0..64).map(|i| i % 100).collect();
        bench(&format!("train_step_fcnn6/{name}"), &config, || {
            let logits = model.forward(&x, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
            black_box(())
        });
    }
}

//! Attack-side costs: shadow-model fitting (one-time) and per-model scoring
//! (per attacked upload). Runs on the in-repo std-only harness
//! (`dinar_bench::timing`).

use dinar_attacks::shadow::{ShadowAttack, ShadowConfig};
use dinar_attacks::threshold::LossThresholdAttack;
use dinar_attacks::MembershipAttack;
use dinar_bench::timing::{bench, Config};
use dinar_data::catalog::{self, Profile};
use dinar_data::split::attack_split;
use dinar_nn::{models, Model};
use dinar_tensor::Rng;
use std::hint::black_box;

fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
    models::fcnn6(600, 100, 48, rng)
}

fn bench_shadow_fit(config: &Config) {
    let mut rng = Rng::seed_from(0);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    let attacker = split
        .attacker
        .subset(&(0..240).collect::<Vec<_>>())
        .unwrap();
    bench("shadow_fit_3x10epochs", config, || {
        let mut attack = ShadowAttack::new(ShadowConfig {
            num_shadows: 3,
            shadow_epochs: 10,
            attack_epochs: 20,
            ..ShadowConfig::default()
        });
        attack.fit(&attacker, arch).unwrap();
        black_box(attack)
    });
}

fn bench_scoring(config: &Config) {
    let mut rng = Rng::seed_from(1);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    let samples = split.test.subset(&(0..200).collect::<Vec<_>>()).unwrap();
    let model = arch(&mut rng).unwrap();
    let params = model.params();
    let mut template = arch(&mut rng).unwrap();

    let mut attack = LossThresholdAttack;
    bench("loss_threshold_score_200", config, || {
        black_box(attack.score(&params, &mut template, &samples).unwrap())
    });

    let mut shadow = ShadowAttack::new(ShadowConfig {
        num_shadows: 2,
        shadow_epochs: 5,
        attack_epochs: 10,
        ..ShadowConfig::default()
    });
    shadow
        .fit(
            &split.attacker.subset(&(0..160).collect::<Vec<_>>()).unwrap(),
            arch,
        )
        .unwrap();
    bench("shadow_score_200", config, || {
        black_box(shadow.score(&params, &mut template, &samples).unwrap())
    });
}

fn main() {
    let config = Config::heavy();
    bench_shadow_fit(&config);
    bench_scoring(&config);
}

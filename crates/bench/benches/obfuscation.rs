//! Ablation bench: cost of DINAR's per-round transforms (obfuscation
//! strategies × personalization restore) on a VGG11-mini parameter set —
//! the "DINAR adds no overhead" claim of Table 3 quantified in isolation.
//! Runs on the in-repo std-only harness (`dinar_bench::timing`).

use dinar::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use dinar_bench::timing::{bench_batched, Config};
use dinar_nn::models;
use dinar_tensor::Rng;
use std::hint::black_box;

fn bench_obfuscation_strategies(config: &Config) {
    let mut rng = Rng::seed_from(0);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    let penultimate = params.num_layers() - 2;

    for (name, strategy) in [
        ("random", ObfuscationStrategy::Random),
        ("zeros", ObfuscationStrategy::Zeros),
        ("gaussian", ObfuscationStrategy::Gaussian),
    ] {
        let mut obf_rng = Rng::seed_from(1);
        bench_batched(
            &format!("obfuscate_penultimate/{name}"),
            config,
            || params.clone(),
            |mut p| {
                black_box(obfuscate_layer(&mut p, penultimate, strategy, &mut obf_rng).unwrap());
                p
            },
        );
    }
}

fn bench_personalization_restore(config: &Config) {
    let mut rng = Rng::seed_from(2);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    let stored = params.layers[params.num_layers() - 2].clone();
    bench_batched(
        "personalization_restore",
        config,
        || params.clone(),
        |mut p| {
            let idx = p.num_layers() - 2;
            p.layers[idx] = stored.clone();
            black_box(p)
        },
    );
}

fn bench_whole_model_noise_for_contrast(config: &Config) {
    // What the DP defenses pay instead: noising EVERY parameter.
    let mut rng = Rng::seed_from(3);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    let mut noise_rng = Rng::seed_from(4);
    bench_batched(
        "full_model_gaussian_noise",
        config,
        || params.clone(),
        |mut p| {
            dinar_defenses::dp::add_gaussian_noise(&mut p, 0.01, &mut noise_rng);
            black_box(p)
        },
    );
}

fn main() {
    let config = Config {
        samples: 20,
        ..Config::heavy()
    };
    bench_obfuscation_strategies(&config);
    bench_personalization_restore(&config);
    bench_whole_model_noise_for_contrast(&config);
}

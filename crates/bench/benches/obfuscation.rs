//! Ablation bench: cost of DINAR's per-round transforms (obfuscation
//! strategies × personalization restore) on a VGG11-mini parameter set —
//! the "DINAR adds no overhead" claim of Table 3 quantified in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dinar::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use dinar_nn::models;
use dinar_tensor::Rng;
use std::hint::black_box;

fn bench_obfuscation_strategies(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    let penultimate = params.num_layers() - 2;

    let mut group = c.benchmark_group("obfuscate_penultimate");
    for (name, strategy) in [
        ("random", ObfuscationStrategy::Random),
        ("zeros", ObfuscationStrategy::Zeros),
        ("gaussian", ObfuscationStrategy::Gaussian),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            let mut obf_rng = Rng::seed_from(1);
            b.iter_batched(
                || params.clone(),
                |mut p| {
                    black_box(obfuscate_layer(&mut p, penultimate, s, &mut obf_rng).unwrap());
                    p
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_personalization_restore(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    let stored = params.layers[params.num_layers() - 2].clone();
    c.bench_function("personalization_restore", |b| {
        b.iter_batched(
            || params.clone(),
            |mut p| {
                let idx = p.num_layers() - 2;
                p.layers[idx] = stored.clone();
                black_box(p)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_whole_model_noise_for_contrast(c: &mut Criterion) {
    // What the DP defenses pay instead: noising EVERY parameter.
    let mut rng = Rng::seed_from(3);
    let model = models::vgg11_mini(3, 43, &mut rng).unwrap();
    let params = model.params();
    c.bench_function("full_model_gaussian_noise", |b| {
        let mut noise_rng = Rng::seed_from(4);
        b.iter_batched(
            || params.clone(),
            |mut p| {
                dinar_defenses::dp::add_gaussian_noise(&mut p, 0.01, &mut noise_rng);
                black_box(p)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_obfuscation_strategies, bench_personalization_restore, bench_whole_model_noise_for_contrast
}
criterion_main!(benches);

//! Bench counterpart of Table 3: the cost of one FL round per defense
//! configuration (client training + upload transform + aggregation),
//! measured on the GTSRB/VGG11-mini workload. Runs on the in-repo std-only
//! harness (`dinar_bench::timing`).
//!
//! The printed relative times are the overhead story: DINAR tracks the
//! undefended baseline; DP/GC/SA variants pay for their transforms.

use dinar::middleware::DinarMiddleware;
use dinar::DinarConfig;
use dinar_bench::timing::{bench_batched, Config};
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_data::Dataset;
use dinar_defenses::{
    DpOptimizer, DpParams, GradientCompression, SaGroup, SecureAggregation, WeakDp,
};
use dinar_fl::{ClientMiddleware, FlConfig, FlSystem};
use dinar_nn::{models, optim::Adagrad, Model};
use dinar_tensor::Rng;
use std::hint::black_box;
use std::sync::Arc;

fn shards() -> Vec<Dataset> {
    let mut rng = Rng::seed_from(55);
    let dataset = catalog::gtsrb(Profile::Mini).generate(&mut rng).unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    // Small shards: the bench measures per-round overhead ratios, not scale.
    let small = split
        .train
        .subset(&(0..160).collect::<Vec<_>>())
        .unwrap();
    partition_dataset(&small, 2, Distribution::Iid, &mut rng).unwrap()
}

fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
    models::vgg11_mini(3, 43, rng)
}

fn build(defense: &str, shards: Vec<Dataset>) -> FlSystem {
    let counts: Vec<usize> = shards.iter().map(Dataset::len).collect();
    let is_ldp = defense == "ldp";
    let mut builder = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 32,
        seed: 9,
    })
    .clients_from_shards(shards, arch, move |id| {
        if is_ldp {
            Box::new(
                DpOptimizer::new(
                    Box::new(dinar_nn::optim::Adam::new(1e-3)),
                    DpParams::paper_default(),
                    Rng::seed_from(id as u64),
                )
                .with_amortization_over(2),
            )
        } else {
            Box::new(Adagrad::new(0.05))
        }
    })
    .unwrap();
    builder = match defense {
        "wdp" => builder.with_client_middleware(|id| {
            vec![Box::new(WeakDp::paper_default(Rng::seed_from(id as u64)))
                as Box<dyn ClientMiddleware>]
        }),
        "gc" => builder.with_client_middleware(|_| {
            vec![Box::new(GradientCompression::new(0.1)) as Box<dyn ClientMiddleware>]
        }),
        "sa" => {
            let group = SaGroup::from_sample_counts(&counts, 3);
            builder.with_client_middleware(move |_| {
                vec![Box::new(SecureAggregation::new(Arc::clone(&group)))
                    as Box<dyn ClientMiddleware>]
            })
        }
        "dinar" => {
            let config = DinarConfig::default();
            builder.with_client_middleware(move |id| {
                vec![Box::new(DinarMiddleware::new(8, config, id as u64))
                    as Box<dyn ClientMiddleware>]
            })
        }
        _ => builder,
    };
    builder.build().unwrap()
}

fn main() {
    let config = Config::heavy();
    for defense in ["baseline", "wdp", "ldp", "gc", "sa", "dinar"] {
        bench_batched(
            &format!("fl_round_gtsrb/{defense}"),
            &config,
            || build(defense, shards()),
            |mut system| {
                black_box(system.run_round().unwrap());
                system
            },
        );
    }
}

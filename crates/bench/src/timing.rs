//! A minimal, std-only micro-benchmark harness (the workspace builds
//! hermetically, so the usual external harnesses are unavailable).
//!
//! The model mirrors the familiar sample/iteration split: a short warm-up,
//! then `samples` timed samples of `iters` iterations each, where `iters` is
//! auto-calibrated so one sample lasts roughly [`Config::target_sample`].
//! Results print as one aligned line per benchmark (median / mean / min per
//! iteration) and are returned for programmatic use.
//!
//! ```no_run
//! use dinar_bench::timing::{bench, Config};
//! bench("matmul_64", &Config::default(), || 2 + 2);
//! ```

use std::time::{Duration, Instant};

/// Sampling parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct Config {
    /// How long to run the routine untimed before sampling.
    pub warmup: Duration,
    /// Number of timed samples to collect.
    pub samples: usize,
    /// Target wall-time per sample; iterations per sample are calibrated
    /// so one sample lasts about this long.
    pub target_sample: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warmup: Duration::from_millis(200),
            samples: 20,
            target_sample: Duration::from_millis(50),
        }
    }
}

impl Config {
    /// A cheaper profile for expensive routines (few samples, one
    /// iteration each) — the analogue of `sample_size(10)` on heavyweight
    /// benches.
    pub fn heavy() -> Self {
        Config {
            warmup: Duration::from_millis(0),
            samples: 10,
            target_sample: Duration::from_millis(0),
        }
    }
}

/// Timing results for one benchmark: per-iteration nanoseconds per sample.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name as printed.
    pub name: String,
    /// Per-iteration time of each sample, in nanoseconds, sorted ascending.
    pub per_iter_ns: Vec<f64>,
    /// Iterations per sample used.
    pub iters: u32,
}

impl Measurement {
    /// Median per-iteration time in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        let n = self.per_iter_ns.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            self.per_iter_ns[n / 2]
        } else {
            (self.per_iter_ns[n / 2 - 1] + self.per_iter_ns[n / 2]) / 2.0
        }
    }

    /// Mean per-iteration time in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.per_iter_ns.is_empty() {
            return 0.0;
        }
        self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64
    }

    /// Fastest per-iteration time in nanoseconds.
    pub fn min_ns(&self) -> f64 {
        self.per_iter_ns.first().copied().unwrap_or(0.0)
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn print_line(m: &Measurement) {
    println!(
        "{:<44} median {:>12}   mean {:>12}   min {:>12}   ({} samples x {} iters)",
        m.name,
        fmt_ns(m.median_ns()),
        fmt_ns(m.mean_ns()),
        fmt_ns(m.min_ns()),
        m.per_iter_ns.len(),
        m.iters,
    );
}

/// Calibrates iterations per sample so one sample lasts about
/// `target_sample` (at least 1).
fn calibrate<T>(config: &Config, f: &mut impl FnMut() -> T) -> u32 {
    if config.target_sample.is_zero() {
        return 1;
    }
    let probe = Instant::now();
    std::hint::black_box(f());
    let once = probe.elapsed().max(Duration::from_nanos(1));
    let per_sample = config.target_sample.as_nanos() / once.as_nanos().max(1);
    per_sample.clamp(1, 1_000_000) as u32
}

/// Times `f` under `config` and prints one result line.
pub fn bench<T>(name: &str, config: &Config, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up: run untimed until the budget is spent.
    let start = Instant::now();
    while start.elapsed() < config.warmup {
        std::hint::black_box(f());
    }

    let iters = calibrate(config, &mut f);
    let mut per_iter_ns = Vec::with_capacity(config.samples);
    for _ in 0..config.samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        per_iter_ns.push(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let measurement = Measurement {
        name: name.to_string(),
        per_iter_ns,
        iters,
    };
    print_line(&measurement);
    measurement
}

/// Times `routine` on fresh input from `setup` each iteration; only the
/// routine is timed. One iteration per sample (the batched analogue of
/// `BatchSize::PerIteration`).
pub fn bench_batched<S, T>(
    name: &str,
    config: &Config,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Measurement {
    let mut per_iter_ns = Vec::with_capacity(config.samples);
    for _ in 0..config.samples.max(1) {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        per_iter_ns.push(t0.elapsed().as_nanos() as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let measurement = Measurement {
        name: name.to_string(),
        per_iter_ns,
        iters: 1,
    };
    print_line(&measurement);
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_requested_samples() {
        let config = Config {
            warmup: Duration::from_millis(0),
            samples: 5,
            target_sample: Duration::from_micros(100),
        };
        let m = bench("noop", &config, || 1 + 1);
        assert_eq!(m.per_iter_ns.len(), 5);
        assert!(m.iters >= 1);
        assert!(m.min_ns() <= m.median_ns() && m.median_ns() <= m.per_iter_ns[4]);
    }

    #[test]
    fn batched_times_only_the_routine() {
        let config = Config::heavy();
        let m = bench_batched(
            "batched-noop",
            &config,
            || vec![0u8; 16],
            |v| v.len(),
        );
        assert_eq!(m.per_iter_ns.len(), 10);
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn fmt_ns_picks_adaptive_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}

//! # dinar-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5). One binary per figure/table lives in `src/bin/`
//! (`fig1` … `fig11`, `table1` … `table3`); this library holds the shared
//! machinery:
//!
//! * [`harness`] — dataset → model mapping, FL-system assembly per defense,
//!   end-to-end runs producing (attack AUC global, attack AUC local, model
//!   utility, cost) tuples,
//! * [`report`] — terminal tables and JSON artifacts
//!   (written under `bench-results/`).
//!
//! Every experiment runs the paper's protocol: the dataset is split 50%
//! attacker / 40% train / 10% test (§5.1); the train pool is partitioned
//! across clients; the shadow-model MIA is fitted on the attacker split and
//! evaluated against both the global model and the per-client uploads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod tensor_suite;
pub mod timing;

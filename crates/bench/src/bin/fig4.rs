//! Fig. 4: fine-grained analysis on CelebA (a network with 8 convolutional
//! layers plus a dense head).
//!
//! (a) Per-layer member/non-member gradient divergence — how much each layer
//!     would let an attacker distinguish members.
//! (b) Attack AUC when obfuscating each single layer of a client upload,
//!     against both the naive shadow attack and the **adaptive repair
//!     attacker** (who re-trains the obfuscated layer on its own data before
//!     attacking). The paper's claim — obfuscating the most-leaking layer is
//!     sufficient, obfuscating other layers is not — shows up here in the
//!     repair column: only the layers that actually hold the membership
//!     evidence stay at ~50% after repair.

use dinar::obfuscation::{obfuscate_layer, ObfuscationStrategy};
use dinar::sensitivity::{layer_divergences, SensitivityConfig};
use dinar_attacks::evaluate_attack;
use dinar_attacks::repair::{RepairAttack, RepairConfig};
use dinar_attacks::threshold::LossThresholdAttack;
use dinar_bench::harness::{model_for, prepare, train_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_tensor::Rng;
use dinar_bench::impl_to_json;


struct Fig4Result {
    divergences: Vec<f64>,
    per_layer_naive_auc: Vec<f64>,
    per_layer_repair_auc: Vec<f64>,
    no_defense_auc: f64,
}

impl_to_json!(Fig4Result { divergences, per_layer_naive_auc, per_layer_repair_auc, no_defense_auc });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::celeba(Profile::Mini));
    let entry = spec.entry.clone();
    let env = prepare(spec)?;
    let mut rng = Rng::seed_from(env.spec.seed ^ 0xF14);
    let mut template = model_for(&entry, &mut rng)?;

    // Train an unprotected run; take client 0's upload as the attacked model.
    let mut run = train_defense(&env, &Defense::None)?;
    let upload = run.uploads[0].clone();
    let members = run.system.clients()[0].data().clone();
    let nonmembers = env.split.test.clone();

    // (a) Per-layer divergence of the trained client model.
    let client_model = run.system.clients_mut()[0].model_mut();
    let divergences = layer_divergences(
        client_model,
        &members,
        &nonmembers,
        &SensitivityConfig::default(),
        &mut rng,
    )?;
    println!("Fig. 4(a) — per-layer gradient divergence (CelebA, 8 conv + 2 dense):");
    for (i, d) in divergences.iter().enumerate() {
        println!("  layer {i:>2}: {d:.4} {}", "#".repeat((d * 120.0).round() as usize));
    }

    // Reference: attack on the unmodified upload.
    let baseline = evaluate_attack(
        &mut LossThresholdAttack,
        &upload,
        &mut template,
        &members,
        &nonmembers,
    )?;
    println!("\nFig. 4(b) — attack AUC after obfuscating each single layer");
    println!("(no obfuscation: {:.1}%)\n", baseline.auc * 100.0);
    println!("  layer | naive AUC | repair AUC");

    let attacker_data = env
        .split
        .attacker
        .subset(&(0..400.min(env.split.attacker.len())).collect::<Vec<_>>())?;
    let mut naive_aucs = Vec::new();
    let mut repair_aucs = Vec::new();
    for p in 0..divergences.len() {
        let mut obf = upload.clone();
        let mut obf_rng = Rng::seed_from(0x0bf ^ p as u64);
        obfuscate_layer(&mut obf, p, ObfuscationStrategy::Random, &mut obf_rng)?;
        let naive = evaluate_attack(
            &mut LossThresholdAttack,
            &obf,
            &mut template,
            &members,
            &nonmembers,
        )?;
        let mut repair = RepairAttack::new(
            LossThresholdAttack,
            RepairConfig {
                epochs: 30,
                lr: 0.1,
                ..RepairConfig::for_layers(&[p])
            },
            attacker_data.clone(),
        );
        let repaired = evaluate_attack(&mut repair, &obf, &mut template, &members, &nonmembers)?;
        println!(
            "  {p:>5} | {:>8.1}% | {:>8.1}%",
            naive.auc * 100.0,
            repaired.auc * 100.0
        );
        naive_aucs.push(naive.auc * 100.0);
        repair_aucs.push(repaired.auc * 100.0);
    }
    let path = report::write_json(
        "fig4",
        &Fig4Result {
            divergences,
            per_layer_naive_auc: naive_aucs,
            per_layer_repair_auc: repair_aucs,
            no_defense_auc: baseline.auc * 100.0,
        },
    )?;
    println!("\nwrote {}", path.display());
    Ok(())
}

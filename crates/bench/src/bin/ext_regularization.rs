//! EXTENSION: implicit regularization (dropout) as an MIA mitigation,
//! compared against DINAR on Purchase100.
//!
//! Dropout shrinks the generalization gap that membership inference feeds
//! on, so it partially mitigates MIAs "for free" — but, unlike DINAR, it
//! cannot reach the 50% optimum (the model still memorizes what it fits)
//! and it costs accuracy on hard tasks. This experiment quantifies that
//! comparison, complementing the paper's explicit-defense lineup.

use dinar_attacks::evaluate_attack;
use dinar_attacks::threshold::LossThresholdAttack;
use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_data::Dataset;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::activation::Tanh;
use dinar_nn::dense::Dense;
use dinar_nn::dropout::Dropout;
use dinar_nn::optim::Adagrad;
use dinar_nn::{Layer, Model};
use dinar_tensor::Rng;
use dinar_bench::impl_to_json;


struct RegRow {
    configuration: String,
    local_auc_pct: f64,
    accuracy_pct: f64,
}

impl_to_json!(RegRow { configuration, local_auc_pct, accuracy_pct });

/// The 6-layer FCNN with dropout after every hidden activation.
fn fcnn_with_dropout(p: f32, rng: &mut Rng) -> dinar_nn::Result<Model> {
    let widths = [600usize, 64, 48, 32, 24, 16];
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for w in widths.windows(2) {
        layers.push(Box::new(Dense::xavier(w[0], w[1], rng)));
        layers.push(Box::new(Tanh::new()));
        if p > 0.0 {
            layers.push(Box::new(Dropout::new(p, rng.split(0xD0))));
        }
    }
    layers.push(Box::new(Dense::xavier(16, 100, rng)));
    Ok(Model::new(layers))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
    let mut env = prepare(spec)?;
    let mut rows = Vec::new();
    println!("EXTENSION — dropout regularization vs DINAR (Purchase100)\n");
    println!("  configuration   | local AUC | accuracy");

    // Baseline + DINAR via the standard harness.
    let p = env.dinar_layer;
    for defense in [Defense::None, Defense::dinar(p)] {
        let o = run_defense(&mut env, &defense)?;
        println!(
            "  {:<15} | {:>8.1}% | {:>7.1}%",
            o.defense, o.local_auc_pct, o.accuracy_pct
        );
        rows.push(RegRow {
            configuration: o.defense,
            local_auc_pct: o.local_auc_pct,
            accuracy_pct: o.accuracy_pct,
        });
    }

    // Dropout variants: same FL setup with a dropout-equipped architecture.
    for drop_p in [0.25f32, 0.5] {
        let spec = &env.spec;
        let mut system = FlSystem::builder(FlConfig {
            local_epochs: spec.local_epochs,
            batch_size: spec.batch_size,
            seed: spec.seed,
        })
        .clients_from_shards(
            env.shards.clone(),
            move |rng| fcnn_with_dropout(drop_p, rng),
            |_| Box::new(Adagrad::new(0.05)),
        )?
        .build()?;
        system.run(spec.rounds)?;
        let global = system.global_params().clone();
        let mut local_sum = 0.0;
        let mut rng = Rng::seed_from(7);
        let mut template = fcnn_with_dropout(drop_p, &mut rng)?;
        let cap =
            |d: &Dataset| d.subset(&(0..d.len().min(200)).collect::<Vec<_>>()).unwrap();
        let nonmembers = cap(&env.split.test);
        let mut uploads = Vec::new();
        for client in system.clients_mut() {
            client.receive_global(&global)?;
            client.train_local()?;
            uploads.push(client.produce_update()?.params);
        }
        for (client, upload) in system.clients().iter().zip(&uploads) {
            let members = cap(client.data());
            local_sum += evaluate_attack(
                &mut LossThresholdAttack,
                upload,
                &mut template,
                &members,
                &nonmembers,
            )?
            .auc;
        }
        let local_auc = local_sum / uploads.len() as f64 * 100.0;
        let acc = system.mean_client_accuracy(&env.split.test)? as f64 * 100.0;
        let name = format!("dropout p={drop_p}");
        println!("  {name:<15} | {local_auc:>8.1}% | {acc:>7.1}%");
        rows.push(RegRow {
            configuration: name,
            local_auc_pct: local_auc,
            accuracy_pct: acc,
        });
    }
    let path = report::write_json("ext_regularization", &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Fig. 10: privacy leakage vs model utility under different differential
//! privacy budgets — LDP with ε ∈ {0.05, 0.2, 1, 2.2} on Purchase100,
//! compared with No-Defense and DINAR.
//!
//! Paper shape: smaller budgets (more noise) improve privacy but collapse
//! accuracy (down to 13% at ε = 0.05 in the paper); DINAR sits at high
//! accuracy and optimal privacy simultaneously.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_bench::impl_to_json;


struct Fig10Row {
    label: String,
    local_auc_pct: f64,
    accuracy_pct: f64,
}

impl_to_json!(Fig10Row { label, local_auc_pct, accuracy_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
    let mut env = prepare(spec)?;
    let dinar_layer = env.dinar_layer;
    let mut runs: Vec<(String, Defense)> = vec![("No defense".into(), Defense::None)];
    for eps in [0.05f32, 0.2, 1.0, 2.2] {
        runs.push((format!("LDP (eps={eps})"), Defense::Ldp { epsilon: eps }));
    }
    runs.push(("DINAR".into(), Defense::dinar(dinar_layer)));

    println!("Fig. 10 — DP budget sweep (Purchase100)\n");
    println!("  configuration   | local AUC | accuracy");
    let mut results = Vec::new();
    for (label, defense) in runs {
        let o = run_defense(&mut env, &defense)?;
        println!(
            "  {label:<15} | {:>8.1}% | {:>7.1}%",
            o.local_auc_pct, o.accuracy_pct
        );
        results.push(Fig10Row {
            label,
            local_auc_pct: o.local_auc_pct,
            accuracy_pct: o.accuracy_pct,
        });
    }
    let path = report::write_json("fig10", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Fig. 1: per-layer Jensen–Shannon divergence between member and
//! non-member gradient distributions on unprotected FL models, for GTSRB,
//! CelebA, Texas100 and Purchase100.
//!
//! The paper's finding is that one layer dominates (the penultimate layer on
//! its deep CNNs / real data). On our synthetic substitutes a dominant layer
//! also exists but sits earlier in the network — see EXPERIMENTS.md for the
//! analysis of this deviation.

use dinar::sensitivity::{layer_divergences, SensitivityConfig};
use dinar_bench::harness::{model_for, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_data::split::attack_split;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::optim::{Adagrad, Optimizer};
use dinar_tensor::Rng;
use dinar_bench::impl_to_json;


struct Fig1Row {
    dataset: String,
    divergences: Vec<f64>,
    argmax_layer: usize,
}

impl_to_json!(Fig1Row { dataset, divergences, argmax_layer });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut results = Vec::new();
    for entry in [
        catalog::gtsrb(Profile::Mini),
        catalog::celeba(Profile::Mini),
        catalog::texas100(Profile::Mini),
        catalog::purchase100(Profile::Mini),
    ] {
        let spec = ExperimentSpec::mini_default(entry.clone());
        let mut rng = Rng::seed_from(spec.seed);
        let dataset = entry.generate(&mut rng)?;
        let split = attack_split(&dataset, &mut rng)?;
        // Train a single unprotected model the way one FL client would.
        let mut model = model_for(&entry, &mut rng)?;
        let members = split.train.subset(&(0..300.min(split.train.len())).collect::<Vec<_>>())?;
        let mut opt = Adagrad::new(spec.dinar_opt.1);
        let loss_fn = CrossEntropyLoss;
        for _ in 0..spec.rounds * spec.local_epochs {
            for idx in members.batch_indices(spec.batch_size, &mut rng) {
                let b = members.batch(&idx)?;
                let logits = model.forward(&b.features, true)?;
                let (_, grad) = loss_fn.loss_and_grad(&logits, &b.labels)?;
                model.zero_grad();
                model.backward(&grad)?;
                opt.step(&mut model)?;
            }
        }
        let divergences = layer_divergences(
            &mut model,
            &members,
            &split.test,
            &SensitivityConfig::default(),
            &mut rng,
        )?;
        let argmax = divergences
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!("\n{} — per-layer JS divergence (member vs non-member gradients):", entry.name());
        for (i, d) in divergences.iter().enumerate() {
            let bar = "#".repeat((d * 80.0).round() as usize);
            let marker = if i == argmax { "  <-- most sensitive" } else { "" };
            println!("  layer {i:>2}: {d:.4} {bar}{marker}");
        }
        results.push(Fig1Row {
            dataset: entry.name().to_string(),
            divergences,
            argmax_layer: argmax,
        });
    }
    let path = report::write_json("fig1", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Fig. 8: privacy leakage vs model utility under different non-IID FL
//! settings — GTSRB partitioned with Dirichlet α ∈ {0.8, 2, 5, ∞}.
//!
//! Paper shapes: (i) for every defense except DINAR the attack strengthens
//! as data becomes more IID; DINAR stays at the optimum regardless;
//! (ii) utility rises with α; DINAR keeps the highest accuracy among the
//! protected runs.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::Distribution;
use dinar_bench::impl_to_json;


struct Fig8Row {
    alpha: String,
    defense: String,
    local_auc_pct: f64,
    accuracy_pct: f64,
}

impl_to_json!(Fig8Row { alpha, defense, local_auc_pct, accuracy_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphas: Vec<(String, Distribution)> = vec![
        ("0.8".into(), Distribution::Dirichlet(0.8)),
        ("2".into(), Distribution::Dirichlet(2.0)),
        ("5".into(), Distribution::Dirichlet(5.0)),
        ("inf (IID)".into(), Distribution::Iid),
    ];
    let mut results = Vec::new();
    println!("Fig. 8 — non-IID sweep (GTSRB), Dirichlet alpha\n");
    for (label, distribution) in alphas {
        let mut spec = ExperimentSpec::mini_default(catalog::gtsrb(Profile::Mini));
        spec.distribution = distribution;
        let mut env = prepare(spec)?;
        let defenses = vec![
            Defense::None,
            Defense::Wdp,
            Defense::Cdp { epsilon: 2.2 },
            Defense::Ldp { epsilon: 2.2 },
            Defense::dinar(env.dinar_layer),
        ];
        println!("--- alpha = {label} ---");
        println!("  defense     | local AUC | accuracy");
        for defense in defenses {
            let o = run_defense(&mut env, &defense)?;
            println!(
                "  {:<11} | {:>8.1}% | {:>7.1}%",
                o.defense, o.local_auc_pct, o.accuracy_pct
            );
            results.push(Fig8Row {
                alpha: label.clone(),
                defense: o.defense,
                local_auc_pct: o.local_auc_pct,
                accuracy_pct: o.accuracy_pct,
            });
        }
        println!();
    }
    let path = report::write_json("fig8", &results)?;
    println!("wrote {}", path.display());
    Ok(())
}

//! Fig. 6: privacy evaluation — attack AUC against the global model and the
//! clients' local models (uploads), for six datasets × seven defense
//! configurations.
//!
//! This is the paper's headline grid. Expected shapes (paper): DINAR pins
//! both columns near the 50% optimum everywhere; SA protects local models
//! only; WDP barely helps; DP methods are inconsistent; No-Defense leaks.
//!
//! Run time: several minutes on one core (it trains 42 FL systems). The
//! resulting JSON (`bench-results/fig6.json`) is reused by `fig7`.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec, Outcome};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let datasets = vec![
        catalog::purchase100(Profile::Mini),
        catalog::cifar10(Profile::Mini),
        catalog::cifar100(Profile::Mini),
        catalog::speech_commands(Profile::Mini),
        catalog::celeba(Profile::Mini),
        catalog::gtsrb(Profile::Mini),
    ];
    let mut outcomes: Vec<Outcome> = Vec::new();
    for entry in datasets {
        let name = entry.name().to_string();
        eprintln!("[fig6] preparing {name} ...");
        let mut env = prepare(ExperimentSpec::mini_default(entry))?;
        let lineup = Defense::lineup(env.dinar_layer);
        println!("\n=== {name} (DINAR layer p = {}) ===", env.dinar_layer);
        println!("  defense     | global AUC | local AUC | accuracy");
        for defense in lineup {
            let o = run_defense(&mut env, &defense)?;
            println!(
                "  {:<11} | {:>9.1}% | {:>8.1}% | {:>7.1}%",
                o.defense, o.global_auc_pct, o.local_auc_pct, o.accuracy_pct
            );
            outcomes.push(o);
        }
    }
    let path = report::write_json("fig6", &outcomes)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Telemetry-overhead micro-suite: records
//! `bench-results/BENCH_telemetry.json`.
//!
//! Measures the cost of the observability plane itself, in two tiers:
//!
//! * **primitive throughput** — one armed flight-recorder event, one
//!   deterministic counter bump, one span enter/exit pair, and one ledger
//!   charge, each in ns/iter (the artifact also derives
//!   `flight_events_per_sec`);
//! * **export latency** — rendering the Perfetto trace-event JSON and the
//!   deterministic JSONL over a populated sink;
//! * **end-to-end overhead** — a seeded 2-client FL training run timed
//!   fully instrumented vs. uninstrumented. `tests/bench_ratchet.rs`
//!   ratchets the committed artifact: the instrumented run must stay
//!   within 5% of the uninstrumented one, the "observation is near-free"
//!   contract. Both runs take the median of [`FL_RUN_SAMPLES`] alternating
//!   samples so scheduler noise hits both sides equally.
//!
//! ```text
//! DINAR_THREADS=1 cargo run --release -p dinar-bench --bin bench_telemetry
//! ```
//!
//! Rows reuse the `(op, size, ns_per_iter, threads)` schema of
//! `BENCH_tensor.json`, so the same ratchet loader reads both artifacts.

use dinar_bench::report::write_json;
use dinar_bench::tensor_suite::TensorBenchEntry;
use dinar_bench::timing::{bench, fmt_ns, Config};
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::Model;
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::{par, Rng};
use dinar_telemetry::{export, Telemetry};
use std::hint::black_box;
use std::time::Instant;

const CLIENTS: usize = 2;
const ROUNDS: usize = 2;
/// Alternating instrumented/uninstrumented samples for the FL-run pair.
const FL_RUN_SAMPLES: usize = 5;

fn entry(op: &str, size: &str, ns_per_iter: f64) -> TensorBenchEntry {
    TensorBenchEntry {
        op: op.to_string(),
        size: size.to_string(),
        ns_per_iter,
        threads: par::threads(),
    }
}

fn build_system() -> Result<FlSystem, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(42);
    let dataset = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let shards = partition_dataset(&dataset, CLIENTS, Distribution::Iid, &mut rng)?;
    let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> {
        models::mlp(&[600, 32, 100], Activation::ReLU, rng)
    };
    Ok(FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 5,
    })
    .clients_from_shards(shards, arch, |_| {
        Box::new(dinar_nn::optim::Adagrad::new(0.05))
    })?
    .build()?)
}

/// One full training run, instrumented or not, returning wall nanoseconds.
/// The flight recorder stays disarmed — that is the default-instrumented
/// configuration the 5% overhead ratchet covers; armed postmortem runs pay
/// extra per-metric hooks, priced separately by the `flight_record` row.
fn timed_fl_run(instrument: bool) -> Result<f64, Box<dyn std::error::Error>> {
    let mut system = build_system()?;
    if instrument {
        system.set_telemetry(Telemetry::new());
    }
    // lint: allow(L007, the measurand is end-to-end wall time of one run)
    let t0 = Instant::now();
    system.run(ROUNDS)?;
    Ok(t0.elapsed().as_nanos() as f64)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// A sink populated with a realistic span/metric population for the export
/// latency measurements.
fn populated_sink(spans: usize) -> Telemetry {
    let tel = Telemetry::new();
    for round in 0..spans / 4 {
        let _r = tel.span(&format!("round[{round}]"));
        for client in 0..3 {
            let _c = tel.span(&format!("client[{client}]"));
        }
    }
    for i in 0..64 {
        tel.counter_add(&format!("bench.counter[{i}]"), i as u64);
    }
    tel
}

fn run_suite() -> Result<Vec<TensorBenchEntry>, Box<dyn std::error::Error>> {
    let config = Config::default();
    let mut entries = Vec::new();

    // Primitive throughput: the per-event cost every instrumented code
    // path pays. The flight ring is armed so the measurement covers the
    // real record path, not the disarmed early-out.
    let tel = Telemetry::new();
    tel.flight_arm();
    let mut i = 0u64;
    let m = bench("flight_record", &config, || {
        i = i.wrapping_add(1);
        tel.flight_record("bench", "event", i);
    });
    entries.push(entry("flight_record", "1", m.median_ns()));

    let tel = Telemetry::new();
    let m = bench("counter_add", &config, || {
        tel.counter_add("bench.counter", 1);
    });
    entries.push(entry("counter_add", "1", m.median_ns()));

    let tel = Telemetry::new();
    let m = bench("span_enter_exit", &config, || {
        drop(tel.span("bench"));
    });
    entries.push(entry("span_enter_exit", "1", m.median_ns()));

    let tel = Telemetry::new();
    let m = bench("privacy_charge", &config, || {
        tel.privacy_charge("bench", "client[0]", 0.05, 1e-7);
    });
    entries.push(entry("privacy_charge", "1", m.median_ns()));

    // Export latency over a populated sink.
    let tel = populated_sink(1024);
    let m = bench("trace_export", &config, || {
        black_box(export::trace_events(&tel));
    });
    entries.push(entry("trace_export", "1024_spans", m.median_ns()));
    let m = bench("jsonl_export", &config, || {
        black_box(export::export_jsonl(&tel, false));
    });
    entries.push(entry("jsonl_export", "1024_spans", m.median_ns()));

    let tel = Telemetry::new();
    tel.flight_arm();
    for i in 0..4096 {
        tel.flight_record("bench", "event", i);
    }
    let m = bench("flight_dump", &config, || {
        black_box(tel.flight_dump_jsonl());
    });
    entries.push(entry("flight_dump", "4096_events", m.median_ns()));

    // End-to-end: alternate instrumented / uninstrumented full training
    // runs and take medians, so slow-machine noise cancels instead of
    // biasing one side.
    let mut with_tel = Vec::new();
    let mut without = Vec::new();
    timed_fl_run(true)?; // warm-up (allocators, data caches)
    for _ in 0..FL_RUN_SAMPLES {
        with_tel.push(timed_fl_run(true)?);
        without.push(timed_fl_run(false)?);
    }
    let instrumented = median(with_tel);
    let uninstrumented = median(without);
    println!(
        "fl_run ({CLIENTS} clients, {ROUNDS} rounds): instrumented {}  \
         uninstrumented {}  overhead {:+.2}%",
        fmt_ns(instrumented),
        fmt_ns(uninstrumented),
        (instrumented / uninstrumented - 1.0) * 100.0,
    );
    let size = format!("{CLIENTS}c{ROUNDS}r");
    entries.push(entry("fl_run_instrumented", &size, instrumented));
    entries.push(entry("fl_run_uninstrumented", &size, uninstrumented));
    Ok(entries)
}

fn main() {
    let entries = match run_suite() {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("telemetry suite failed: {e}");
            std::process::exit(1);
        }
    };
    let flight_ns = entries
        .iter()
        .find(|e| e.op == "flight_record")
        .map_or(0.0, |e| e.ns_per_iter);
    let doc = Json::obj([
        ("threads", par::threads().to_json()),
        (
            "flight_events_per_sec",
            if flight_ns > 0.0 { 1e9 / flight_ns } else { 0.0 }.to_json(),
        ),
        ("entries", entries.to_json()),
    ]);
    match write_json("BENCH_telemetry", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_telemetry.json: {e}");
            std::process::exit(1);
        }
    }
}

//! Table 2: the dataset/model inventory, with both the paper's dimensions
//! and this reproduction's mini profiles (plus actual model parameter
//! counts from our implementations).

use dinar_bench::{harness::model_for, report};
use dinar_data::catalog::{self, Profile};
use dinar_tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(0);
    let headers = [
        "Dataset", "Paper records", "Paper features", "Classes", "Model",
        "Mini records", "Mini features", "Mini model params",
    ];
    let mut rows = Vec::new();
    for entry in catalog::all(Profile::Mini) {
        let model = model_for(&entry, &mut rng)?;
        rows.push(vec![
            entry.name().to_string(),
            entry.paper.records.to_string(),
            entry.paper.features.to_string(),
            entry.spec.num_classes.to_string(),
            entry.paper.model.to_string(),
            entry.spec.num_samples.to_string(),
            entry.spec.modality.feature_len().to_string(),
            model.param_count().to_string(),
        ]);
    }
    println!("Table 2 — Datasets and models (paper dims vs mini profiles)\n");
    print!("{}", report::table(&headers, &rows));
    report::write_json("table2", &catalog::all(Profile::Mini))?;
    Ok(())
}

//! Fig. 11 (ablation): DINAR with its adaptive training (Adagrad, Alg. 1)
//! vs DINAR variants using Adam, ADGD and AdaMax — Purchase100.
//!
//! The paper reports all variants reach the same optimal privacy (50% AUC)
//! while the Adagrad variant attains the best accuracy.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_bench::impl_to_json;


struct Fig11Row {
    optimizer: String,
    accuracy_pct: f64,
    local_auc_pct: f64,
    global_auc_pct: f64,
}

impl_to_json!(Fig11Row { optimizer, accuracy_pct, local_auc_pct, global_auc_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fig. 11 — DINAR optimizer ablation (Purchase100)\n");
    println!("  optimizer | accuracy | local AUC | global AUC");
    let mut results = Vec::new();
    for (name, lr) in [("adam", 1e-2f32), ("adgd", 1e-2), ("adamax", 1e-2), ("adagrad", 0.05)] {
        let mut spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
        spec.dinar_opt = (name, lr);
        let mut env = prepare(spec)?;
        let p = env.dinar_layer;
        let o = run_defense(&mut env, &Defense::dinar(p))?;
        println!(
            "  {name:<9} | {:>7.1}% | {:>8.1}% | {:>9.1}%",
            o.accuracy_pct, o.local_auc_pct, o.global_auc_pct
        );
        results.push(Fig11Row {
            optimizer: name.to_string(),
            accuracy_pct: o.accuracy_pct,
            local_auc_pct: o.local_auc_pct,
            global_auc_pct: o.global_auc_pct,
        });
    }
    let path = report::write_json("fig11", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

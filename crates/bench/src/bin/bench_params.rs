//! Parameter-plane copy-traffic audit: records
//! `bench-results/BENCH_params.json`.
//!
//! Runs the default FL configuration (Purchase100-mini, 8 clients, the
//! paper's weak-DP client defense) for a few rounds and, per round, diffs
//! the tensor buffer-copy counters ([`dinar_tensor::profile::param_snapshot`])
//! to measure how many tensor buffers were deep-copied, how many bytes those
//! copies duplicated, and how many clones were satisfied by an O(1) buffer
//! share instead. A separate microbench times server-side FedAvg aggregation
//! over the same 8 uploads.
//!
//! ```text
//! cargo run --release -p dinar-bench --bin bench_params
//! ```
//!
//! The committed `bench-results/BENCH_params_baseline.json` holds the
//! pre-COW numbers (every clone a deep copy); `BENCH_params.json` is the
//! current state. `tests/param_plane.rs` enforces the ≥ 5× bytes-cloned
//! reduction between the two.

use dinar_bench::impl_to_json;
use dinar_bench::report::{table, write_json};
use dinar_bench::timing::{bench, Config};
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::Dataset;
use dinar_defenses::WeakDp;
use dinar_fl::{ClientMiddleware, ClientUpdate, FlConfig, FlServer, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_tensor::{profile, Rng};

const CLIENTS: usize = 8;
const ROUNDS: usize = 5;

struct RoundRow {
    round: usize,
    copy_calls: u64,
    copy_bytes: u64,
    share_calls: u64,
}

impl_to_json!(RoundRow {
    round,
    copy_calls,
    copy_bytes,
    share_calls,
});

struct ParamsReport {
    clients: usize,
    rounds: usize,
    model_params: usize,
    model_bytes: u64,
    mean_copy_calls_per_round: f64,
    mean_copy_bytes_per_round: f64,
    mean_share_calls_per_round: f64,
    agg_median_ns: f64,
    agg_min_ns: f64,
    per_round: Vec<RoundRow>,
}

impl_to_json!(ParamsReport {
    clients,
    rounds,
    model_params,
    model_bytes,
    mean_copy_calls_per_round,
    mean_copy_bytes_per_round,
    mean_share_calls_per_round,
    agg_median_ns,
    agg_min_ns,
    per_round,
});

fn run() -> Result<ParamsReport, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(41);
    let data = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let (train, _test) = data.split_fraction(0.8, &mut rng)?;
    let shards = partition_dataset(&train, CLIENTS, Distribution::Iid, &mut rng)?;
    let sample_counts: Vec<usize> = shards.iter().map(Dataset::len).collect();
    let arch = |rng: &mut Rng| models::mlp(&[600, 64, 100], Activation::ReLU, rng);
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 7,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Sgd::new(0.1)))?
    .with_client_middleware(|id| {
        vec![Box::new(WeakDp::paper_default(Rng::seed_from(
            7 ^ ((id as u64) << 8),
        ))) as Box<dyn ClientMiddleware>]
    })
    .build()?;

    let model_params = system.global_params().param_count();
    let model_bytes = model_params as u64 * 4;

    let mut per_round = Vec::new();
    for round in 0..ROUNDS {
        let before = profile::param_snapshot();
        system.run_round()?;
        let d = profile::param_snapshot().delta_since(&before);
        per_round.push(RoundRow {
            round,
            copy_calls: d.copy_calls,
            copy_bytes: d.copy_bytes,
            share_calls: d.share_calls,
        });
    }

    // Server-side FedAvg microbench: aggregate the final global re-uploaded
    // by all clients (shapes and weights match a real round exactly).
    let updates: Vec<ClientUpdate> = (0..CLIENTS)
        .map(|id| ClientUpdate {
            client_id: id,
            params: system.global_params().clone(),
            num_samples: sample_counts[id],
        })
        .collect();
    let mut server = FlServer::new(system.global_params().clone());
    let m = bench("fedavg_aggregate_8", &Config::default(), || {
        server
            .aggregate(&updates)
            .map(|p| p.param_count())
            .unwrap_or(0)
    });

    let n = per_round.len() as f64;
    Ok(ParamsReport {
        clients: CLIENTS,
        rounds: ROUNDS,
        model_params,
        model_bytes,
        mean_copy_calls_per_round: per_round.iter().map(|r| r.copy_calls as f64).sum::<f64>() / n,
        mean_copy_bytes_per_round: per_round.iter().map(|r| r.copy_bytes as f64).sum::<f64>() / n,
        mean_share_calls_per_round: per_round.iter().map(|r| r.share_calls as f64).sum::<f64>()
            / n,
        agg_median_ns: m.median_ns(),
        agg_min_ns: m.min_ns(),
        per_round,
    })
}

fn main() {
    let report = match run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("param-plane bench failed: {e}");
            std::process::exit(1);
        }
    };
    let cells: Vec<Vec<String>> = report
        .per_round
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                r.copy_calls.to_string(),
                format!("{:.2}", r.copy_bytes as f64 / (1024.0 * 1024.0)),
                r.share_calls.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["round", "copies", "copied_MiB", "shares"], &cells)
    );
    println!(
        "model: {} params ({} bytes); mean copied/round: {:.2} MiB; aggregate: {:.2} µs median",
        report.model_params,
        report.model_bytes,
        report.mean_copy_bytes_per_round / (1024.0 * 1024.0),
        report.agg_median_ns / 1e3,
    );
    match write_json("BENCH_params", &report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_params.json: {e}");
            std::process::exit(1);
        }
    }
}

//! Wire-plane byte metering over the threaded transport: records
//! `bench-results/BENCH_wire.json`.
//!
//! The same seeded FL run (Purchase100-mini, 4 clients, ManualClock)
//! executes once per uplink codec through [`run_threaded_wire`], with
//! every frame crossing a uniform simulated network (5 ms latency,
//! 1 MB/s). Each row records the bytes each direction moved per round,
//! the uplink compression ratio against the raw-`f32` baseline, the
//! simulated per-round makespan, and the final training loss — showing
//! that the 1-bit and `i8` paths (delta encoding plus client-side
//! error-feedback residuals) still learn while moving an order of
//! magnitude fewer bytes.
//!
//! ```text
//! cargo run --release -p dinar-bench --bin bench_wire
//! ```
//!
//! Everything is seeded and the byte/frame/makespan columns are pure
//! functions of the model architecture, codec and link parameters, so the
//! artifact is bit-reproducible run to run;
//! `tests/bench_ratchet.rs::wire_compression_ratio_holds` ratchets the
//! sign1-vs-f32 uplink ratio at ≥8×.

use dinar_bench::impl_to_json;
use dinar_bench::report::{table, write_json};
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::clock::ManualClock;
use dinar_fl::netsim::Codec;
use dinar_fl::{
    run_threaded_wire, FlConfig, FlSystem, NetworkModel, RoundPolicy, WireConfig,
};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
const ROUNDS: usize = 8;

struct WireRow {
    codec: &'static str,
    rounds: usize,
    bytes_down_per_round: u64,
    bytes_up_per_round: u64,
    frames_per_round: u64,
    /// Uplink bytes of the raw-f32 run divided by this run's — the
    /// compression ratio the bench ratchet holds at ≥8× for sign1.
    uplink_ratio_vs_f32: f64,
    /// Simulated network makespan per round (slowest client path) in ms.
    sim_ms_per_round: f64,
    final_loss: f64,
}

impl_to_json!(WireRow {
    codec,
    rounds,
    bytes_down_per_round,
    bytes_up_per_round,
    frames_per_round,
    uplink_ratio_vs_f32,
    sim_ms_per_round,
    final_loss,
});

fn build_system() -> Result<FlSystem, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(41);
    let data = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let shards = partition_dataset(&data, CLIENTS, Distribution::Iid, &mut rng)?;
    let arch = |rng: &mut Rng| models::mlp(&[600, 64, 100], Activation::ReLU, rng);
    Ok(FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 7,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Sgd::new(0.1)))?
    .build()?)
}

fn run_codec(
    name: &'static str,
    uplink: Codec,
) -> Result<WireRow, Box<dyn std::error::Error>> {
    let wire = WireConfig::lossless()
        .with_uplink(uplink)
        .with_network(NetworkModel::uniform(Duration::from_millis(5), 1_000_000));
    let run = run_threaded_wire(
        build_system()?,
        ROUNDS,
        Arc::new(ManualClock::new()),
        RoundPolicy::strict(),
        wire,
    )?;
    let rounds = run.wire_stats.len().max(1) as u64;
    let bytes_down: u64 = run.wire_stats.iter().map(|s| s.bytes_down).sum();
    let bytes_up: u64 = run.wire_stats.iter().map(|s| s.bytes_up).sum();
    let frames: u64 = run.wire_stats.iter().map(|s| s.frames).sum();
    let sim_ms: f64 = run
        .wire_stats
        .iter()
        .map(|s| s.sim_elapsed.as_secs_f64() * 1e3)
        .sum::<f64>()
        / rounds as f64;
    Ok(WireRow {
        codec: name,
        rounds: run.reports.len(),
        bytes_down_per_round: bytes_down / rounds,
        bytes_up_per_round: bytes_up / rounds,
        frames_per_round: frames / rounds,
        uplink_ratio_vs_f32: 1.0, // filled against the f32 row below
        sim_ms_per_round: sim_ms,
        final_loss: run
            .reports
            .last()
            .map(|r| f64::from(r.mean_train_loss))
            .unwrap_or(f64::NAN),
    })
}

fn main() {
    let codecs: [(&'static str, Codec); 3] = [
        ("f32", Codec::F32),
        ("sign1", Codec::Sign1),
        ("quant_i8", Codec::QuantI8),
    ];
    let mut rows = Vec::new();
    for (name, codec) in codecs {
        match run_codec(name, codec) {
            Ok(row) => rows.push(row),
            Err(e) => {
                eprintln!("wire bench failed for codec {name}: {e}");
                std::process::exit(1);
            }
        }
    }
    let f32_up = rows[0].bytes_up_per_round;
    for row in &mut rows {
        row.uplink_ratio_vs_f32 = f32_up as f64 / row.bytes_up_per_round.max(1) as f64;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.codec.to_string(),
                r.rounds.to_string(),
                r.bytes_down_per_round.to_string(),
                r.bytes_up_per_round.to_string(),
                r.frames_per_round.to_string(),
                format!("{:.1}", r.uplink_ratio_vs_f32),
                format!("{:.1}", r.sim_ms_per_round),
                format!("{:.4}", r.final_loss),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["codec", "rounds", "down_B/rd", "up_B/rd", "frames/rd", "up_ratio", "sim_ms", "final_loss"],
            &cells
        )
    );
    match write_json("BENCH_wire", rows.as_slice()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_wire.json: {e}");
            std::process::exit(1);
        }
    }
}

//! Fig. 9: model privacy and utility under different numbers of FL clients —
//! Purchase100 divided across N ∈ {5, 10, 20, 30} clients.
//!
//! Paper shapes: fewer clients → more data per client → higher accuracy;
//! DINAR holds the attack AUC at the optimum independent of N.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_bench::impl_to_json;


struct Fig9Row {
    clients: usize,
    defense: String,
    local_auc_pct: f64,
    accuracy_pct: f64,
}

impl_to_json!(Fig9Row { clients, defense, local_auc_pct, accuracy_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut results = Vec::new();
    println!("Fig. 9 — client-count sweep (Purchase100)\n");
    println!("  clients | defense    | local AUC | accuracy");
    for clients in [5usize, 10, 20, 30] {
        let mut spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
        spec.clients = clients;
        let mut env = prepare(spec)?;
        let dinar_layer = env.dinar_layer;
        for defense in [Defense::None, Defense::dinar(dinar_layer)] {
            let o = run_defense(&mut env, &defense)?;
            println!(
                "  {clients:>7} | {:<10} | {:>8.1}% | {:>7.1}%",
                o.defense, o.local_auc_pct, o.accuracy_pct
            );
            results.push(Fig9Row {
                clients,
                defense: o.defense,
                local_auc_pct: o.local_auc_pct,
                accuracy_pct: o.accuracy_pct,
            });
        }
    }
    let path = report::write_json("fig9", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Privacy-budget audit over the full defense lineup: records
//! `bench-results/AUDIT_privacy.json`.
//!
//! Every defense column of the paper's evaluation trains once on a small
//! Purchase100-mini environment with an enabled telemetry sink attached, so
//! each defense transform charges the privacy ledger exactly as it does in
//! the figure/table runs. The artifact then carries one composed
//! (ε, δ) report per defense:
//!
//! * the DP family spends real budget — WDP charges its inverted-mechanism
//!   per-upload ε, CDP its per-noised-round server ε, and LDP (realized as
//!   DP-SGD in the optimizer) its per-step amortized ε — so each must show
//!   a **nonzero** composed ε;
//! * SA and GC charge explicit zero-cost entries, so their accounts appear
//!   with `charges > 0` and composed ε **exactly 0** — the audit
//!   distinguishes "spends nothing" from "forgot to report" (lint rule
//!   L016 guards the source side of the same contract);
//! * undefended FL and DINAR register no accounts at all: nothing in those
//!   pipelines touches member data through a randomized mechanism.
//!
//! The binary self-checks those three invariants and exits nonzero on any
//! violation, making it the executable form of the audit acceptance bar.
//!
//! ```text
//! cargo run --release -p dinar-bench --bin audit_privacy
//! ```
//!
//! The ledger is deterministic (BTreeMap accounts, pure arithmetic), so the
//! report is byte-identical across runs and pool widths.

use dinar_bench::harness::{prepare_training_only, train_defense_with_telemetry, Defense, ExperimentSpec};
use dinar_bench::report::{table, write_json};
use dinar_data::catalog::{self, Profile};
use dinar_tensor::json::{Json, ToJson};
use dinar_telemetry::Telemetry;

/// Defense labels whose ledger must show a strictly positive composed ε.
const DP_FAMILY: [&str; 3] = ["WDP", "LDP", "CDP"];
/// Defense labels whose ledger must show explicit zero-cost accounts.
const ZERO_COST: [&str; 2] = ["GC", "SA"];

struct DefenseAudit {
    label: String,
    accounts: usize,
    charges: u64,
    max_eps_composed: f64,
    report: Json,
}

fn audit_defense(
    env: &dinar_bench::harness::Environment,
    defense: &Defense,
) -> Result<DefenseAudit, Box<dyn std::error::Error>> {
    let telemetry = Telemetry::new();
    train_defense_with_telemetry(env, defense, &telemetry)?;
    let accounts = telemetry.privacy_accounts();
    Ok(DefenseAudit {
        label: defense.label(),
        accounts: accounts.len(),
        charges: accounts.iter().map(|a| a.charges).sum(),
        max_eps_composed: accounts.iter().map(|a| a.eps_composed).fold(0.0, f64::max),
        report: telemetry.privacy_report(),
    })
}

fn check(audits: &[DefenseAudit]) -> Vec<String> {
    let mut problems = Vec::new();
    let find = |label: &str| audits.iter().find(|a| a.label == label);
    for label in DP_FAMILY {
        match find(label) {
            Some(a) if a.max_eps_composed > 0.0 => {}
            Some(a) => problems.push(format!(
                "{label}: composed ε is {} but a DP defense must spend budget",
                a.max_eps_composed
            )),
            None => problems.push(format!("{label}: missing from the lineup")),
        }
    }
    for label in ZERO_COST {
        match find(label) {
            Some(a) if a.charges > 0 && a.max_eps_composed == 0.0 => {}
            Some(a) => problems.push(format!(
                "{label}: expected explicit zero-cost entries, got {} charges \
                 with max composed ε {}",
                a.charges, a.max_eps_composed
            )),
            None => problems.push(format!("{label}: missing from the lineup")),
        }
    }
    problems
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shrunk Purchase100-mini spec: the ledger semantics are identical to
    // the full table runs (same middleware, same charge sites), only the
    // round/client counts are scaled down so the audit regenerates quickly.
    let mut spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
    spec.clients = 4;
    spec.rounds = 3;
    spec.local_epochs = 1;
    let env = prepare_training_only(spec)?;

    let mut audits = Vec::new();
    for defense in Defense::lineup(env.dinar_layer) {
        audits.push(audit_defense(&env, &defense)?);
    }

    let cells: Vec<Vec<String>> = audits
        .iter()
        .map(|a| {
            vec![
                a.label.clone(),
                a.accounts.to_string(),
                a.charges.to_string(),
                format!("{:.4}", a.max_eps_composed),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["defense", "accounts", "charges", "max_eps_composed"], &cells)
    );

    let defenses: Vec<Json> = audits
        .iter()
        .map(|a| {
            Json::obj([
                ("defense", a.label.to_json()),
                ("ledger", a.report.clone()),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("dataset", env.spec.entry.name().to_json()),
        ("clients", env.spec.clients.to_json()),
        ("rounds", env.spec.rounds.to_json()),
        ("local_epochs", env.spec.local_epochs.to_json()),
        ("defenses", Json::Arr(defenses)),
    ]);
    let path = write_json("AUDIT_privacy", &doc)?;
    println!("wrote {}", path.display());

    let problems = check(&audits);
    if !problems.is_empty() {
        return Err(format!("privacy audit failed:\n  {}", problems.join("\n  ")).into());
    }
    Ok(())
}

//! Serving-plane benchmark: records `bench-results/BENCH_serve.json`.
//!
//! The same seeded MLP (Purchase100-shaped, 600→256→100) is checkpointed
//! through the `DNCK` plane twice — once at `f32` and once at `quant_i8`
//! storage width — and each checkpoint answers the same batched inference
//! stream through [`dinar_nn::serve::ServingModel`]. Each row records the
//! resident weight bytes (a pure function of the architecture and dtype,
//! bit-reproducible run to run) and the measured batch throughput.
//!
//! ```text
//! DINAR_THREADS=1 cargo run --release -p dinar-bench --bin bench_serve
//! ```
//!
//! `tests/bench_ratchet.rs::i8_serving_halves_resident_weight_bytes`
//! ratchets the committed artifact: the `quant_i8` row must stay ≥2×
//! smaller in resident weight bytes while keeping comparable batch
//! throughput — the quantized model serves from a quarter of the memory
//! without giving the speed back.

use dinar_bench::impl_to_json;
use dinar_bench::report::{table, write_json};
use dinar_bench::timing::{bench, Config};
use dinar_nn::ckpt;
use dinar_nn::models::{self, Activation};
use dinar_nn::serve::ServingModel;
use dinar_tensor::{Dtype, Rng, Tensor};
use std::time::Duration;

const ARCH: [usize; 3] = [600, 256, 100];
const BATCH_ROWS: usize = 64;
const TIMED_BATCHES: usize = 64;

struct ServeRow {
    storage: &'static str,
    resident_weight_bytes: u64,
    /// f32 resident bytes divided by this row's — the memory ratio the
    /// bench ratchet holds at ≥2× for quant_i8.
    bytes_ratio_vs_f32: f64,
    batch_rows: usize,
    timed_batches: usize,
    ns_per_batch: f64,
    rows_per_s: f64,
    /// Largest |logit drift| against the f32 run on the same inputs.
    max_abs_logit_diff: f64,
}

impl_to_json!(ServeRow {
    storage,
    resident_weight_bytes,
    bytes_ratio_vs_f32,
    batch_rows,
    timed_batches,
    ns_per_batch,
    rows_per_s,
    max_abs_logit_diff,
});

fn checkpoint_bytes(dtype: Dtype) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    // The same seed both times: the two serving models differ only in
    // storage width, never in the underlying weights.
    let mut rng = Rng::seed_from(97);
    let model = models::mlp(&ARCH, Activation::ReLU, &mut rng)?;
    Ok(ckpt::encode_checkpoint(&model.params(), dtype)?)
}

fn run_storage(
    name: &'static str,
    dtype: Dtype,
    batches: &[Tensor],
    f32_logits: Option<&[Tensor]>,
) -> Result<(ServeRow, Vec<Tensor>), Box<dyn std::error::Error>> {
    let raw = ckpt::decode_checkpoint_raw(&checkpoint_bytes(dtype)?)?;
    let mut serving = ServingModel::from_checkpoint(raw)?;
    let mut logits = Vec::with_capacity(batches.len());
    for x in batches {
        logits.push(serving.infer(x)?);
    }
    // One timed iteration = one batch, cycling through the stream so the
    // pool's steady-state reuse (not the first-batch allocation) is what
    // gets measured.
    let mut next = 0usize;
    let measured = bench(
        &format!("serve_{name}"),
        &Config {
            warmup: Duration::from_millis(100),
            samples: 20,
            target_sample: Duration::from_millis(20),
        },
        || {
            let x = &batches[next % batches.len()];
            next += 1;
            // lint: allow(L001, every batch already inferred successfully above)
            serving.infer(x).expect("shapes validated above")
        },
    );
    let ns_per_batch = measured.median_ns();
    let max_diff = f32_logits
        .map(|reference| {
            reference
                .iter()
                .zip(&logits)
                .flat_map(|(a, b)| a.as_slice().iter().zip(b.as_slice()))
                .map(|(p, q)| f64::from((p - q).abs()))
                .fold(0.0, f64::max)
        })
        .unwrap_or(0.0);
    let row = ServeRow {
        storage: name,
        resident_weight_bytes: serving.resident_weight_bytes(),
        bytes_ratio_vs_f32: 1.0, // filled against the f32 row below
        batch_rows: BATCH_ROWS,
        timed_batches: batches.len(),
        ns_per_batch,
        rows_per_s: BATCH_ROWS as f64 * 1e9 / ns_per_batch.max(1e-9),
        max_abs_logit_diff: max_diff,
    };
    Ok((row, logits))
}

fn main() {
    let mut rng = Rng::seed_from(4242);
    let batches: Vec<Tensor> = (0..TIMED_BATCHES)
        .map(|_| rng.randn(&[BATCH_ROWS, ARCH[0]]))
        .collect();
    let (f32_row, f32_logits) = match run_storage("f32", Dtype::F32, &batches, None) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("serve bench failed for f32: {e}");
            std::process::exit(1);
        }
    };
    let (i8_row, _) = match run_storage("quant_i8", Dtype::I8, &batches, Some(&f32_logits)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("serve bench failed for quant_i8: {e}");
            std::process::exit(1);
        }
    };
    let mut rows = vec![f32_row, i8_row];
    let f32_bytes = rows[0].resident_weight_bytes;
    for row in &mut rows {
        row.bytes_ratio_vs_f32 = f32_bytes as f64 / row.resident_weight_bytes.max(1) as f64;
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.storage.to_string(),
                r.resident_weight_bytes.to_string(),
                format!("{:.2}", r.bytes_ratio_vs_f32),
                r.batch_rows.to_string(),
                format!("{:.0}", r.ns_per_batch),
                format!("{:.0}", r.rows_per_s),
                format!("{:.4}", r.max_abs_logit_diff),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["storage", "weight_B", "B_ratio", "batch", "ns/batch", "rows/s", "max_diff"],
            &cells
        )
    );
    match write_json("BENCH_serve", rows.as_slice()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }
}

//! Client-dropout sweep over the fault-tolerant threaded transport:
//! records `bench-results/BENCH_dropout.json`.
//!
//! For each dropout rate the same seeded FL run (Purchase100-mini, 8
//! clients) executes under a [`FaultPlan::seeded_dropout`] schedule — every
//! client independently loses its upload with probability `rate` each round
//! — with a quorum of one, so the server aggregates whatever arrives. The
//! artifact tracks test accuracy and final-round loss as participation
//! drops — on the IID mini profile FedAvg proves robust: accuracy holds
//! through 50% dropout while the loss drifts up — plus the transport's own
//! fault accounting (updates aggregated, uploads lost).
//! Rate 0.0 doubles as the healthy baseline: its schedule is empty, so the
//! run is bit-identical to the strict transport.
//!
//! ```text
//! cargo run --release -p dinar-bench --bin bench_dropout
//! ```
//!
//! Everything is seeded (data, models, fault schedule) and dropout faults
//! are explicit notices rather than timeouts, so the accuracy column is
//! reproducible run to run.

use dinar_bench::report::{pct, table, write_json};
use dinar_bench::impl_to_json;
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::clock::WallClock;
use dinar_fl::eval::accuracy_of_params;
use dinar_fl::{run_threaded_resilient, FaultPlan, FlConfig, FlSystem, Quorum, RoundPolicy};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_tensor::Rng;
use std::sync::Arc;

const CLIENTS: usize = 8;
const ROUNDS: usize = 20;
const RATES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.5];

struct DropoutRow {
    rate: f64,
    /// Seed behind the generated fault schedule — with (clients, rounds,
    /// rate) it reconstructs the exact dropout pattern this row measured.
    fault_seed: Option<u64>,
    /// Round deadline in milliseconds (`null` = no deadline; dropout
    /// faults are explicit notices, so no timeout is needed).
    deadline_ms: Option<u64>,
    rounds: usize,
    updates_aggregated: usize,
    uploads_lost: usize,
    final_loss: f64,
    accuracy_pct: f64,
}

impl_to_json!(DropoutRow {
    rate,
    fault_seed,
    deadline_ms,
    rounds,
    updates_aggregated,
    uploads_lost,
    final_loss,
    accuracy_pct,
});

fn run_rate(rate: f64) -> Result<DropoutRow, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(41);
    let data = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let (train, test) = data.split_fraction(0.8, &mut rng)?;
    let shards = partition_dataset(&train, CLIENTS, Distribution::Iid, &mut rng)?;
    let arch = |rng: &mut Rng| models::mlp(&[600, 64, 100], Activation::ReLU, rng);
    let system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 7,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Sgd::new(0.1)))?
    .build()?;

    let plan = FaultPlan::seeded_dropout(13, CLIENTS, ROUNDS, rate);
    let fault_seed = plan.seed();
    let policy = RoundPolicy::with_quorum(Quorum::AtLeast(1), None).with_faults(plan);
    let deadline_ms = policy.deadline.map(|d| d.as_millis() as u64);
    let run = run_threaded_resilient(system, ROUNDS, Arc::new(WallClock::new()), policy)?;

    let mut template = models::mlp(&[600, 64, 100], Activation::ReLU, &mut rng)?;
    let accuracy = accuracy_of_params(run.system.global_params(), &mut template, &test)?;
    Ok(DropoutRow {
        rate,
        fault_seed,
        deadline_ms,
        rounds: run.reports.len(),
        updates_aggregated: run.fault_stats.iter().map(|s| s.participants).sum(),
        uploads_lost: run.fault_stats.iter().map(|s| s.clients_dropped).sum(),
        final_loss: run
            .reports
            .last()
            .map(|r| f64::from(r.mean_train_loss))
            .unwrap_or(f64::NAN),
        accuracy_pct: f64::from(accuracy) * 100.0,
    })
}

fn main() {
    let mut rows = Vec::new();
    for rate in RATES {
        match run_rate(rate) {
            Ok(row) => rows.push(row),
            Err(e) => {
                eprintln!("dropout sweep failed at rate {rate}: {e}");
                std::process::exit(1);
            }
        }
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.rate),
                r.fault_seed.map_or("-".into(), |s| s.to_string()),
                r.rounds.to_string(),
                r.updates_aggregated.to_string(),
                r.uploads_lost.to_string(),
                format!("{:.4}", r.final_loss),
                pct(r.accuracy_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["rate", "seed", "rounds", "updates", "lost", "final_loss", "acc_%"],
            &cells
        )
    );
    match write_json("BENCH_dropout", rows.as_slice()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_dropout.json: {e}");
            std::process::exit(1);
        }
    }
}

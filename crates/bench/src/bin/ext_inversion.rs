//! EXTENSION (paper §6 future work): DINAR's resilience against **model
//! inversion**.
//!
//! The attacker inverts the model for each class (gradient ascent on the
//! class logit) and we measure the cosine similarity between the
//! reconstruction and the ground-truth class prototype — known exactly
//! because our data is synthetic. Compared across the undefended global
//! model, a client upload under DINAR, and DINAR's obfuscated global model.

use dinar_attacks::inversion::{cosine_similarity, invert_class, InversionConfig};
use dinar_bench::harness::{model_for, prepare, train_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_data::Dataset;
use dinar_nn::ModelParams;
use dinar_tensor::{Rng, Tensor};
use dinar_bench::impl_to_json;


struct InversionRow {
    target: String,
    mean_prototype_similarity: f64,
}

impl_to_json!(InversionRow { target, mean_prototype_similarity });

/// Estimates each class's prototype as the mean of its training samples.
fn class_prototypes(data: &Dataset) -> Vec<Tensor> {
    let d = data.feature_len();
    let mut sums = vec![vec![0.0f32; d]; data.num_classes()];
    let mut counts = vec![0usize; data.num_classes()];
    let x = data.features().as_slice();
    for (i, &label) in data.labels().iter().enumerate() {
        for j in 0..d {
            sums[label][j] += x[i * d + j];
        }
        counts[label] += 1;
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| {
            Tensor::from_vec(
                s.into_iter().map(|v| v / c.max(1) as f32).collect(),
                &[d],
            )
            .expect("shape matches")
        })
        .collect()
}

fn mean_similarity(
    target: &ModelParams,
    entry: &dinar_data::catalog::CatalogEntry,
    prototypes: &[Tensor],
    sample_shape: &[usize],
    classes: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(0xEE);
    let mut template = model_for(entry, &mut rng)?;
    let mut total = 0.0f64;
    for class in 0..classes {
        let inv = invert_class(
            target,
            &mut template,
            sample_shape,
            class,
            &InversionConfig::default(),
        )?;
        total += cosine_similarity(&inv.flatten(), &prototypes[class].flatten()) as f64;
    }
    Ok(total / classes as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
    let entry = spec.entry.clone();
    let env = prepare(spec)?;
    let prototypes = class_prototypes(&env.split.train);
    let sample_shape = env.split.train.sample_shape().to_vec();
    // Invert a subset of classes for speed (prototype structure is i.i.d.).
    let classes = 10usize;

    println!("EXTENSION — model inversion vs DINAR (Purchase100, 10 classes)\n");
    let mut rows = Vec::new();
    for (label, defense) in [
        ("no defense".to_string(), Defense::None),
        ("DINAR".to_string(), Defense::dinar(env.dinar_layer)),
    ] {
        let run = train_defense(&env, &defense)?;
        // Invert the global model and the first client upload.
        for (what, params) in [
            ("global model", run.system.global_params().clone()),
            ("client upload", run.uploads[0].clone()),
        ] {
            let sim = mean_similarity(&params, &entry, &prototypes, &sample_shape, classes)?;
            let name = format!("{label} / {what}");
            println!("  {name:<28} mean prototype similarity {sim:>6.3}");
            rows.push(InversionRow {
                target: name,
                mean_prototype_similarity: sim,
            });
        }
    }
    println!("\n(higher similarity = more training-data structure reconstructable)");
    let path = report::write_json("ext_inversion", &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

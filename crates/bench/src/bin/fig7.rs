//! Fig. 7: privacy-vs-utility trade-off for local models — each defense
//! plotted as (accuracy, attack AUC) per dataset; the best corner is
//! bottom-right (high accuracy, 50% AUC).
//!
//! Reuses `bench-results/fig6.json` when present (run `fig6` first to avoid
//! recomputing); otherwise reruns the grid.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec, Outcome};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_tensor::json::Json;
use std::path::Path;

fn load_or_run() -> Result<Vec<Outcome>, Box<dyn std::error::Error>> {
    let path = Path::new(report::RESULTS_DIR).join("fig6.json");
    if path.exists() {
        eprintln!("[fig7] reusing {}", path.display());
        let json = std::fs::read_to_string(&path)?;
        let value = Json::parse(&json)?;
        return value
            .as_arr()
            .map(|rows| rows.iter().map(Outcome::from_json).collect::<Option<Vec<_>>>())
            .and_then(|parsed| parsed)
            .ok_or_else(|| format!("{} is not a valid outcome list", path.display()).into());
    }
    eprintln!("[fig7] no fig6.json found; running the defense grid");
    let mut outcomes = Vec::new();
    for entry in [
        catalog::purchase100(Profile::Mini),
        catalog::cifar10(Profile::Mini),
        catalog::cifar100(Profile::Mini),
        catalog::speech_commands(Profile::Mini),
        catalog::celeba(Profile::Mini),
        catalog::gtsrb(Profile::Mini),
    ] {
        let mut env = prepare(ExperimentSpec::mini_default(entry))?;
        for defense in Defense::lineup(env.dinar_layer) {
            outcomes.push(run_defense(&mut env, &defense)?);
        }
    }
    report::write_json("fig6", &outcomes)?;
    Ok(outcomes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcomes = load_or_run()?;
    let mut datasets: Vec<String> = outcomes.iter().map(|o| o.dataset.clone()).collect();
    datasets.dedup();
    println!("Fig. 7 — privacy vs utility for local models");
    println!("(best corner: high accuracy, AUC at the 50% optimum)\n");
    for dataset in datasets {
        println!("--- {dataset} ---");
        println!("  defense     | accuracy (x) | attack AUC (y)");
        let mut best: Option<&Outcome> = None;
        for o in outcomes.iter().filter(|o| o.dataset == dataset) {
            println!(
                "  {:<11} | {:>11.1}% | {:>12.1}%",
                o.defense, o.accuracy_pct, o.local_auc_pct
            );
            // "Best" = closest to (max accuracy, 50% AUC) in this dataset.
            let score = |x: &Outcome| x.local_auc_pct - 50.0 + (100.0 - x.accuracy_pct) * 0.5;
            if best.map_or(true, |b| score(o) < score(b)) {
                best = Some(o);
            }
        }
        if let Some(b) = best {
            println!("  -> frontier point: {}", b.defense);
        }
        println!();
    }
    let path = report::write_json("fig7", &outcomes)?;
    println!("wrote {}", path.display());
    Ok(())
}

//! Telemetry profile of a small FL run: 2 clients, 2 rounds, synthetic
//! Purchase100-mini data.
//!
//! Emits `bench-results/TELEMETRY_fl_round.json` with the full sorted span
//! list (per-round / per-client / per-middleware / per-layer breakdowns),
//! the deterministic metric values, the indented summary tree, and two
//! health indicators:
//!
//! * `span_coverage` — the fraction of each root span's wall time covered
//!   by its direct children (the acceptance bar is ≥ 0.95: spans must
//!   account for where the time went, not just that it passed);
//! * `bit_identical` — the global model of the instrumented run matches an
//!   uninstrumented rerun bit for bit (observation must not perturb).
//!
//! The same sink also records an instrumented DINAR initialization vote
//! (`dinar-consensus`), so the coverage gate spans both the FL engine and
//! the consensus layer — a consensus phase that stops reporting where its
//! time goes fails the same ≥ 0.95 bar as a training phase.

use dinar_bench::report;
use dinar_consensus::network::{simulate_vote_with_telemetry, NodeBehavior, SimConfig};
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::Model;
use dinar_tensor::json::Json;
use dinar_tensor::Rng;
use dinar_telemetry::{export, MetricData, Telemetry};

const CLIENTS: usize = 2;
const ROUNDS: usize = 2;

fn build_system() -> Result<FlSystem, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(42);
    let dataset = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let shards = partition_dataset(&dataset, CLIENTS, Distribution::Iid, &mut rng)?;
    let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> {
        models::mlp(&[600, 32, 100], Activation::ReLU, rng)
    };
    Ok(FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 5,
    })
    .clients_from_shards(shards, arch, |_| {
        Box::new(dinar_nn::optim::Adagrad::new(0.05))
    })?
    .build()?)
}

fn global_bits(system: &FlSystem) -> Vec<u32> {
    system
        .global_params()
        .to_flat()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Instrumented run.
    let tel = Telemetry::new();
    let mut system = build_system()?;
    system.set_telemetry(tel.clone());
    system.run(ROUNDS)?;
    let instrumented = global_bits(&system);

    // Consensus layer under the same sink: a mixed honest/Byzantine vote,
    // sized like the DINAR initialization round.
    let mut behaviors = vec![NodeBehavior::Honest { proposal: 1 }; 4];
    behaviors.push(NodeBehavior::byzantine_random());
    simulate_vote_with_telemetry(
        &behaviors,
        &SimConfig {
            num_choices: 4,
            seed: 11,
        },
        &tel,
    )?;

    // Uninstrumented rerun from the same seeds: observation must be free.
    let mut baseline = build_system()?;
    baseline.run(ROUNDS)?;
    let bit_identical = global_bits(&baseline) == instrumented;

    let coverage = export::span_coverage(&tel);
    let tree = export::summary_tree(&tel);
    println!("span summary ({CLIENTS} clients, {ROUNDS} rounds):\n{tree}");
    println!("span coverage: {:.1}%", coverage * 100.0);
    println!("instrumented == uninstrumented: {bit_identical}");

    let spans: Vec<Json> = export::sorted_spans(&tel)
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("path", Json::Str(s.path.clone())),
                ("start_us", Json::Num(s.start_us as f64)),
                ("dur_us", Json::Num(s.dur_us as f64)),
            ])
        })
        .collect();
    let metrics: Vec<Json> = tel
        .metrics()
        .iter()
        .map(|m| {
            let data = match &m.data {
                MetricData::Counter(v) => Json::Num(*v as f64),
                MetricData::Gauge(v) => Json::Num(*v),
                MetricData::Histogram { lo, hi, counts, total } => Json::obj(vec![
                    ("lo", Json::Num(*lo)),
                    ("hi", Json::Num(*hi)),
                    ("total", Json::Num(*total as f64)),
                    (
                        "counts",
                        Json::Arr(counts.iter().map(|&c| Json::Num(c as f64)).collect()),
                    ),
                ]),
            };
            Json::obj(vec![
                ("name", Json::Str(m.name.clone())),
                ("volatile", Json::Bool(m.volatile)),
                ("value", data),
            ])
        })
        .collect();

    let doc = Json::obj(vec![
        ("clients", Json::Num(CLIENTS as f64)),
        ("rounds", Json::Num(ROUNDS as f64)),
        ("span_coverage", Json::Num(coverage)),
        ("bit_identical", Json::Bool(bit_identical)),
        ("spans", Json::Arr(spans)),
        ("metrics", Json::Arr(metrics)),
        ("summary_tree", Json::Str(tree)),
    ]);
    let path = report::write_json("TELEMETRY_fl_round", &doc)?;
    println!("wrote {}", path.display());

    if !bit_identical {
        return Err("instrumented run diverged from uninstrumented baseline".into());
    }
    if coverage < 0.95 {
        return Err(format!("span coverage {coverage:.3} below the 0.95 bar").into());
    }
    Ok(())
}

//! Utility (not a paper figure): runs the full defense lineup on one
//! dataset named on the command line — handy for tuning and spot checks.
//!
//! ```text
//! cargo run --release -p dinar-bench --bin sweep -- cifar10
//! ```
use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_data::catalog::{self, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "purchase100".into());
    let entry = catalog::all(Profile::Mini)
        .into_iter()
        .find(|e| e.name() == name)
        .ok_or("unknown dataset")?;
    let spec = ExperimentSpec::mini_default(entry);
    let mut env = prepare(spec)?;
    println!("dinar layer = {}, sensitivity argmax = {}", env.dinar_layer, env.sensitivity_argmax);
    for defense in Defense::lineup(env.dinar_layer) {
        let o = run_defense(&mut env, &defense)?;
        println!(
            "{:<11} global {:>5.1} local {:>5.1} acc {:>5.1}",
            o.defense, o.global_auc_pct, o.local_auc_pct, o.accuracy_pct
        );
    }
    Ok(())
}

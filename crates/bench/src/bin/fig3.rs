//! Fig. 3: distribution of per-sample model loss for member vs non-member
//! data under No-Defense, LDP, CDP, WDP and DINAR — CIFAR-10.
//!
//! The paper's reading: an effective defense makes the two distributions
//! match (no membership signal) *without* pushing losses high (no utility
//! loss). DP-based defenses match the distributions by inflating everyone's
//! loss; DINAR matches them while keeping losses low on the personalized
//! models.

use dinar_bench::harness::{prepare, train_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_fl::eval::losses_of_params;
use dinar_metrics::histogram::js_divergence_samples;
use dinar_metrics::stats::Summary;
use dinar_tensor::Rng;
use dinar_bench::impl_to_json;


struct Fig3Row {
    defense: String,
    member_losses: Summary,
    nonmember_losses: Summary,
    js_divergence: f64,
}

impl_to_json!(Fig3Row { defense, member_losses, nonmember_losses, js_divergence });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::cifar10(Profile::Mini));
    let entry = spec.entry.clone();
    let env = prepare(spec)?;
    let p = env.dinar_layer;
    let defenses = vec![
        Defense::None,
        Defense::Ldp { epsilon: 2.2 },
        Defense::Cdp { epsilon: 2.2 },
        Defense::Wdp,
        Defense::dinar(p),
    ];
    let mut results = Vec::new();
    let mut rng = Rng::seed_from(env.spec.seed ^ 0xF13);
    let mut template = dinar_bench::harness::model_for(&entry, &mut rng)?;
    let members = env.split.train.subset(&(0..200).collect::<Vec<_>>())?;

    println!("Fig. 3 — loss distributions, member (M) vs non-member (N), CIFAR-10\n");
    for defense in defenses {
        let mut run = train_defense(&env, &defense)?;
        // The paper plots the loss of the *attacked* model. For DINAR the
        // attacked artifact is what leaves the client: evaluate the client
        // upload; its personalized counterpart is the client's live model.
        let target = if matches!(defense, Defense::Dinar { .. }) {
            run.uploads[0].clone()
        } else {
            run.system.global_params().clone()
        };
        let member_losses = losses_of_params(&target, &mut template, &members)?;
        let nonmember_losses = losses_of_params(&target, &mut template, &env.split.test)?;
        let js = js_divergence_samples(&member_losses, &nonmember_losses, 30);

        // For DINAR also report the personalized model's losses (what the
        // client actually uses for predictions).
        let personalized_note = if matches!(defense, Defense::Dinar { .. }) {
            let client_model = run.system.clients_mut()[0].model_mut();
            let personalized = client_model.params();
            let pm = losses_of_params(&personalized, &mut template, &members)?;
            let pn = losses_of_params(&personalized, &mut template, &env.split.test)?;
            format!(
                "  (personalized model: member median {:.3}, non-member median {:.3})",
                Summary::of(&pm).median,
                Summary::of(&pn).median
            )
        } else {
            String::new()
        };

        let ms = Summary::of(&member_losses);
        let ns = Summary::of(&nonmember_losses);
        println!(
            "{:<11} M median {:>6.3} (q1 {:>6.3}, q3 {:>6.3}) | N median {:>6.3} (q1 {:>6.3}, q3 {:>6.3}) | JS {:.4}{}",
            defense.label(), ms.median, ms.q1, ms.q3, ns.median, ns.q1, ns.q3, js, personalized_note
        );
        results.push(Fig3Row {
            defense: defense.label(),
            member_losses: ms,
            nonmember_losses: ns,
            js_divergence: js,
        });
    }
    let path = report::write_json("fig3", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

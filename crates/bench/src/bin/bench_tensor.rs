//! Runs the shared tensor micro-benchmark suite and records
//! `bench-results/BENCH_tensor.json` — the machine-readable perf trajectory
//! for the hot kernels (op, size, ns/iter, threads).
//!
//! Same measurements as `cargo bench -p dinar-bench --bench tensor_ops`;
//! this binary exists so the artifact can be regenerated without the bench
//! profile. Set `DINAR_THREADS=1` for a single-thread baseline run.

use dinar_bench::report::write_json;
use dinar_bench::tensor_suite;
use dinar_bench::timing::Config;

fn main() {
    let entries = match tensor_suite::run(&Config::default()) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("tensor suite failed: {e}");
            std::process::exit(1);
        }
    };
    match write_json("BENCH_tensor", &tensor_suite::to_json(&entries)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_tensor.json: {e}");
            std::process::exit(1);
        }
    }
}

//! Table 1: qualitative comparison of FL privacy-preserving methods.
//!
//! This table is the paper's taxonomy (not a measurement); the rows are
//! reproduced verbatim so that `table3` and `fig6`/`fig7` can be read
//! against it.

use dinar_bench::report;

fn main() {
    let headers = ["Category", "Method", "Model privacy", "Model utility", "Negligible overhead"];
    let rows: Vec<Vec<String>> = [
        ("Cryptography-based", "PEFL", "yes", "yes", "no (severe)"),
        ("Cryptography-based", "HybridAlpha", "yes", "yes", "no (severe)"),
        ("Cryptography-based", "Chen et al.", "yes", "yes", "no (severe)"),
        ("Cryptography-based", "Secure Aggregation", "yes", "yes", "no"),
        ("TEE-based", "MixNN", "yes", "yes", "no (severe)"),
        ("TEE-based", "GradSec", "yes", "yes", "no (severe)"),
        ("TEE-based", "PPFL", "yes", "yes", "no (severe)"),
        ("Perturbation-based", "CDP", "yes", "no", "no"),
        ("Perturbation-based", "LDP", "yes", "no", "no"),
        ("Perturbation-based", "FedGP", "yes", "no", "no"),
        ("Perturbation-based", "WDP", "no", "yes", "no"),
        ("Perturbation-based", "PFA", "yes", "yes", "no"),
        ("Perturbation-based", "MR-MTL", "no", "yes", "no"),
        ("Perturbation-based", "DP-FedSAM", "yes", "yes", "no"),
        ("Perturbation-based", "PrivateFL", "no", "yes", "no"),
        ("Gradient Compression", "Fu et al.", "yes", "yes", "no"),
        ("Our method", "DINAR", "yes", "yes", "yes"),
    ]
    .iter()
    .map(|(a, b, c, d, e)| vec![a.to_string(), b.to_string(), c.to_string(), d.to_string(), e.to_string()])
    .collect();
    println!("Table 1 — Comparison of FL privacy-preserving methods (paper taxonomy)\n");
    print!("{}", report::table(&headers, &rows));
    println!("\nOf these, this repository implements and measures: Secure Aggregation,");
    println!("CDP, LDP, WDP, Gradient Compression, and DINAR (see fig6/fig7/table3).");
}

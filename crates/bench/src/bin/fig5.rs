//! Fig. 5: impact of protecting more than one layer — Purchase100 on the
//! 6-layer FCNN.
//!
//! The paper obfuscates the layer sets {5}, {4,5}, {3,4,5}, {2..5}, {1..5}
//! and {1..6} (1-indexed) and finds that privacy is already optimal with a
//! single layer, while utility degrades as more layers are obfuscated.

use dinar::ObfuscationStrategy;
use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_bench::impl_to_json;


struct Fig5Row {
    obfuscated_layers: Vec<usize>,
    label: String,
    local_auc_pct: f64,
    global_auc_pct: f64,
    accuracy_pct: f64,
}

impl_to_json!(Fig5Row { obfuscated_layers, label, local_auc_pct, global_auc_pct, accuracy_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::purchase100(Profile::Mini));
    let mut env = prepare(spec)?;
    // 1-indexed layer sets from the paper, on a 6-layer network; our layer
    // indices are 0-based, so paper layer k is index k-1.
    let sets: Vec<Vec<usize>> = vec![
        vec![4],             // {5}
        vec![3, 4],          // {4,5}
        vec![2, 3, 4],       // {3,4,5}
        vec![1, 2, 3, 4],    // {2,3,4,5}
        vec![0, 1, 2, 3, 4], // {1,2,3,4,5}
        vec![0, 1, 2, 3, 4, 5], // {1..6}
    ];
    println!("Fig. 5 — multi-layer obfuscation, Purchase100 (6-layer FCNN)\n");
    println!("  obfuscated (1-indexed) | local AUC | global AUC | accuracy");
    let mut results = Vec::new();
    for layers in sets {
        let label = layers
            .iter()
            .map(|l| (l + 1).to_string())
            .collect::<Vec<_>>()
            .join("-");
        let defense = Defense::Dinar {
            layers: layers.clone(),
            strategy: ObfuscationStrategy::Random,
        };
        let o = run_defense(&mut env, &defense)?;
        println!(
            "  {label:>22} | {:>8.1}% | {:>9.1}% | {:>7.1}%",
            o.local_auc_pct, o.global_auc_pct, o.accuracy_pct
        );
        results.push(Fig5Row {
            obfuscated_layers: layers,
            label,
            local_auc_pct: o.local_auc_pct,
            global_auc_pct: o.global_auc_pct,
            accuracy_pct: o.accuracy_pct,
        });
    }
    let path = report::write_json("fig5", &results)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Table 3: overheads of FL defense mechanisms relative to the undefended
//! baseline — client-side training duration per round, server-side
//! aggregation duration, and client memory — GTSRB / VGG11 as in the paper.
//!
//! Paper reference values: WDP +35%/0%/+257%, LDP +7%/0%/+267%,
//! CDP +0%/+3000%/+261%, GC +21%/0%/+252%, SA +21%/+4%/0%,
//! DINAR +0%/+0%/+0%.

use dinar_bench::harness::{prepare, run_defense, Defense, ExperimentSpec};
use dinar_bench::report;
use dinar_data::catalog::{self, Profile};
use dinar_metrics::cost::CostSample;
use dinar_bench::impl_to_json;


struct Table3Row {
    defense: String,
    cost: CostSample,
    client_train_pct: f64,
    server_agg_pct: f64,
    client_mem_pct: f64,
}

impl_to_json!(Table3Row { defense, cost, client_train_pct, server_agg_pct, client_mem_pct });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ExperimentSpec::mini_default(catalog::gtsrb(Profile::Mini));
    let mut env = prepare(spec)?;
    let lineup = Defense::lineup(env.dinar_layer);
    let mut baseline: Option<CostSample> = None;
    let mut rows = Vec::new();
    println!("Table 3 — defense overheads vs FL baseline (GTSRB / VGG11-mini)\n");
    println!("  defense     | train/round | agg/round | client mem | d-train | d-agg | d-mem");
    for defense in lineup {
        let o = run_defense(&mut env, &defense)?;
        let base = *baseline.get_or_insert(o.cost);
        let ov = o.cost.overhead_vs(&base);
        println!(
            "  {:<11} | {:>9.4}s | {:>8.5}s | {:>7.2}MiB | {:>+6.0}% | {:>+4.0}% | {:>+4.0}%",
            o.defense,
            o.cost.client_train_s,
            o.cost.server_agg_s,
            o.cost.client_peak_mem_bytes as f64 / 1048576.0,
            ov.client_train_pct,
            ov.server_agg_pct,
            ov.client_mem_pct
        );
        rows.push(Table3Row {
            defense: o.defense.clone(),
            cost: o.cost,
            client_train_pct: ov.client_train_pct,
            server_agg_pct: ov.server_agg_pct,
            client_mem_pct: ov.client_mem_pct,
        });
    }
    let path = report::write_json("table3", &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

//! Terminal tables and JSON artifacts for experiment binaries.

use dinar_tensor::json::ToJson;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory where experiment binaries drop their JSON artifacts.
pub const RESULTS_DIR: &str = "bench-results";

/// Writes a [`ToJson`] result as pretty JSON under
/// [`RESULTS_DIR`]`/<name>.json`, creating the directory if needed.
///
/// # Errors
///
/// Returns an I/O error.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, value.to_json().dump_pretty())?;
    Ok(path)
}

/// Implements [`ToJson`] for a named-field struct by listing its fields —
/// the replacement for `#[derive(Serialize)]` on experiment row types.
#[macro_export]
macro_rules! impl_to_json {
    ($name:ty { $($field:ident),+ $(,)? }) => {
        impl ::dinar_tensor::json::ToJson for $name {
            fn to_json(&self) -> ::dinar_tensor::json::Json {
                ::dinar_tensor::json::Json::obj(vec![
                    $((stringify!($field), self.$field.to_json())),+
                ])
            }
        }
    };
}

/// Renders a simple aligned table to a string.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats a float as a fixed-precision percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats seconds with millisecond precision.
pub fn secs(x: f64) -> String {
    format!("{:.4}", x)
}

/// Formats bytes as mebibytes.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(61.23456), "61.2");
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.50");
    }
}

//! The shared tensor micro-benchmark suite.
//!
//! One definition of the hot-kernel benchmarks (matmul family, im2col
//! lowering, elementwise, RNG) used by both the `tensor_ops` bench harness
//! and the `bench_tensor` binary, so the printed lines and the recorded
//! `bench-results/BENCH_tensor.json` artifact can never drift apart.
//!
//! Each measurement becomes a [`TensorBenchEntry`] row `(op, size,
//! ns_per_iter, threads)`; `threads` is the pool width the suite ran with
//! ([`dinar_tensor::par::threads`]), so recorded baselines are comparable
//! across runners. Regeneration instructions live in `benches/README.md`.

use crate::impl_to_json;
use crate::timing::{bench, bench_batched, Config, Measurement};
use dinar_tensor::conv::{im2col2d, Conv2dGeom};
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::{par, Rng, Tensor};
use std::hint::black_box;

/// One benchmark result row of the tensor suite.
#[derive(Debug, Clone)]
pub struct TensorBenchEntry {
    /// Operation family (`matmul`, `im2col2d`, `scaled_add_assign`, ...).
    pub op: String,
    /// Problem-size label (`128x128x128`, `100k`, ...).
    pub size: String,
    /// Median wall time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Worker-pool width the measurement ran with.
    pub threads: usize,
}

impl_to_json!(TensorBenchEntry { op, size, ns_per_iter, threads });

fn entry(op: &str, size: &str, m: &Measurement) -> TensorBenchEntry {
    TensorBenchEntry {
        op: op.to_string(),
        size: size.to_string(),
        ns_per_iter: m.median_ns(),
        threads: par::threads(),
    }
}

/// Runs every benchmark in the suite and returns one entry per measurement.
///
/// `config` drives all benchmarks except the elementwise one, which uses
/// [`Config::heavy`] because each iteration needs a fresh (untimed) clone of
/// its input. Results also print as aligned lines, one per benchmark.
///
/// # Errors
///
/// Returns an error if a benchmark's operand shapes are inconsistent — each
/// routine is shape-checked once before its timed loop starts.
pub fn run(config: &Config) -> dinar_tensor::Result<Vec<TensorBenchEntry>> {
    let mut entries = Vec::new();

    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = rng.randn(&[n, n]);
        let b = rng.randn(&[n, n]);
        a.matmul(&b)?; // shape-check once; the timed closure cannot fail
        let m = bench(&format!("matmul/{n}"), config, || black_box(a.matmul(&b)));
        entries.push(entry("matmul", &format!("{n}x{n}x{n}"), &m));
    }

    let mut rng = Rng::seed_from(1);
    let a = rng.randn(&[64, 128]);
    let b = rng.randn(&[96, 128]);
    a.matmul_t(&b)?;
    let m = bench("matmul_t_64x128x96", config, || black_box(a.matmul_t(&b)));
    entries.push(entry("matmul_t", "64x128x96", &m));

    let mut rng = Rng::seed_from(2);
    let x = rng.randn(&[8, 8, 16, 16]);
    let geom = Conv2dGeom {
        channels: 8,
        height: 16,
        width: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    im2col2d(&x, &geom)?;
    let m = bench("im2col2d_8x8x16x16_k3", config, || {
        black_box(im2col2d(&x, &geom))
    });
    entries.push(entry("im2col2d", "8x8x16x16_k3", &m));

    let mut rng = Rng::seed_from(3);
    let a = rng.randn(&[100_000]);
    let b = rng.randn(&[100_000]);
    let mut probe = a.clone();
    probe.scaled_add_assign(0.5, &b)?;
    let m = bench_batched(
        "scaled_add_assign_100k",
        &Config::heavy(),
        || a.clone(),
        |mut t| {
            let _ = t.scaled_add_assign(0.5, &b); // shape-checked above
            black_box(t)
        },
    );
    entries.push(entry("scaled_add_assign", "100k", &m));

    let mut rng = Rng::seed_from(4);
    let m = bench("randn_100k", config, || black_box(rng.randn(&[100_000])));
    entries.push(entry("randn", "100k", &m));

    // Allocation-free sampler variants over the same 100k draw: the
    // (randn − randn_into) gap is the tensor-allocation cost, and either
    // row's ns_per_iter ÷ 100_000 is the bulk sampler's ns/element.
    let mut out = Tensor::zeros(&[100_000]);
    let m = bench("randn_into_100k", config, || {
        rng.randn_into(&mut out);
        black_box(&out);
    });
    entries.push(entry("randn_into", "100k", &m));

    let mut buf = vec![0.0f32; 100_000];
    let m = bench("fill_normal_100k", config, || {
        rng.fill_normal(&mut buf);
        black_box(&buf);
    });
    entries.push(entry("fill_normal", "100k", &m));

    Ok(entries)
}

/// The suite's JSON artifact: `{ threads, entries: [...] }`.
pub fn to_json(entries: &[TensorBenchEntry]) -> Json {
    Json::obj([
        ("threads", par::threads().to_json()),
        ("entries", entries.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn suite_runs_and_serializes() {
        // A near-zero config keeps this a smoke test, not a benchmark.
        let config = Config {
            warmup: Duration::from_millis(0),
            samples: 1,
            target_sample: Duration::from_millis(0),
        };
        let entries = run(&config).expect("static shapes are consistent");
        assert_eq!(entries.len(), 9);
        assert!(entries.iter().all(|e| e.ns_per_iter > 0.0));
        assert!(entries.iter().all(|e| e.threads == par::threads()));

        let json = to_json(&entries);
        let back = Json::parse(&json.dump_pretty()).expect("emitter output parses");
        let rows = back.get("entries").and_then(Json::as_arr).expect("entries");
        assert_eq!(rows.len(), 9);
        assert_eq!(
            rows[2].get("op").and_then(Json::as_str),
            Some("matmul"),
            "third row is matmul/128"
        );
        assert_eq!(rows[2].get("size").and_then(Json::as_str), Some("128x128x128"));
    }
}

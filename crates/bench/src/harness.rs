//! Shared experiment machinery: dataset → model mapping, defense assembly,
//! end-to-end privacy/utility/cost measurement.

use dinar::middleware::DinarMiddleware;
use dinar::{DinarConfig, ObfuscationStrategy};
use dinar_attacks::shadow::{ShadowAttack, ShadowConfig};
use dinar_attacks::evaluate_attack;
use dinar_data::catalog::CatalogEntry;
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::{attack_split, AttackSplit};
use dinar_data::Dataset;
use dinar_defenses::{
    CentralDp, DpOptimizer, DpParams, GradientCompression, SaGroup, SecureAggregation, WeakDp,
};
use dinar_fl::{ClientMiddleware, FlConfig, FlSystem};
use dinar_metrics::cost::CostSample;
use dinar_nn::optim::{self, Optimizer};
use dinar_nn::{Model, ModelParams};
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::Rng;

/// Maximum samples per side when estimating an attack AUC (keeps the
/// evaluation fast without biasing the estimate).
const AUC_EVAL_CAP: usize = 200;

/// A defense configuration under test (the paper's §5.2 baselines + DINAR).
#[derive(Debug, Clone, PartialEq)]
pub enum Defense {
    /// Undefended FL (the baseline of every comparison).
    None,
    /// Weak DP: norm bound 5, σ = 0.025.
    Wdp,
    /// Local DP with the given ε (δ = 10⁻⁵).
    Ldp {
        /// Privacy budget ε.
        epsilon: f32,
    },
    /// Central DP with the given ε (δ = 10⁻⁵).
    Cdp {
        /// Privacy budget ε.
        epsilon: f32,
    },
    /// Gradient compression keeping the given fraction of update entries.
    Gc {
        /// Fraction of entries kept.
        keep_ratio: f32,
    },
    /// Secure aggregation (pairwise masking).
    Sa,
    /// DINAR protecting the given trainable layers.
    Dinar {
        /// Protected layer indices (normally one: the consensus layer).
        layers: Vec<usize>,
        /// Obfuscation strategy.
        strategy: ObfuscationStrategy,
    },
}

impl Defense {
    /// The paper's seven-column defense lineup, given DINAR's layer `p`.
    pub fn lineup(dinar_layer: usize) -> Vec<Defense> {
        vec![
            Defense::None,
            Defense::Wdp,
            Defense::Ldp { epsilon: 2.2 },
            Defense::Cdp { epsilon: 2.2 },
            Defense::Gc { keep_ratio: 0.1 },
            Defense::Sa,
            Defense::dinar(dinar_layer),
        ]
    }

    /// Standard single-layer DINAR with random-value obfuscation.
    pub fn dinar(layer: usize) -> Defense {
        Defense::Dinar {
            layers: vec![layer],
            strategy: ObfuscationStrategy::Random,
        }
    }

    /// Column label used in reports (matching the paper's figures).
    pub fn label(&self) -> String {
        match self {
            Defense::None => "No defense".into(),
            Defense::Wdp => "WDP".into(),
            Defense::Ldp { .. } => "LDP".into(),
            Defense::Cdp { .. } => "CDP".into(),
            Defense::Gc { .. } => "GC".into(),
            Defense::Sa => "SA".into(),
            Defense::Dinar { .. } => "DINAR".into(),
        }
    }
}

/// Parameters of one experiment (dataset × FL configuration).
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Dataset to generate.
    pub entry: CatalogEntry,
    /// Number of FL clients (the paper uses 5, or 10 for Purchase100).
    pub clients: usize,
    /// FL rounds.
    pub rounds: usize,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Baseline optimizer (name, learning rate) — the paper trains baselines
    /// at lr 1e-3.
    pub baseline_opt: (&'static str, f32),
    /// DINAR optimizer (name, learning rate) — Algorithm 1 uses Adagrad.
    pub dinar_opt: (&'static str, f32),
    /// Client data distribution.
    pub distribution: Distribution,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// The CPU-scale default for a catalog dataset: mirrors the paper's §5.3
    /// choices (5 clients, 10 for Purchase100; batch 64) with round counts
    /// scaled to the mini profiles.
    pub fn mini_default(entry: CatalogEntry) -> Self {
        let clients = if entry.name() == "purchase100" { 10 } else { 5 };
        let (rounds, local_epochs) = match entry.name() {
            "purchase100" => (15, 10),
            "texas100" => (12, 5),
            // The VGG11-mini tasks need a longer plateau escape.
            "gtsrb" | "celeba" => (20, 5),
            _ => (10, 5),
        };
        ExperimentSpec {
            entry,
            clients,
            rounds,
            local_epochs,
            batch_size: 64,
            baseline_opt: ("adagrad", 0.05),
            dinar_opt: ("adagrad", 0.05),
            distribution: Distribution::Iid,
            seed: 42,
        }
    }
}

/// Builds the paper's model for a dataset (Table 2 mapping, mini profiles).
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn model_for(entry: &CatalogEntry, rng: &mut Rng) -> dinar_nn::Result<Model> {
    use dinar_nn::models;
    let classes = entry.spec.num_classes;
    match entry.name() {
        "cifar10" | "cifar100" => models::resnet_mini(3, classes, rng),
        "gtsrb" => models::vgg11_mini(3, classes, rng),
        "celeba" => models::vgg11_mini(1, classes, rng),
        "speech_commands" => models::m18_mini(classes, rng),
        _ => {
            let features = entry.spec.modality.feature_len();
            models::fcnn6(features, classes, 64, rng)
        }
    }
}

/// A prepared experiment environment, reusable across defenses so every
/// defense sees the same data, the same initial model distribution, and the
/// same fitted attacker.
pub struct Environment {
    /// The experiment parameters.
    pub spec: ExperimentSpec,
    /// Attacker/train/test split.
    pub split: AttackSplit,
    /// Per-client shards of the train pool.
    pub shards: Vec<Dataset>,
    /// The fitted shadow-model attack.
    pub attack: ShadowAttack,
    /// The layer DINAR protects in the figures: the penultimate trainable
    /// layer, where the paper reports the consensus converges (§4.1). See
    /// EXPERIMENTS.md for why this is pinned rather than taken from
    /// [`Environment::sensitivity_argmax`] on synthetic substitutes.
    pub dinar_layer: usize,
    /// The argmax of our own divergence measurement on this environment's
    /// data (reported in fig1/fig4; used by ablations).
    pub sensitivity_argmax: usize,
}

impl std::fmt::Debug for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Environment")
            .field("dataset", &self.spec.entry.name())
            .field("clients", &self.spec.clients)
            .field("dinar_layer", &self.dinar_layer)
            .finish()
    }
}

/// Prepares an environment: generates the data, performs the paper's splits,
/// fits the shadow attack on the attacker half, and determines DINAR's layer
/// via the initialization analysis.
///
/// # Errors
///
/// Propagates data, training and attack-fitting errors.
pub fn prepare(spec: ExperimentSpec) -> Result<Environment, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(spec.seed);
    let dataset = spec.entry.generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    let shards = partition_dataset(&split.train, spec.clients, spec.distribution, &mut rng)?;

    // Fit the shadow attack on the attacker's half.
    let mut attack = ShadowAttack::new(ShadowConfig {
        num_shadows: 3,
        shadow_epochs: spec.rounds * spec.local_epochs,
        batch_size: spec.batch_size,
        lr: spec.baseline_opt.1,
        optimizer: spec.baseline_opt.0,
        attack_epochs: 80,
        seed: spec.seed ^ 0xA77A,
    });
    let entry = spec.entry.clone();
    attack.fit(&split.attacker, move |rng| model_for(&entry, rng))?;

    // DINAR initialization: one representative client's sensitivity probe
    // (all honest clients converge to the same argmax on IID shards; the
    // full Byzantine vote is exercised in `dinar::init` tests and fig1).
    let mut init_rng = rng.split(0xD1AA);
    let mut probe_model = model_for(&spec.entry, &mut init_rng)?;
    let probe_members = shards[0].clone();
    let sensitivity_argmax = dinar::init::client_proposal(
        &mut probe_model,
        &probe_members,
        &split.test,
        &dinar::init::InitConfig {
            warmup_epochs: spec.rounds * spec.local_epochs / 2,
            batch_size: spec.batch_size,
            lr: spec.dinar_opt.1,
            ..dinar::init::InitConfig::default()
        },
        &mut init_rng,
    )?;

    let dinar_layer = probe_model.num_trainable_layers().saturating_sub(2);
    Ok(Environment {
        spec,
        split,
        shards,
        attack,
        dinar_layer,
        sensitivity_argmax,
    })
}

/// Prepares a training-only environment: data, splits and shards as in
/// [`prepare`], but with an *unfitted* shadow attack and no sensitivity
/// probe. Sufficient for [`train_defense`] (which never touches the
/// attack) and orders of magnitude cheaper, so audit and overhead
/// binaries can train the full defense lineup quickly; calling
/// [`evaluate_run`] on such an environment is an error.
///
/// # Errors
///
/// Propagates data-generation and partitioning errors.
pub fn prepare_training_only(
    spec: ExperimentSpec,
) -> Result<Environment, Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(spec.seed);
    let dataset = spec.entry.generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    let shards = partition_dataset(&split.train, spec.clients, spec.distribution, &mut rng)?;
    let attack = ShadowAttack::new(ShadowConfig {
        num_shadows: 1,
        shadow_epochs: 1,
        batch_size: spec.batch_size,
        lr: spec.baseline_opt.1,
        optimizer: spec.baseline_opt.0,
        attack_epochs: 1,
        seed: spec.seed ^ 0xA77A,
    });
    let dinar_layer = model_for(&spec.entry, &mut rng)?
        .num_trainable_layers()
        .saturating_sub(2);
    Ok(Environment {
        spec,
        split,
        shards,
        attack,
        dinar_layer,
        sensitivity_argmax: dinar_layer,
    })
}

/// The measured outcome of one (dataset, defense) run — one cell of the
/// paper's evaluation.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Dataset name.
    pub dataset: String,
    /// Defense label.
    pub defense: String,
    /// Attack AUC against the global model, in percent (Fig. 6 left).
    pub global_auc_pct: f64,
    /// Mean attack AUC against client uploads, in percent (Fig. 6 right).
    pub local_auc_pct: f64,
    /// Mean personalized-client accuracy on held-out test data, in percent.
    pub accuracy_pct: f64,
    /// Mean per-round costs.
    pub cost: CostSample,
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dataset", self.dataset.to_json()),
            ("defense", self.defense.to_json()),
            ("global_auc_pct", self.global_auc_pct.to_json()),
            ("local_auc_pct", self.local_auc_pct.to_json()),
            ("accuracy_pct", self.accuracy_pct.to_json()),
            ("cost", self.cost.to_json()),
        ])
    }
}

impl Outcome {
    /// Reconstructs an outcome from its [`ToJson`] encoding (used to reuse a
    /// previous run's `fig6.json` artifact).
    ///
    /// Returns `None` if any field is missing or has the wrong type.
    pub fn from_json(value: &Json) -> Option<Self> {
        Some(Outcome {
            dataset: value.get("dataset").and_then(Json::as_str)?.to_string(),
            defense: value.get("defense").and_then(Json::as_str)?.to_string(),
            global_auc_pct: value.get("global_auc_pct").and_then(Json::as_f64)?,
            local_auc_pct: value.get("local_auc_pct").and_then(Json::as_f64)?,
            accuracy_pct: value.get("accuracy_pct").and_then(Json::as_f64)?,
            cost: CostSample::from_json(value.get("cost")?)?,
        })
    }
}

/// A trained FL system plus the artifacts the evaluations need.
#[derive(Debug)]
pub struct TrainedRun {
    /// The trained system (clients hold personalized end-of-training models).
    pub system: FlSystem,
    /// The final per-client uploads, as the server-side attacker sees them.
    pub uploads: Vec<ModelParams>,
    /// Mean per-round cost sample.
    pub cost: CostSample,
}

/// Trains one defense configuration on a prepared environment, returning the
/// trained system for further inspection (loss distributions, per-layer
/// experiments).
///
/// Opt-in profiling: setting `DINAR_PROFILE=1` attaches a fresh telemetry
/// sink for the training run and prints the span summary tree and the
/// privacy-ledger report to stderr afterwards, so any figure/table binary
/// can be profiled without a rebuild. For programmatic access to the sink
/// (audit artifacts, overhead benches) use
/// [`train_defense_with_telemetry`] directly.
///
/// # Errors
///
/// Propagates FL and middleware errors.
pub fn train_defense(
    env: &Environment,
    defense: &Defense,
) -> Result<TrainedRun, Box<dyn std::error::Error>> {
    let profiling = std::env::var_os("DINAR_PROFILE").is_some();
    let telemetry = if profiling {
        dinar_telemetry::Telemetry::new()
    } else {
        dinar_telemetry::Telemetry::disabled()
    };
    let run = train_defense_with_telemetry(env, defense, &telemetry)?;
    if profiling {
        eprintln!(
            "DINAR_PROFILE [{} / {}]:\n{}",
            env.spec.entry.name(),
            defense.label(),
            dinar_telemetry::export::summary_tree(&telemetry)
        );
        eprintln!("privacy ledger: {}", telemetry.privacy_report().dump());
    }
    Ok(run)
}

/// [`train_defense`] with a caller-supplied telemetry sink.
///
/// When `telemetry` is enabled it is attached to every client, optimizer
/// and middleware before training (so defense transforms charge the
/// privacy ledger and spans/metrics record), the flight recorder is armed,
/// and after the run the Perfetto trace is written if `DINAR_TRACE` names
/// a path. A [`Telemetry::disabled`] sink makes this identical to an
/// unobserved run.
///
/// # Errors
///
/// Propagates FL and middleware errors.
pub fn train_defense_with_telemetry(
    env: &Environment,
    defense: &Defense,
    telemetry: &dinar_telemetry::Telemetry,
) -> Result<TrainedRun, Box<dyn std::error::Error>> {
    let spec = &env.spec;
    let entry = spec.entry.clone();
    let is_dinar = matches!(defense, Defense::Dinar { .. });

    let fl_config = FlConfig {
        local_epochs: spec.local_epochs,
        batch_size: spec.batch_size,
        seed: spec.seed,
    };
    let (opt_name, opt_lr) = if is_dinar {
        spec.dinar_opt
    } else {
        spec.baseline_opt
    };
    // LDP trains with Opacus-style DP-SGD: gradient clipping + noise at
    // every step, wrapped around Adam (see EXPERIMENTS.md for calibration).
    let ldp_eps = match defense {
        Defense::Ldp { epsilon } => Some(*epsilon),
        _ => None,
    };
    let opt_seed = spec.seed;
    let mut builder = FlSystem::builder(fl_config).clients_from_shards(
        env.shards.clone(),
        |rng| model_for(&entry, rng),
        move |id| -> Box<dyn Optimizer> {
            match ldp_eps {
                Some(epsilon) => Box::new(
                    DpOptimizer::new(
                        optim::by_name("adam", 1e-3).expect("adam exists"),
                        DpParams::paper_default().with_epsilon(epsilon),
                        Rng::seed_from(opt_seed ^ 0xD9 ^ ((id as u64) << 16)),
                    )
                    .with_amortization_over(2),
                ),
                None => optim::by_name(opt_name, opt_lr)
                    .expect("optimizer names are validated in specs"),
            }
        },
    )?;

    // Client-side middleware.
    let sample_counts: Vec<usize> = env.shards.iter().map(Dataset::len).collect();
    let seed = spec.seed;
    match defense.clone() {
        Defense::None | Defense::Cdp { .. } => {}
        Defense::Wdp => {
            builder = builder.with_client_middleware(|id| {
                vec![Box::new(WeakDp::paper_default(Rng::seed_from(
                    seed ^ (id as u64) << 8,
                ))) as Box<dyn ClientMiddleware>]
            });
        }
        // LDP is handled in the optimizer factory (training-time DP-SGD).
        Defense::Ldp { .. } => {}
        Defense::Gc { keep_ratio } => {
            builder = builder.with_client_middleware(move |_| {
                vec![Box::new(
                    GradientCompression::new(keep_ratio).with_error_feedback(false),
                ) as Box<dyn ClientMiddleware>]
            });
        }
        Defense::Sa => {
            let group = SaGroup::from_sample_counts(&sample_counts, seed ^ 0x5A);
            builder = builder.with_client_middleware(move |_| {
                vec![Box::new(SecureAggregation::new(std::sync::Arc::clone(&group)))
                    as Box<dyn ClientMiddleware>]
            });
        }
        Defense::Dinar { layers, strategy } => {
            let config = DinarConfig {
                strategy,
                ..DinarConfig::default()
            };
            builder = builder.with_client_middleware(move |id| {
                vec![Box::new(DinarMiddleware::multi(
                    layers.clone(),
                    config,
                    seed ^ id as u64,
                )) as Box<dyn ClientMiddleware>]
            });
        }
    }
    // Server-side middleware.
    if let Defense::Cdp { epsilon } = defense {
        let mut dp = DpParams::paper_default().with_epsilon(*epsilon);
        dp.clip_norm = 1.0; // tighter aggregate clipping; see EXPERIMENTS.md
        builder = builder.with_server_middleware(Box::new(CentralDp::new(
            dp,
            1, // full-strength central noise
            Rng::seed_from(seed ^ 0xCD),
        )));
    }

    let mut system = builder.build()?;
    if telemetry.is_enabled() {
        telemetry.flight_arm();
        system.set_telemetry(telemetry.clone()); // lint: allow(L009, telemetry handle, not params)
    }
    let reports = system.run(spec.rounds)?;
    if telemetry.is_enabled() {
        dinar_telemetry::export::write_trace_if_requested(telemetry);
    }
    let cost = CostSample {
        client_train_s: reports.iter().map(|r| r.cost.client_train_s).sum::<f64>()
            / reports.len().max(1) as f64,
        server_agg_s: reports.iter().map(|r| r.cost.server_agg_s).sum::<f64>()
            / reports.len().max(1) as f64,
        client_peak_mem_bytes: reports
            .iter()
            .map(|r| r.cost.client_peak_mem_bytes)
            .max()
            .unwrap_or(0),
    };

    // Final pass: every client downloads the final global model, trains, and
    // produces one more upload; this gives us (a) the per-client uploads the
    // server-side attacker sees and (b) personalized client models for the
    // utility metric.
    let global = system.global_params().clone();
    let mut uploads: Vec<ModelParams> = Vec::new();
    for client in system.clients_mut() {
        client.receive_global(&global)?;
        client.train_local()?;
        uploads.push(client.produce_update()?.params);
    }
    Ok(TrainedRun {
        system,
        uploads,
        cost,
    })
}

/// Evaluates a trained run: attack AUC on the global model and on every
/// client upload, plus the utility metric.
///
/// # Errors
///
/// Propagates attack and evaluation errors.
pub fn evaluate_run(
    env: &mut Environment,
    run: &mut TrainedRun,
    defense_label: String,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let spec = &env.spec;
    let mut rng = Rng::seed_from(spec.seed ^ 0xE7A1);
    let mut template = model_for(&spec.entry, &mut rng)?;

    // Attack the global model: members are the train pool, non-members the
    // test set.
    let members = subsample(&env.split.train, AUC_EVAL_CAP, &mut rng)?;
    let nonmembers = subsample(&env.split.test, AUC_EVAL_CAP, &mut rng)?;
    let global_result = evaluate_attack(
        &mut env.attack,
        run.system.global_params(),
        &mut template,
        &members,
        &nonmembers,
    )?;

    // Attack each client upload: members are that client's own shard.
    let mut local_sum = 0.0;
    for (client, upload) in run.system.clients().iter().zip(&run.uploads) {
        let client_members = subsample(client.data(), AUC_EVAL_CAP, &mut rng)?;
        let result = evaluate_attack(
            &mut env.attack,
            upload,
            &mut template,
            &client_members,
            &nonmembers,
        )?;
        local_sum += result.auc;
    }
    let local_auc = local_sum / run.system.clients().len() as f64;

    // Utility: personalized client models on held-out test data.
    let accuracy = run.system.mean_client_accuracy(&env.split.test)?;

    Ok(Outcome {
        dataset: spec.entry.name().to_string(),
        defense: defense_label,
        global_auc_pct: global_result.auc * 100.0,
        local_auc_pct: local_auc * 100.0,
        accuracy_pct: accuracy as f64 * 100.0,
        cost: run.cost,
    })
}

/// Trains and evaluates one defense on a prepared environment — one cell of
/// the paper's evaluation grid.
///
/// # Errors
///
/// Propagates FL, middleware and attack errors.
pub fn run_defense(
    env: &mut Environment,
    defense: &Defense,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let mut run = train_defense(env, defense)?;
    evaluate_run(env, &mut run, defense.label())
}

/// A uniformly subsampled copy of a dataset (or the dataset itself if small).
fn subsample(ds: &Dataset, cap: usize, rng: &mut Rng) -> dinar_data::Result<Dataset> {
    if ds.len() <= cap {
        return ds.subset(&(0..ds.len()).collect::<Vec<_>>());
    }
    let mut perm = rng.permutation(ds.len());
    perm.truncate(cap);
    ds.subset(&perm)
}

//! Batch normalization.
//!
//! One implementation covers the 2-D (`[n, c, h, w]`), 1-D (`[n, c, len]`)
//! and dense (`[n, c]`) cases by normalizing per channel across all other
//! dimensions. Running statistics are exposed as *buffers* — state that is
//! part of the model (and is exchanged in federated aggregation) but is not
//! touched by optimizers.

use crate::{Layer, NnError, Result};
use dinar_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch normalization over the channel dimension.
///
/// # Example
///
/// ```
/// use dinar_nn::{norm::BatchNorm, Layer};
/// use dinar_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut bn = BatchNorm::new(4);
/// let x = rng.randn_with(&[8, 4, 2, 2], 3.0, 2.0);
/// let y = bn.forward(&x, true)?;
/// // Normalized output has (approximately) zero mean.
/// assert!(y.mean().abs() < 0.05);
/// # Ok::<(), dinar_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct BatchNorm {
    channels: usize,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    cached: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-norm layer for `channels` channels with PyTorch's
    /// default momentum of 0.1.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cached: None,
        }
    }

    fn check_shape(&self, shape: &[usize]) -> Result<(usize, usize)> {
        if shape.len() < 2 || shape[1] != self.channels {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "batchnorm({}) expects [n, {}, ...] input, got {shape:?}",
                    self.channels, self.channels
                ),
            });
        }
        Ok((shape[0], shape[2..].iter().product::<usize>().max(1)))
    }

    /// Running (inference-time) mean and variance buffers.
    pub fn running_stats(&self) -> (&Tensor, &Tensor) {
        (&self.running_mean, &self.running_var)
    }

    /// Mutable access to the running statistics (used when restoring model
    /// state received from the FL server).
    pub fn running_stats_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.running_mean, &mut self.running_var)
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        let (n, spatial) = self.check_shape(&shape)?;
        let c = self.channels;
        let m = (n * spatial) as f32;
        let x = input.as_slice();

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * spatial;
                    for s in 0..spatial {
                        mean[ch] += x[base + s];
                    }
                }
            }
            for v in &mut mean {
                *v /= m;
            }
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * spatial;
                    for s in 0..spatial {
                        let d = x[base + s] - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= m;
            }
            // Update running buffers.
            for ch in 0..c {
                let rm = self.running_mean.as_mut_slice();
                rm[ch] = (1.0 - self.momentum) * rm[ch] + self.momentum * mean[ch];
                let rv = self.running_var.as_mut_slice();
                rv[ch] = (1.0 - self.momentum) * rv[ch] + self.momentum * var[ch];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let g = self.gamma.as_slice();
        let b = self.beta.as_slice();
        let mut xhat = vec![0.0f32; x.len()];
        let mut out = vec![0.0f32; x.len()];
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * spatial;
                for s in 0..spatial {
                    let h = (x[base + s] - mean[ch]) * inv_std[ch];
                    xhat[base + s] = h;
                    out[base + s] = g[ch] * h + b[ch];
                }
            }
        }
        if train {
            self.cached = Some(BnCache {
                xhat: Tensor::from_vec(xhat, &shape)?,
                inv_std,
                input_shape: shape.clone(),
            });
        } else {
            // Inference backward (rarely used) needs inv_std too.
            self.cached = Some(BnCache {
                xhat: Tensor::from_vec(xhat, &shape)?,
                inv_std,
                input_shape: shape.clone(),
            });
        }
        Ok(Tensor::from_vec(out, &shape)?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "batchnorm" })?;
        let shape = &cache.input_shape;
        let (n, spatial) = self.check_shape(shape)?;
        let c = self.channels;
        let m = (n * spatial) as f32;
        let dy = grad_output.as_slice();
        let xh = cache.xhat.as_slice();

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * spatial;
                for s in 0..spatial {
                    sum_dy[ch] += dy[base + s];
                    sum_dy_xhat[ch] += dy[base + s] * xh[base + s];
                }
            }
        }
        for ch in 0..c {
            let gg = self.grad_gamma.as_mut_slice();
            gg[ch] += sum_dy_xhat[ch];
            let gb = self.grad_beta.as_mut_slice();
            gb[ch] += sum_dy[ch];
        }

        let g = self.gamma.as_slice();
        let mut grad_in = vec![0.0f32; dy.len()];
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * spatial;
                let k = g[ch] * cache.inv_std[ch];
                let mean_dy = sum_dy[ch] / m;
                let mean_dy_xhat = sum_dy_xhat[ch] / m;
                for s in 0..spatial {
                    grad_in[base + s] =
                        k * (dy[base + s] - mean_dy - xh[base + s] * mean_dy_xhat);
                }
            }
        }
        Ok(Tensor::from_vec(grad_in, shape)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_gamma, &mut self.grad_beta]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.gamma, &self.grad_gamma),
            (&mut self.beta, &self.grad_beta),
        ]
    }

    fn buffers(&self) -> Vec<&Tensor> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    fn zero_grad(&mut self) {
        self.grad_gamma.map_inplace(|_| 0.0);
        self.grad_beta.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }

    fn clear_cache(&mut self) {
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    #[test]
    fn train_forward_normalizes_per_channel() {
        let mut rng = Rng::seed_from(0);
        let mut bn = BatchNorm::new(2);
        // Channel 0 ~ N(5, 4), channel 1 ~ N(-3, 1).
        let mut x = Tensor::zeros(&[64, 2, 4]);
        for i in 0..64 {
            for s in 0..4 {
                x.set(&[i, 0, s], rng.normal_with(5.0, 2.0)).unwrap();
                x.set(&[i, 1, s], rng.normal_with(-3.0, 1.0)).unwrap();
            }
        }
        let y = bn.forward(&x, true).unwrap();
        // Each channel of the output should be ~N(0, 1).
        let mut ch0 = Vec::new();
        let mut ch1 = Vec::new();
        for i in 0..64 {
            for s in 0..4 {
                ch0.push(y.get(&[i, 0, s]).unwrap());
                ch1.push(y.get(&[i, 1, s]).unwrap());
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let var = |v: &[f32]| {
            let m = mean(v);
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(mean(&ch0).abs() < 1e-4);
        assert!(mean(&ch1).abs() < 1e-4);
        assert!((var(&ch0) - 1.0).abs() < 1e-2);
        assert!((var(&ch1) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = Rng::seed_from(1);
        let mut bn = BatchNorm::new(1);
        // Train on shifted data long enough for the running mean to move.
        for _ in 0..200 {
            let x = rng.randn_with(&[32, 1], 10.0, 1.0);
            bn.forward(&x, true).unwrap();
        }
        let (rm, rv) = bn.running_stats();
        assert!((rm.as_slice()[0] - 10.0).abs() < 0.5);
        assert!((rv.as_slice()[0] - 1.0).abs() < 0.5);
        // In eval mode a sample at the running mean maps near zero.
        let x = Tensor::from_vec(vec![10.0], &[1, 1]).unwrap();
        let y = bn.forward(&x, false).unwrap();
        assert!(y.as_slice()[0].abs() < 0.5);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(2);
        let mut bn = BatchNorm::new(2);
        let x = rng.randn(&[4, 2, 3]);
        let y = bn.forward(&x, true).unwrap();
        // Objective: weighted sum to create non-uniform dy.
        let w = rng.randn(y.shape());
        let f0 = y.mul(&w).unwrap().sum();
        let gx = bn.backward(&w).unwrap();

        let eps = 1e-2;
        for &idx in &[[0usize, 0, 0], [3, 1, 2], [2, 0, 1]] {
            let mut x2 = x.clone();
            let old = x2.get(&idx).unwrap();
            x2.set(&idx, old + eps).unwrap();
            let mut bn2 = BatchNorm::new(2);
            bn2.gamma = bn.gamma.clone();
            bn2.beta = bn.beta.clone();
            let f1 = bn2.forward(&x2, true).unwrap().mul(&w).unwrap().sum();
            let numeric = (f1 - f0) / eps;
            let analytic = gx.get(&idx).unwrap();
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "dx{idx:?} numeric={numeric} analytic={analytic}"
            );
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut rng = Rng::seed_from(3);
        let mut bn = BatchNorm::new(2);
        let x = rng.randn(&[8, 2]);
        let y = bn.forward(&x, true).unwrap();
        bn.backward(&Tensor::ones(y.shape())).unwrap();
        // dBeta = sum of dy = batch size per channel.
        assert!(bn
            .grad_beta
            .approx_eq(&Tensor::from_slice(&[8.0, 8.0]), 1e-5));
        // dGamma = sum of xhat which is ~0 because xhat is normalized.
        assert!(bn.grad_gamma.as_slice().iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm::new(3);
        let x = Tensor::zeros(&[2, 2, 4]);
        assert!(bn.forward(&x, true).is_err());
    }
}

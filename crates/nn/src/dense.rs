//! Fully-connected (dense) layer.

use crate::{init, Layer, NnError, Result};
use dinar_tensor::{Rng, Tensor};

/// A fully-connected layer: `y = x·W + b`.
///
/// `W` has shape `[in_features, out_features]`, `b` has shape
/// `[out_features]`; inputs are `[batch, in_features]`.
///
/// # Example
///
/// ```
/// use dinar_nn::{dense::Dense, Layer};
/// use dinar_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut layer = Dense::xavier(3, 2, &mut rng);
/// let x = rng.randn(&[4, 3]);
/// let y = layer.forward(&x, true)?;
/// assert_eq!(y.shape(), &[4, 2]);
/// # Ok::<(), dinar_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights (use before ReLU).
    pub fn he(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Self::with_weight(init::he_normal(rng, &[in_features, out_features], in_features))
    }

    /// Creates a dense layer with Xavier-uniform weights (use before Tanh).
    pub fn xavier(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Self::with_weight(init::xavier_uniform(
            rng,
            &[in_features, out_features],
            in_features,
            out_features,
        ))
    }

    fn with_weight(weight: Tensor) -> Self {
        let out_features = weight.shape()[1];
        Dense {
            grad_weight: Tensor::zeros_like(&weight),
            grad_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let y = input.matmul(&self.weight)?.add_row_broadcast(&self.bias)?;
        self.cached_input = Some(input.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "dense" })?;
        // dW += xᵀ · dy ; db += column sums of dy ; dx = dy · Wᵀ
        let gw = input.t_matmul(grad_output)?;
        self.grad_weight.add_assign(&gw)?;
        let gb = grad_output.sum_rows()?;
        self.grad_bias.add_assign(&gb)?;
        Ok(grad_output.matmul_t(&self.weight)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.weight, &self.grad_weight),
            (&mut self.bias, &self.grad_bias),
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the dense layer's gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(42);
        let mut layer = Dense::xavier(4, 3, &mut rng);
        let x = rng.randn(&[2, 4]);
        // Scalar objective: sum of outputs.
        let grad_out = Tensor::ones(&[2, 3]);
        let y = layer.forward(&x, true).unwrap();
        let f0 = y.sum();
        let gx = layer.backward(&grad_out).unwrap();

        let eps = 1e-3;
        // Check dW numerically for a few entries.
        for &(i, j) in &[(0, 0), (1, 2), (3, 1)] {
            let mut bumped = Dense::with_weight(layer.weight.clone());
            bumped.bias = layer.bias.clone();
            let old = bumped.weight.get(&[i, j]).unwrap();
            bumped.weight.set(&[i, j], old + eps).unwrap();
            let f1 = bumped.forward(&x, true).unwrap().sum();
            let numeric = (f1 - f0) / eps;
            let analytic = layer.grad_weight.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{i},{j}] numeric={numeric} analytic={analytic}"
            );
        }
        // Check dx numerically for one entry.
        let mut x2 = x.clone();
        let old = x2.get(&[1, 3]).unwrap();
        x2.set(&[1, 3], old + eps).unwrap();
        let f1 = layer.forward(&x2, true).unwrap().sum();
        let numeric = (f1 - f0) / eps;
        let analytic = gx.get(&[1, 3]).unwrap();
        assert!((numeric - analytic).abs() < 1e-2);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = Rng::seed_from(1);
        let mut layer = Dense::he(2, 2, &mut rng);
        let x = rng.randn(&[3, 2]);
        layer.forward(&x, true).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        layer.backward(&grad_out).unwrap();
        assert_eq!(layer.grad_bias.as_slice(), &[9.0, 12.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Rng::seed_from(2);
        let mut layer = Dense::he(2, 2, &mut rng);
        let x = rng.randn(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        let first = layer.grad_weight.clone();
        layer.forward(&x, true).unwrap();
        layer.backward(&g).unwrap();
        assert!(layer.grad_weight.approx_eq(&first.mul_scalar(2.0), 1e-6));
        layer.zero_grad();
        assert_eq!(layer.grad_weight.sum(), 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = Rng::seed_from(3);
        let mut layer = Dense::he(2, 2, &mut rng);
        let g = Tensor::ones(&[1, 2]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::BackwardBeforeForward { layer: "dense" })
        ));
    }
}

//! Borrowed flat views over parameter sets — the parameter plane.
//!
//! Defenses (clip + noise, magnitude pruning), DINAR obfuscation and attack
//! feature extraction all consume model parameters as a flat sequence of
//! scalars. Before this module they each materialized that sequence with
//! [`ModelParams::to_flat`] — a full copy per hop. A [`ParamView`] walks the
//! layer/tensor structure in place and hands out borrowed slices instead; a
//! [`ParamViewMut`] does the same for writers, paying the copy-on-write
//! materialization only for tensors that are actually written.
//!
//! Reductions preserve the exact floating-point association of the
//! [`LayerParams::l2_norm`]/[`ModelParams::l2_norm`] they replace (per-tensor
//! `f32`-rounded norms squared in `f64` within a layer, per-layer
//! `f32`-rounded norms squared in `f64` across layers), so switching a
//! consumer from flat copies to views is bit-invisible.

use crate::params::{LayerParams, ModelParams};
use dinar_tensor::{cast, Tensor};

/// A read-only flat view over a parameter set (one or more layers).
///
/// Holds borrowed layer references, so constructing it copies nothing and
/// the structural reductions can respect layer boundaries.
#[derive(Debug)]
pub struct ParamView<'a> {
    layers: Vec<&'a LayerParams>,
}

impl<'a> ParamView<'a> {
    /// View over every layer of a model.
    pub fn of_model(params: &'a ModelParams) -> Self {
        ParamView {
            layers: params.layers.iter().collect(),
        }
    }

    /// View over a single layer.
    pub fn of_layer(layer: &'a LayerParams) -> Self {
        ParamView {
            layers: vec![layer],
        }
    }

    /// The viewed tensors, in canonical (layer-major) order.
    pub fn tensors(&self) -> impl Iterator<Item = &'a Tensor> + '_ {
        self.layers.iter().flat_map(|l| l.tensors.iter())
    }

    /// The viewed buffers as borrowed slices, in canonical order.
    pub fn slices(&self) -> impl Iterator<Item = &'a [f32]> + '_ {
        self.tensors().map(Tensor::as_slice)
    }

    /// Total number of scalars in the view.
    pub fn param_count(&self) -> usize {
        self.tensors().map(Tensor::len).sum()
    }

    /// L2 norm of the viewed scalars (see [`ParamView::norm_and_count`]).
    pub fn l2_norm(&self) -> f32 {
        self.norm_and_count().0
    }

    /// L2 norm and scalar count in a single pass over the view.
    ///
    /// The norm reproduces the association order of the nested
    /// `ModelParams::l2_norm` it replaces bit-for-bit: each tensor's norm is
    /// rounded to `f32`, squared and summed in `f64` within its layer; each
    /// layer's norm is rounded to `f32`, squared and summed in `f64` across
    /// layers. (For a single-layer view the outer round-trip is exact: an
    /// `f32`-precision value squares exactly in `f64`, and the correctly
    /// rounded square root recovers it.)
    pub fn norm_and_count(&self) -> (f32, usize) {
        let mut count = 0usize;
        let mut model_acc = 0f64;
        for l in &self.layers {
            let mut layer_acc = 0f64;
            for t in &l.tensors {
                count += t.len();
                let n = f64::from(t.norm_l2());
                layer_acc += n * n;
            }
            let ln = f64::from(cast::f64_to_f32(layer_acc.sqrt()));
            model_acc += ln * ln;
        }
        (cast::f64_to_f32(model_acc.sqrt()), count)
    }
}

/// A mutable flat view over a parameter set.
///
/// Writers iterate per-tensor mutable slices; each slice access is the COW
/// mutation point of its tensor, so only tensors that are actually written
/// materialize private buffers.
#[derive(Debug)]
pub struct ParamViewMut<'a> {
    tensors: Vec<&'a mut Tensor>,
}

impl<'a> ParamViewMut<'a> {
    /// Mutable view over every layer of a model.
    pub fn of_model(params: &'a mut ModelParams) -> Self {
        ParamViewMut {
            tensors: params
                .layers
                .iter_mut()
                .flat_map(|l| l.tensors.iter_mut())
                .collect(),
        }
    }

    /// Mutable view over a single layer.
    pub fn of_layer(layer: &'a mut LayerParams) -> Self {
        ParamViewMut {
            tensors: layer.tensors.iter_mut().collect(),
        }
    }

    /// Total number of scalars in the view.
    pub fn param_count(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// Applies `f` to each tensor's buffer in canonical order.
    ///
    /// `f` may be stateful (e.g. drawing from a sequential RNG stream), so
    /// slices are visited strictly in order on the calling thread.
    pub fn for_each_slice_mut(&mut self, mut f: impl FnMut(&mut [f32])) {
        for t in self.tensors.iter_mut() {
            f(t.as_mut_slice());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params2() -> ModelParams {
        ModelParams::new(vec![
            LayerParams::new(vec![Tensor::ones(&[2, 3]), Tensor::full(&[3], 0.5)]),
            LayerParams::new(vec![Tensor::full(&[3, 1], -2.0)]),
        ])
    }

    #[test]
    fn view_counts_match_params() {
        let p = params2();
        let v = ParamView::of_model(&p);
        assert_eq!(v.param_count(), p.param_count());
        assert_eq!(
            v.slices().map(<[f32]>::len).sum::<usize>(),
            p.param_count()
        );
    }

    #[test]
    fn view_norm_is_bit_identical_to_params_norm() {
        let p = params2();
        let (norm, count) = ParamView::of_model(&p).norm_and_count();
        assert_eq!(norm.to_bits(), p.l2_norm().to_bits());
        assert_eq!(count, p.param_count());
        for l in &p.layers {
            let lv = ParamView::of_layer(l);
            assert_eq!(lv.l2_norm().to_bits(), l.l2_norm().to_bits());
        }
    }

    #[test]
    fn slices_walk_canonical_order_without_copying() {
        let p = params2();
        let flat = p.to_flat();
        let mut walked = Vec::new();
        for s in ParamView::of_model(&p).slices() {
            walked.extend_from_slice(s);
        }
        assert_eq!(walked, flat);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut p = params2();
        let mut v = ParamViewMut::of_model(&mut p);
        assert_eq!(v.param_count(), 12);
        v.for_each_slice_mut(|s| {
            for x in s {
                *x += 1.0;
            }
        });
        assert_eq!(p.layers[0].tensors[1].as_slice(), &[1.5, 1.5, 1.5]);
        assert_eq!(p.layers[1].tensors[0].as_slice()[0], -1.0);
    }

    #[test]
    fn mut_view_on_shared_params_leaves_reader_untouched() {
        let p = params2();
        let mut writer = p.share();
        ParamViewMut::of_model(&mut writer).for_each_slice_mut(|s| {
            for x in s {
                *x = 9.0;
            }
        });
        assert_eq!(p.layers[0].tensors[0].as_slice()[0], 1.0);
        assert_eq!(writer.layers[0].tensors[0].as_slice()[0], 9.0);
    }
}

//! Loss functions.
//!
//! Besides the batch-mean loss and gradient used for training, this module
//! exposes **per-sample** losses and softmax probability vectors: the
//! membership-inference attacks of the paper consume exactly these (the
//! loss-threshold attack compares per-sample losses, the shadow-model attack
//! classifies softmax confidence vectors), and Fig. 3 plots their
//! distributions.

use crate::{NnError, Result};
use dinar_tensor::Tensor;

/// Row-wise numerically stable softmax.
///
/// # Errors
///
/// Returns an error if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let rows = logits.nrows()?;
    let cols = logits.ncols()?;
    let mut out = logits.clone();
    let data = out.as_mut_slice();
    for i in 0..rows {
        let row = &mut data[i * cols..(i + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Categorical cross-entropy on logits (softmax + negative log-likelihood).
///
/// # Example
///
/// ```
/// use dinar_nn::loss::CrossEntropyLoss;
/// use dinar_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2])?;
/// let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &[0, 1])?;
/// assert!(loss < 0.1); // confident and correct
/// assert_eq!(grad.shape(), &[2, 2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    fn check(&self, logits: &Tensor, labels: &[usize]) -> Result<(usize, usize)> {
        let rows = logits.nrows()?;
        let cols = logits.ncols()?;
        if labels.len() != rows {
            return Err(NnError::LabelMismatch {
                batch: rows,
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= cols) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes: cols,
            });
        }
        Ok((rows, cols))
    }

    /// Per-sample negative log-likelihoods.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] or [`NnError::LabelOutOfRange`] for
    /// inconsistent labels.
    pub fn per_sample(&self, logits: &Tensor, labels: &[usize]) -> Result<Vec<f32>> {
        let (rows, cols) = self.check(logits, labels)?;
        let probs = softmax_rows(logits)?;
        let p = probs.as_slice();
        let mut losses = Vec::with_capacity(rows);
        for (i, &label) in labels.iter().enumerate() {
            losses.push(-(p[i * cols + label].max(1e-12)).ln());
        }
        Ok(losses)
    }

    /// Batch-mean loss and the gradient with respect to the logits.
    ///
    /// The gradient is `(softmax(logits) - onehot(labels)) / batch`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] or [`NnError::LabelOutOfRange`] for
    /// inconsistent labels.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
        let (rows, cols) = self.check(logits, labels)?;
        let mut grad = softmax_rows(logits)?;
        let mut loss = 0.0f64;
        {
            let g = grad.as_mut_slice();
            for (i, &label) in labels.iter().enumerate() {
                loss -= (g[i * cols + label].max(1e-12) as f64).ln();
                g[i * cols + label] -= 1.0;
            }
        }
        grad.scale_inplace(1.0 / rows as f32);
        Ok(((loss / rows as f64) as f32, grad))
    }
}

/// Mean-squared-error loss (used by unit tests and the attack-model trainer).
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Batch-mean squared error and gradient with respect to predictions.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if shapes differ.
    pub fn loss_and_grad(&self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
        let diff = pred.sub(target)?;
        let n = diff.len().max(1) as f32;
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n;
        let grad = diff.mul_scalar(2.0 / n);
        Ok((loss, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(0);
        let logits = rng.randn_with(&[4, 7], 0.0, 10.0);
        let p = softmax_rows(&logits).unwrap();
        for i in 0..4 {
            let row_sum: f32 = (0..7).map(|j| p.get(&[i, j]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
            assert!((0..7).all(|j| p.get(&[i, j]).unwrap() >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_under_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
        assert!(p.as_slice()[0] > p.as_slice()[1]);
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = CrossEntropyLoss.loss_and_grad(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(1);
        let logits = rng.randn(&[2, 3]);
        let labels = [2usize, 0];
        let (f0, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..2 {
            for j in 0..3 {
                let mut l2 = logits.clone();
                let old = l2.get(&[i, j]).unwrap();
                l2.set(&[i, j], old + eps).unwrap();
                let (f1, _) = CrossEntropyLoss.loss_and_grad(&l2, &labels).unwrap();
                let numeric = (f1 - f0) / eps;
                let analytic = grad.get(&[i, j]).unwrap();
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "grad[{i},{j}] numeric={numeric} analytic={analytic}"
                );
            }
        }
    }

    #[test]
    fn per_sample_mean_equals_batch_loss() {
        let mut rng = Rng::seed_from(2);
        let logits = rng.randn(&[5, 4]);
        let labels = [0usize, 1, 2, 3, 0];
        let per = CrossEntropyLoss.per_sample(&logits, &labels).unwrap();
        let (batch, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        let mean = per.iter().sum::<f32>() / per.len() as f32;
        assert!((mean - batch).abs() < 1e-5);
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            CrossEntropyLoss.loss_and_grad(&logits, &[0]),
            Err(NnError::LabelMismatch { .. })
        ));
        assert!(matches!(
            CrossEntropyLoss.loss_and_grad(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { label: 3, classes: 3 })
        ));
    }

    #[test]
    fn mse_basic() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = MseLoss.loss_and_grad(&pred, &target).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }
}

//! The paper's model zoo (Table 2).
//!
//! | Dataset | Paper model | Full profile | Mini profile |
//! |---|---|---|---|
//! | Purchase100 / Texas100 | 6-layer Tanh FCNN | [`fcnn_paper`] | [`fcnn6`] |
//! | GTSRB / CelebA | VGG11 (8 conv + dense head) | [`vgg11`] | [`vgg11_mini`] |
//! | CIFAR-10 / CIFAR-100 | ResNet20 | [`resnet20`] | [`resnet_mini`] |
//! | Speech Commands | M18 (1-D CNN) | [`m18`] | [`m18_mini`] |
//!
//! The `full` constructors match the architectures and dimensions reported in
//! the paper; the `mini` constructors keep the architectural *shape* (same
//! layer types, same depth class, same "8 convolutional layers" structure
//! where the paper's analysis depends on it) at widths that train in seconds
//! on one CPU core. All experiment binaries use the mini profiles and note
//! this substitution in EXPERIMENTS.md.

use crate::activation::{ReLU, Tanh};
use crate::conv::{Conv1d, Conv2d, Flatten};
use crate::dense::Dense;
use crate::model::{Model, Residual};
use crate::norm::BatchNorm;
use crate::pool::{GlobalAvgPool, MaxPool1d, MaxPool2d};
use crate::{Layer, NnError, Result};
use dinar_tensor::Rng;

/// Activation function selector for the generic builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn boxed(self) -> Box<dyn Layer> {
        match self {
            Activation::ReLU => Box::new(ReLU::new()),
            Activation::Tanh => Box::new(Tanh::new()),
        }
    }
}

/// A multi-layer perceptron with the given layer sizes.
///
/// `sizes = [in, h1, ..., out]` produces `sizes.len() - 1` dense layers with
/// `activation` between them (none after the final logits layer).
/// Initialization follows the activation (He for ReLU, Xavier for Tanh).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if fewer than two sizes are given.
pub fn mlp(sizes: &[usize], activation: Activation, rng: &mut Rng) -> Result<Model> {
    if sizes.len() < 2 {
        return Err(NnError::InvalidConfig {
            reason: format!("mlp needs at least [in, out] sizes, got {sizes:?}"),
        });
    }
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for w in sizes.windows(2) {
        let dense = match activation {
            Activation::ReLU => Dense::he(w[0], w[1], rng),
            Activation::Tanh => Dense::xavier(w[0], w[1], rng),
        };
        layers.push(Box::new(dense));
        layers.push(activation.boxed());
    }
    layers.pop(); // no activation after the logits layer
    Ok(Model::new(layers))
}

/// The paper's full Purchase100/Texas100 classifier: fully-connected layers
/// of sizes 4096, 2048, 1024, 512, 256 and 128 with Tanh activations, plus a
/// final classification layer (§5.1).
///
/// # Errors
///
/// Propagates [`mlp`] errors.
pub fn fcnn_paper(in_features: usize, classes: usize, rng: &mut Rng) -> Result<Model> {
    mlp(
        &[in_features, 4096, 2048, 1024, 512, 256, 128, classes],
        Activation::Tanh,
        rng,
    )
}

/// Mini profile of the tabular classifier with exactly **six** trainable
/// layers — the numbering used by the paper's Fig. 5 ("obfuscated layers
/// 1..6" on a "6-layer" network).
///
/// Hidden widths scale down geometrically from `base_width`.
///
/// # Errors
///
/// Propagates [`mlp`] errors.
pub fn fcnn6(in_features: usize, classes: usize, base_width: usize, rng: &mut Rng) -> Result<Model> {
    let w = base_width.max(16);
    mlp(
        &[in_features, w, w * 3 / 4, w / 2, w * 3 / 8, w / 4, classes],
        Activation::Tanh,
        rng,
    )
}

fn conv_relu(in_ch: usize, out_ch: usize, rng: &mut Rng) -> Vec<Box<dyn Layer>> {
    vec![
        Box::new(Conv2d::new(in_ch, out_ch, 3, 1, 1, rng)),
        Box::new(ReLU::new()),
    ]
}

/// Full VGG11 (Simonyan & Zisserman): 8 convolutional layers with max
/// pooling, plus a 4096-4096-classes dense head. Expects square inputs of
/// `input_hw` pixels (the paper uses 64×64 CelebA crops and 48×48 GTSRB; any
/// multiple of 32 works).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if `input_hw` is not a multiple of 32.
pub fn vgg11(in_channels: usize, classes: usize, input_hw: usize, rng: &mut Rng) -> Result<Model> {
    if input_hw % 32 != 0 || input_hw == 0 {
        return Err(NnError::InvalidConfig {
            reason: format!("vgg11 requires input size divisible by 32, got {input_hw}"),
        });
    }
    let final_hw = input_hw / 32;
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.extend(conv_relu(in_channels, 64, rng));
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.extend(conv_relu(64, 128, rng));
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.extend(conv_relu(128, 256, rng));
    layers.extend(conv_relu(256, 256, rng));
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.extend(conv_relu(256, 512, rng));
    layers.extend(conv_relu(512, 512, rng));
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.extend(conv_relu(512, 512, rng));
    layers.extend(conv_relu(512, 512, rng));
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Dense::he(512 * final_hw * final_hw, 4096, rng)));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Dense::he(4096, 4096, rng)));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Dense::he(4096, classes, rng)));
    Ok(Model::new(layers))
}

/// Mini VGG11: the same **8 convolutional layers + dense head** structure at
/// CPU-friendly widths, for 16×16 inputs.
///
/// The CelebA analysis of Fig. 4 ("a neural network with 8 convolutional
/// layers") runs on this profile: trainable layers 0–7 are the convolutions,
/// 8 is the hidden dense layer (the penultimate layer) and 9 the classifier.
///
/// # Errors
///
/// Never fails for valid RNG input; returns `Result` for API uniformity.
pub fn vgg11_mini(in_channels: usize, classes: usize, rng: &mut Rng) -> Result<Model> {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.extend(conv_relu(in_channels, 8, rng)); // conv1, 16x16
    layers.push(Box::new(MaxPool2d::new(2))); // 8x8
    layers.extend(conv_relu(8, 12, rng)); // conv2
    layers.push(Box::new(MaxPool2d::new(2))); // 4x4
    layers.extend(conv_relu(12, 16, rng)); // conv3
    layers.extend(conv_relu(16, 16, rng)); // conv4
    layers.push(Box::new(MaxPool2d::new(2))); // 2x2
    layers.extend(conv_relu(16, 24, rng)); // conv5
    layers.extend(conv_relu(24, 24, rng)); // conv6
    layers.push(Box::new(MaxPool2d::new(2))); // 1x1
    layers.extend(conv_relu(24, 32, rng)); // conv7
    layers.extend(conv_relu(32, 32, rng)); // conv8
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Dense::he(32, 48, rng)));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Dense::he(48, classes, rng)));
    Ok(Model::new(layers))
}

fn basic_block(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng) -> Box<dyn Layer> {
    let body: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng)),
        Box::new(BatchNorm::new(out_ch)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(out_ch)),
    ];
    if stride != 1 || in_ch != out_ch {
        let shortcut: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(in_ch, out_ch, 1, stride, 0, rng)),
            Box::new(BatchNorm::new(out_ch)),
        ];
        Box::new(Residual::projected(body, shortcut))
    } else {
        Box::new(Residual::identity(body))
    }
}

/// Full ResNet20 for 32×32 CIFAR images (He et al.): an initial 16-channel
/// convolution, three stages of three residual blocks at widths 16/32/64,
/// global average pooling and a linear classifier.
///
/// # Errors
///
/// Never fails for valid RNG input; returns `Result` for API uniformity.
pub fn resnet20(in_channels: usize, classes: usize, rng: &mut Rng) -> Result<Model> {
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_channels, 16, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(16)),
        Box::new(ReLU::new()),
    ];
    for (stage, &width) in [16usize, 32, 64].iter().enumerate() {
        for block in 0..3 {
            let in_ch = if block == 0 {
                if stage == 0 { 16 } else { width / 2 }
            } else {
                width
            };
            let stride = if block == 0 && stage > 0 { 2 } else { 1 };
            layers.push(basic_block(in_ch, width, stride, rng));
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Dense::he(64, classes, rng)));
    Ok(Model::new(layers))
}

/// Mini residual network: one identity block and one strided projection
/// block over an 8-channel stem — the ResNet20 shape at 1/8 width and 1/4
/// depth, for 8×8 or 16×16 inputs.
///
/// # Errors
///
/// Never fails for valid RNG input; returns `Result` for API uniformity.
pub fn resnet_mini(in_channels: usize, classes: usize, rng: &mut Rng) -> Result<Model> {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_channels, 8, 3, 1, 1, rng)),
        Box::new(BatchNorm::new(8)),
        Box::new(ReLU::new()),
        basic_block(8, 8, 1, rng),
        basic_block(8, 16, 2, rng),
        Box::new(GlobalAvgPool::new()),
        Box::new(Dense::he(16, classes, rng)),
    ];
    Ok(Model::new(layers))
}

/// Full M18 raw-waveform classifier (Dai et al. 2017): a long-stride input
/// convolution followed by four groups of four 1-D convolutions at widths
/// 64/128/256/512 with max pooling between groups, global average pooling
/// and a linear classifier. Expects `[n, 1, 16000]` one-second waveforms.
///
/// # Errors
///
/// Never fails for valid RNG input; returns `Result` for API uniformity.
pub fn m18(classes: usize, rng: &mut Rng) -> Result<Model> {
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv1d::new(1, 64, 80, 4, 38, rng)), // 16000 -> 4000
        Box::new(ReLU::new()),
        Box::new(MaxPool1d::new(4)), // -> 1000
    ];
    let mut in_ch = 64;
    for &width in &[64usize, 128, 256, 512] {
        for _ in 0..4 {
            layers.push(Box::new(Conv1d::new(in_ch, width, 3, 1, 1, rng)));
            layers.push(Box::new(ReLU::new()));
            in_ch = width;
        }
        layers.push(Box::new(MaxPool1d::new(4)));
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Dense::he(512, classes, rng)));
    Ok(Model::new(layers))
}

/// Mini M18: the same stride-convolution → conv/pool groups → global pool →
/// linear shape at small widths, for `[n, 1, 256]` waveforms.
///
/// # Errors
///
/// Never fails for valid RNG input; returns `Result` for API uniformity.
pub fn m18_mini(classes: usize, rng: &mut Rng) -> Result<Model> {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv1d::new(1, 8, 8, 4, 2, rng)), // 256 -> 64
        Box::new(ReLU::new()),
        Box::new(MaxPool1d::new(4)), // -> 16
        Box::new(Conv1d::new(8, 16, 3, 1, 1, rng)),
        Box::new(ReLU::new()),
        Box::new(MaxPool1d::new(4)), // -> 4
        Box::new(Conv1d::new(16, 32, 3, 1, 1, rng)),
        Box::new(ReLU::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(Dense::he(32, 48, rng)),
        Box::new(ReLU::new()),
        Box::new(Dense::he(48, classes, rng)),
    ];
    Ok(Model::new(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    #[test]
    fn mlp_shapes_and_layer_count() {
        let mut rng = Rng::seed_from(0);
        let mut m = mlp(&[10, 20, 5], Activation::Tanh, &mut rng).unwrap();
        assert_eq!(m.num_trainable_layers(), 2);
        let x = rng.randn(&[3, 10]);
        assert_eq!(m.forward(&x, false).unwrap().shape(), &[3, 5]);
    }

    #[test]
    fn mlp_rejects_too_few_sizes() {
        let mut rng = Rng::seed_from(0);
        assert!(mlp(&[10], Activation::ReLU, &mut rng).is_err());
    }

    #[test]
    fn fcnn6_has_exactly_six_trainable_layers() {
        let mut rng = Rng::seed_from(1);
        let m = fcnn6(60, 10, 64, &mut rng).unwrap();
        assert_eq!(m.num_trainable_layers(), 6);
    }

    #[test]
    fn vgg11_mini_has_eight_convs_and_dense_head() {
        let mut rng = Rng::seed_from(2);
        let mut m = vgg11_mini(3, 8, &mut rng).unwrap();
        let convs = m.layer_names().iter().filter(|n| **n == "conv2d").count();
        assert_eq!(convs, 8);
        assert_eq!(m.num_trainable_layers(), 10); // 8 conv + 2 dense
        let x = rng.randn(&[2, 3, 16, 16]);
        assert_eq!(m.forward(&x, true).unwrap().shape(), &[2, 8]);
    }

    #[test]
    fn resnet_mini_forward_shape() {
        let mut rng = Rng::seed_from(3);
        let mut m = resnet_mini(3, 10, &mut rng).unwrap();
        let x = rng.randn(&[2, 3, 8, 8]);
        assert_eq!(m.forward(&x, true).unwrap().shape(), &[2, 10]);
    }

    #[test]
    fn m18_mini_forward_shape() {
        let mut rng = Rng::seed_from(4);
        let mut m = m18_mini(6, &mut rng).unwrap();
        let x = rng.randn(&[2, 1, 256]);
        assert_eq!(m.forward(&x, true).unwrap().shape(), &[2, 6]);
    }

    #[test]
    fn full_profiles_construct_with_paper_dimensions() {
        let mut rng = Rng::seed_from(5);
        let fcnn = fcnn_paper(600, 100, &mut rng).unwrap();
        assert_eq!(fcnn.num_trainable_layers(), 7);
        assert!(fcnn.param_count() > 10_000_000); // 600*4096 + 4096*2048 + ...

        let resnet = resnet20(3, 10, &mut rng).unwrap();
        // conv1 + bn1 + 9 blocks + final dense = 12 trainable units.
        assert_eq!(resnet.num_trainable_layers(), 12);
        // ResNet20 has ~0.27M parameters.
        let pc = resnet.param_count();
        assert!((200_000..400_000).contains(&pc), "param count {pc}");
    }

    #[test]
    fn full_resnet20_forward_on_cifar_shape() {
        let mut rng = Rng::seed_from(6);
        let mut m = resnet20(3, 10, &mut rng).unwrap();
        let x = rng.randn(&[1, 3, 32, 32]);
        assert_eq!(m.forward(&x, false).unwrap().shape(), &[1, 10]);
    }

    #[test]
    fn full_vgg11_constructs_and_checks_input() {
        let mut rng = Rng::seed_from(7);
        assert!(vgg11(3, 43, 31, &mut rng).is_err());
        let m = vgg11(3, 43, 32, &mut rng).unwrap();
        assert_eq!(m.num_trainable_layers(), 11); // 8 conv + 3 dense
    }

    #[test]
    fn full_m18_has_seventeen_convs() {
        let mut rng = Rng::seed_from(8);
        let m = m18(35, &mut rng).unwrap();
        let convs = m.layer_names().iter().filter(|n| **n == "conv1d").count();
        assert_eq!(convs, 17);
        let pc = m.param_count();
        // Paper reports 3.7M parameters for M18.
        assert!((3_000_000..4_500_000).contains(&pc), "param count {pc}");
    }
}

//! Sequential model container and the residual block used by ResNet20.

use crate::{Layer, LayerParams, ModelParams, NnError, Result};
use dinar_tensor::Tensor;
use dinar_telemetry::Telemetry;

/// A feed-forward model: an ordered sequence of [`Layer`]s.
///
/// Throughout the paper, "layer *j*" refers to the *j*-th **trainable** layer
/// of the network (activations and pooling do not count). `Model` preserves
/// that numbering: [`Model::params`], [`Model::layer_gradients`] and
/// [`Model::set_layer_params`] all index trainable layers, so "obfuscate
/// layer `p`" is a one-call operation for the middleware.
///
/// # Example
///
/// ```
/// use dinar_nn::models;
/// use dinar_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut model = models::mlp(&[4, 8, 8, 2], models::Activation::ReLU, &mut rng)?;
/// assert_eq!(model.num_trainable_layers(), 3);
/// let x = rng.randn(&[5, 4]);
/// let logits = model.forward(&x, false)?;
/// assert_eq!(logits.shape(), &[5, 2]);
/// # Ok::<(), dinar_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
    trainable: Vec<usize>,
    telemetry: Telemetry,
}

impl Model {
    /// Creates a model from a sequence of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        let trainable = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_trainable())
            .map(|(i, _)| i)
            .collect();
        Model {
            layers,
            trainable,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: every forward/backward pass then emits a
    /// `fwd[i:name]` / `bwd[i:name]` span per layer (nested under whatever
    /// span is open on the calling thread) and a `nn.grad_l2[slot:name]`
    /// high-water gauge per trainable layer after each backward pass.
    /// Numerical behaviour is unchanged — the hooks only read.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of trainable (parameter-bearing) layers.
    pub fn num_trainable_layers(&self) -> usize {
        self.trainable.len()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Names of all layers in order (including non-trainable ones).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the forward pass.
    ///
    /// `train` selects training-time behaviour (batch statistics, gradient
    /// caches); inference should pass `false`.
    ///
    /// # Errors
    ///
    /// Propagates any layer error (typically shape mismatches).
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let _span = if self.telemetry.is_enabled() {
                Some(self.telemetry.span(&format!("fwd[{i}:{}]", layer.name())))
            } else {
                None
            };
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Runs the backward pass, accumulating gradients in every trainable
    /// layer, and returns the gradient with respect to the model input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if [`Model::forward`] has
    /// not been called.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        let mut g = grad_logits.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let _span = if self.telemetry.is_enabled() {
                Some(self.telemetry.span(&format!("bwd[{i}:{}]", layer.name())))
            } else {
                None
            };
            g = layer.backward(&g)?;
        }
        self.check_gradients_finite();
        self.record_grad_norms();
        Ok(g)
    }

    /// With the `sanitize` feature, panics if any accumulated gradient
    /// contains a non-finite value, naming the trainable layer that produced
    /// it — so NaN poisoning is pinned to its source instead of surfacing as
    /// a nonsensical metric rounds later. Compiled to nothing otherwise.
    fn check_gradients_finite(&self) {
        #[cfg(feature = "sanitize")]
        for (slot, &i) in self.trainable.iter().enumerate() {
            let layer = &self.layers[i];
            for (tensor_idx, grad) in layer.grads().into_iter().enumerate() {
                if let Some((flat, x)) = grad
                    .as_slice()
                    .iter()
                    .enumerate()
                    .find(|(_, x)| !x.is_finite())
                {
                    // lint: allow(L012, the sanitize contract: fail loudly at the poisoning layer)
                    panic!(
                        "sanitize: backward produced non-finite gradient {x} in \
                         trainable layer {slot} (`{}`), gradient tensor {tensor_idx}, \
                         flat index {flat}",
                        layer.name()
                    );
                }
            }
        }
    }

    /// With telemetry attached, raises a `nn.grad_l2[slot:name]` gauge per
    /// trainable layer to the L2 norm of its accumulated gradients. The
    /// gauge is a high-water maximum, so concurrent clients sharing a sink
    /// update it commutatively (deterministic final value).
    fn record_grad_norms(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for (slot, &i) in self.trainable.iter().enumerate() {
            let layer = &self.layers[i];
            let sumsq: f64 = layer
                .grads()
                .iter()
                .map(|g| dinar_tensor::par::chunked_sumsq_f64(g.as_slice()))
                .sum();
            self.telemetry
                .gauge_max(&format!("nn.grad_l2[{slot}:{}]", layer.name()), sumsq.sqrt());
        }
    }

    /// Runs the backward pass like [`Model::backward`], additionally
    /// returning, for every **trainable** layer, the gradient of the loss
    /// with respect to that layer's *output* (the backpropagated error
    /// signal δ entering the layer).
    ///
    /// The layer-sensitivity analysis uses these taps: they measure how much
    /// sample-specific error signal reaches each layer, independent of the
    /// layer's parameter count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if [`Model::forward`] has
    /// not been called.
    pub fn backward_with_taps(&mut self, grad_logits: &Tensor) -> Result<Vec<Tensor>> {
        let mut g = grad_logits.clone();
        let mut taps: Vec<Option<Tensor>> = vec![None; self.trainable.len()];
        for (raw_idx, layer) in self.layers.iter_mut().enumerate().rev() {
            if let Some(slot) = self.trainable.iter().position(|&t| t == raw_idx) {
                taps[slot] = Some(g.clone());
            }
            g = layer.backward(&g)?;
        }
        self.check_gradients_finite();
        self.record_grad_norms();
        Ok(taps
            .into_iter()
            // lint: allow(L001, the loop above visits every trainable index by construction)
            .map(|t| t.expect("every trainable layer was visited"))
            .collect())
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Clears cached activations in every layer.
    pub fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    /// Mutable access to all accumulated gradients, in layer order — used
    /// by gradient-perturbing defenses (DP-SGD clipping and noising).
    pub fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.grads_mut()).collect()
    }

    /// Paired mutable-parameter / gradient access across all layers, in
    /// layer order — the optimizer's view of the model.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Snapshot of the full model state as [`ModelParams`].
    ///
    /// Each entry holds the layer's trainable tensors followed by its buffers
    /// (e.g. batch-norm running statistics), so that a client receiving these
    /// parameters reproduces the sender's inference behaviour exactly.
    pub fn params(&self) -> ModelParams {
        let layers = self
            .trainable
            .iter()
            .map(|&i| {
                let layer = &self.layers[i];
                let mut tensors: Vec<Tensor> =
                    layer.params().into_iter().cloned().collect();
                tensors.extend(layer.buffers().into_iter().cloned());
                LayerParams::new(tensors)
            })
            .collect();
        ModelParams::new(layers)
    }

    /// Restores the full model state from [`ModelParams`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamShapeMismatch`] if `params` does not match the
    /// model architecture.
    pub fn set_params(&mut self, params: &ModelParams) -> Result<()> {
        if params.num_layers() != self.trainable.len() {
            return Err(NnError::ParamShapeMismatch {
                reason: format!(
                    "model has {} trainable layers, parameters describe {}",
                    self.trainable.len(),
                    params.num_layers()
                ),
            });
        }
        let trainable = self.trainable.clone();
        for (slot, &i) in trainable.iter().enumerate() {
            self.set_trainable_layer(i, &params.layers[slot])?;
        }
        Ok(())
    }

    /// Parameters (and buffers) of the trainable layer with index `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `index` is out of range.
    pub fn layer_params(&self, index: usize) -> Result<LayerParams> {
        let &i = self
            .trainable
            .get(index)
            .ok_or(NnError::NoSuchLayer {
                index,
                trainable: self.trainable.len(),
            })?;
        let layer = &self.layers[i];
        let mut tensors: Vec<Tensor> = layer.params().into_iter().cloned().collect();
        tensors.extend(layer.buffers().into_iter().cloned());
        Ok(LayerParams::new(tensors))
    }

    /// Replaces the parameters (and buffers) of trainable layer `index`.
    ///
    /// This is the primitive behind DINAR's personalization step (Alg. 1,
    /// line 6): restore the locally stored private layer into a copy of the
    /// global model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] for a bad index or
    /// [`NnError::ParamShapeMismatch`] if tensor shapes differ.
    pub fn set_layer_params(&mut self, index: usize, params: &LayerParams) -> Result<()> {
        let &i = self
            .trainable
            .get(index)
            .ok_or(NnError::NoSuchLayer {
                index,
                trainable: self.trainable.len(),
            })?;
        self.set_trainable_layer(i, params)
    }

    fn set_trainable_layer(&mut self, raw_index: usize, params: &LayerParams) -> Result<()> {
        let layer = &mut self.layers[raw_index];
        let n_params = layer.params().len();
        let n_buffers = layer.buffers().len();
        if params.tensors.len() != n_params + n_buffers {
            return Err(NnError::ParamShapeMismatch {
                reason: format!(
                    "layer `{}` has {} tensors ({} params + {} buffers), got {}",
                    layer.name(),
                    n_params + n_buffers,
                    n_params,
                    n_buffers,
                    params.tensors.len()
                ),
            });
        }
        for (dst, src) in layer.params_mut().into_iter().zip(&params.tensors) {
            if dst.shape() != src.shape() {
                return Err(NnError::ParamShapeMismatch {
                    reason: format!(
                        "parameter shape {:?} != {:?}",
                        dst.shape(),
                        src.shape()
                    ),
                });
            }
            *dst = src.clone();
        }
        for (dst, src) in layer
            .buffers_mut()
            .into_iter()
            .zip(&params.tensors[n_params..])
        {
            if dst.shape() != src.shape() {
                return Err(NnError::ParamShapeMismatch {
                    reason: format!("buffer shape {:?} != {:?}", dst.shape(), src.shape()),
                });
            }
            *dst = src.clone();
        }
        Ok(())
    }

    /// Paired mutable-parameter / gradient access for a single trainable
    /// layer — lets callers fine-tune one layer while freezing the rest
    /// (used by adaptive attackers that re-train an obfuscated layer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `index` is out of range.
    pub fn layer_params_and_grads(
        &mut self,
        index: usize,
    ) -> Result<Vec<(&mut Tensor, &Tensor)>> {
        let &i = self
            .trainable
            .get(index)
            .ok_or(NnError::NoSuchLayer {
                index,
                trainable: self.trainable.len(),
            })?;
        Ok(self.layers[i].params_and_grads())
    }

    /// Accumulated gradients, one [`LayerParams`] per trainable layer
    /// (buffers excluded).
    ///
    /// This is the input to the paper's layer-sensitivity analysis (§3): the
    /// per-layer gradient distributions of member vs non-member predictions.
    pub fn layer_gradients(&self) -> Vec<LayerParams> {
        self.trainable
            .iter()
            .map(|&i| {
                LayerParams::new(self.layers[i].grads().into_iter().cloned().collect())
            })
            .collect()
    }

    /// Predicted class per row of `input` (inference mode).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input, false)?;
        Ok(logits.argmax_rows()?)
    }

    /// Classification accuracy on a labelled batch (inference mode).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] if label count differs from the
    /// batch size.
    pub fn accuracy(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32> {
        let preds = self.predict(input)?;
        if preds.len() != labels.len() {
            return Err(NnError::LabelMismatch {
                batch: preds.len(),
                labels: labels.len(),
            });
        }
        if preds.is_empty() {
            return Ok(0.0);
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f32 / labels.len() as f32)
    }
}

/// A residual block: `y = relu(body(x) + shortcut(x))`.
///
/// `body` is typically `conv → bn → relu → conv → bn`; `shortcut` is empty
/// (identity) or a 1×1 strided convolution when the spatial size or channel
/// count changes. The whole block counts as **one** trainable layer in the
/// model's layer numbering.
#[derive(Debug)]
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    shortcut: Vec<Box<dyn Layer>>,
    cached_sum: Option<Tensor>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(body: Vec<Box<dyn Layer>>) -> Self {
        Residual {
            body,
            shortcut: Vec::new(),
            cached_sum: None,
        }
    }

    /// Creates a residual block with a projection shortcut (used when the
    /// body changes the activation shape).
    pub fn projected(body: Vec<Box<dyn Layer>>, shortcut: Vec<Box<dyn Layer>>) -> Self {
        Residual {
            body,
            shortcut,
            cached_sum: None,
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut y = input.clone();
        for layer in &mut self.body {
            y = layer.forward(&y, train)?;
        }
        let mut s = input.clone();
        for layer in &mut self.shortcut {
            s = layer.forward(&s, train)?;
        }
        let sum = y.add(&s)?;
        let out = sum.map(|x| x.max(0.0));
        self.cached_sum = Some(sum);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let sum = self
            .cached_sum
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "residual" })?;
        // Backward through the final ReLU.
        let g = grad_output.zip_with(sum, "residual_relu", |g, s| if s > 0.0 { g } else { 0.0 })?;
        // Backward through the body.
        let mut gb = g.clone();
        for layer in self.body.iter_mut().rev() {
            gb = layer.backward(&gb)?;
        }
        // Backward through the shortcut (identity passes g through).
        let mut gs = g;
        for layer in self.shortcut.iter_mut().rev() {
            gs = layer.backward(&gs)?;
        }
        Ok(gb.add(&gs)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        self.body
            .iter()
            .chain(&self.shortcut)
            .flat_map(|l| l.params())
            .collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.body
            .iter_mut()
            .chain(&mut self.shortcut)
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn grads(&self) -> Vec<&Tensor> {
        self.body
            .iter()
            .chain(&self.shortcut)
            .flat_map(|l| l.grads())
            .collect()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        self.body
            .iter_mut()
            .chain(&mut self.shortcut)
            .flat_map(|l| l.grads_mut())
            .collect()
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        self.body
            .iter_mut()
            .chain(&mut self.shortcut)
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.body
            .iter()
            .chain(&self.shortcut)
            .flat_map(|l| l.buffers())
            .collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.body
            .iter_mut()
            .chain(&mut self.shortcut)
            .flat_map(|l| l.buffers_mut())
            .collect()
    }

    fn zero_grad(&mut self) {
        for layer in self.body.iter_mut().chain(&mut self.shortcut) {
            layer.zero_grad();
        }
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn clear_cache(&mut self) {
        self.cached_sum = None;
        for layer in self.body.iter_mut().chain(&mut self.shortcut) {
            layer.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use crate::models::{self, Activation};
    use crate::optim::{Optimizer, Sgd};
    use dinar_tensor::Rng;

    #[test]
    fn params_roundtrip() {
        let mut rng = Rng::seed_from(0);
        let mut model = models::mlp(&[3, 5, 2], Activation::Tanh, &mut rng).unwrap();
        let snapshot = model.params();
        // Perturb, then restore.
        let mut perturbed = snapshot.clone();
        perturbed.map_inplace(|x| x + 1.0);
        model.set_params(&perturbed).unwrap();
        assert!(model.params().max_abs_diff(&snapshot).unwrap() > 0.9);
        model.set_params(&snapshot).unwrap();
        assert!(model.params().max_abs_diff(&snapshot).unwrap() < 1e-7);
    }

    #[test]
    fn set_layer_params_replaces_only_that_layer() {
        let mut rng = Rng::seed_from(1);
        let mut model = models::mlp(&[3, 5, 2], Activation::ReLU, &mut rng).unwrap();
        let before = model.params();
        let mut layer1 = model.layer_params(1).unwrap();
        for t in &mut layer1.tensors {
            t.map_inplace(|_| 9.0);
        }
        model.set_layer_params(1, &layer1).unwrap();
        let after = model.params();
        // Layer 0 untouched, layer 1 replaced.
        assert_eq!(after.layers[0], before.layers[0]);
        assert!(after.layers[1].tensors[0].as_slice().iter().all(|&x| x == 9.0));
    }

    #[test]
    fn invalid_layer_index_errors() {
        let mut rng = Rng::seed_from(2);
        let model = models::mlp(&[3, 2], Activation::ReLU, &mut rng).unwrap();
        assert!(matches!(
            model.layer_params(5),
            Err(NnError::NoSuchLayer { index: 5, .. })
        ));
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        // Two Gaussian blobs, linearly separable.
        let mut rng = Rng::seed_from(3);
        let n = 64;
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.set(&[i, 0], rng.normal_with(center, 0.5)).unwrap();
            x.set(&[i, 1], rng.normal_with(center, 0.5)).unwrap();
            labels.push(class);
        }
        let mut model = models::mlp(&[2, 8, 2], Activation::ReLU, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..50 {
            let logits = model.forward(&x, true).unwrap();
            let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
            if epoch == 0 {
                first_loss = loss;
            }
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss * 0.3,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
        assert!(model.accuracy(&x, &labels).unwrap() > 0.95);
    }

    #[test]
    fn residual_block_gradcheck() {
        use crate::conv::Conv2d;
        let mut rng = Rng::seed_from(8);
        let body: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(2, 2, 3, 1, 1, &mut rng)),
        ];
        let mut block = Residual::identity(body);
        let x = rng.randn(&[1, 2, 4, 4]);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let w = rng.rand_uniform(y.shape(), 0.1, 1.0);
        let gx = block.backward(&w).unwrap();
        // Central difference: the block ends in a ReLU, so a one-sided
        // probe that crosses the kink reports a blend of the two slopes.
        // The symmetric probe cancels the truncation term, and the ±eps
        // evaluations stay on one side of the kink for this seed.
        let eps = 1e-2;
        let probe = |delta: f32, block: &mut Residual| {
            let mut x2 = x.clone();
            let old = x2.get(&[0, 1, 1, 2]).unwrap();
            x2.set(&[0, 1, 1, 2], old + delta).unwrap();
            block.forward(&x2, true).unwrap().mul(&w).unwrap().sum()
        };
        let numeric = (probe(eps, &mut block) - probe(-eps, &mut block)) / (2.0 * eps);
        let analytic = gx.get(&[0, 1, 1, 2]).unwrap();
        assert!(
            (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
            "numeric={numeric} analytic={analytic}"
        );
    }

    #[test]
    fn residual_counts_as_one_trainable_layer() {
        let mut rng = Rng::seed_from(5);
        let model = models::resnet_mini(3, 4, &mut rng).unwrap();
        // conv1+bn count as 2, blocks as 1 each, final dense as 1.
        let names = model.layer_names();
        assert!(names.contains(&"residual"));
        let params = model.params();
        assert_eq!(params.num_layers(), model.num_trainable_layers());
    }
}

//! Batched inference over checkpointed personalized models.
//!
//! After federated training, each client owns a personalized model (the
//! global model with DINAR's private layer restored). This module is the
//! deployment end of the checkpoint plane: it loads a `DNCK` file
//! ([`crate::ckpt`]) and answers batched predictions from it **at the
//! checkpoint's storage width** — f32 sections serve as-is, i8 sections
//! stay resident as [`QuantTensor`]s (¼ the weight bytes) and are widened
//! per batch into a recycled [`BufferPool`] scratch buffer, so the
//! steady-state serving loop allocates nothing and runs the very same
//! `matmul` kernels as the dense path.
//!
//! The server reports throughput through `dinar-telemetry`: counters
//! `serve.batches` / `serve.rows`, plus a `serve.infer` span per batch —
//! the span's clock (not the wall clock) prices each batch in trace
//! export, so `rows / span-time` recovers rows-per-second post hoc.
//!
//! Serving supports MLP-family checkpoints (the paper's Purchase100 /
//! Texas100 classifiers): each layer must be a `[weights (in×out), bias]`
//! pair; hidden layers get ReLU, matching [`crate::models::mlp`]'s
//! eval-mode forward bit-for-bit.

use crate::ckpt::{self, CkptTensor, RawCheckpoint};
use crate::{NnError, Result};
use dinar_telemetry::Telemetry;
use dinar_tensor::{BufferPool, QuantTensor, Tensor};
use std::path::Path;

/// A layer's weight matrix, kept at the checkpoint's storage width.
#[derive(Debug)]
pub enum ServeWeights {
    /// Dense f32 weights (from an F32 or F16 checkpoint section).
    Dense(Tensor),
    /// Quantized i8 weights (from an I8 section), widened per batch.
    Quant(QuantTensor),
}

#[derive(Debug)]
struct ServeLayer {
    weights: ServeWeights,
    bias: Tensor,
    relu: bool,
}

/// A loaded model answering batched inference requests.
#[derive(Debug)]
pub struct ServingModel {
    layers: Vec<ServeLayer>,
    pool: BufferPool<f32>,
    telemetry: Telemetry,
    batches_served: u64,
    rows_served: u64,
}

impl ServingModel {
    /// Builds a serving model from a decoded checkpoint, keeping each
    /// weight matrix at its on-disk width. Every layer must be a
    /// `[rank-2 weights, rank-1 bias]` pair with matching output width;
    /// all but the last layer get ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for layers that are not dense
    /// `[weights, bias]` pairs (conv checkpoints are not servable here).
    pub fn from_checkpoint(raw: RawCheckpoint) -> Result<Self> {
        if raw.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "checkpoint has no layers to serve".into(),
            });
        }
        let last = raw.layers.len() - 1;
        let mut layers = Vec::with_capacity(raw.layers.len());
        for (i, sections) in raw.layers.into_iter().enumerate() {
            let mut it = sections.into_iter();
            let (Some(weights), Some(bias), None) = (it.next(), it.next(), it.next()) else {
                return Err(NnError::InvalidConfig {
                    reason: format!("layer {i} is not a [weights, bias] pair"),
                });
            };
            let (rows_cols, out) = (weights.shape().to_vec(), bias.shape().to_vec());
            if rows_cols.len() != 2 || out.len() != 1 || rows_cols[1] != out[0] {
                return Err(NnError::InvalidConfig {
                    reason: format!(
                        "layer {i} has shapes {rows_cols:?}/{out:?}, serving needs \
                         [in, out] weights with an [out] bias"
                    ),
                });
            }
            let weights = match weights {
                CkptTensor::Quant(q) => ServeWeights::Quant(q),
                dense => ServeWeights::Dense(dense.into_tensor()),
            };
            layers.push(ServeLayer {
                weights,
                // Bias vectors are tiny; always serve them dense.
                bias: bias.into_tensor(),
                relu: i != last,
            });
        }
        Ok(ServingModel {
            layers,
            pool: BufferPool::new(),
            telemetry: Telemetry::disabled(),
            batches_served: 0,
            rows_served: 0,
        })
    }

    /// Loads a `DNCK` model checkpoint from `path` and builds a serving
    /// model at the checkpoint's storage widths.
    ///
    /// # Errors
    ///
    /// Propagates [`ckpt::load_raw`] and
    /// [`from_checkpoint`](ServingModel::from_checkpoint) errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_checkpoint(ckpt::load_raw(path)?)
    }

    /// Attaches a telemetry sink; subsequent batches report throughput.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether any layer serves from quantized i8 weights.
    pub fn is_quantized(&self) -> bool {
        self.layers
            .iter()
            .any(|l| matches!(l.weights, ServeWeights::Quant(_)))
    }

    /// Bytes of resident weight storage (weights + biases), the number the
    /// serving ratchet holds at ≥2× smaller for i8 checkpoints.
    pub fn resident_weight_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                let w = match &l.weights {
                    ServeWeights::Dense(t) => 4 * t.len() as u64,
                    ServeWeights::Quant(q) => q.resident_bytes(),
                };
                w + 4 * l.bias.len() as u64
            })
            .sum()
    }

    /// Batches served since load.
    pub fn batches_served(&self) -> u64 {
        self.batches_served
    }

    /// Rows served since load.
    pub fn rows_served(&self) -> u64 {
        self.rows_served
    }

    /// Scratch-pool reuse hits (first batch misses, steady state hits).
    pub fn pool_hits(&self) -> u64 {
        self.pool.hits()
    }

    /// Answers one batch: `x` is `[rows, features]`, the result is
    /// `[rows, classes]` logits. Quantized layers widen into pooled
    /// scratch; the dense math is identical to the training model's
    /// eval-mode forward pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the matrix kernels.
    pub fn infer(&mut self, x: &Tensor) -> Result<Tensor> {
        // Per-batch wall time flows through the telemetry span (the
        // sanctioned clock), so trace export prices each batch; serving
        // code itself never reads the wall clock.
        let _span = self.telemetry.span("serve.infer");
        let rows = x.shape().first().copied().unwrap_or(0);
        let layers = &self.layers;
        let pool = &mut self.pool;
        let mut h = x.clone();
        for layer in layers {
            h = match &layer.weights {
                ServeWeights::Dense(w) => h.matmul(w)?,
                ServeWeights::Quant(q) => {
                    let mut wide = pool.acquire_tensor(q.shape());
                    q.dequantize_into(&mut wide)?;
                    let y = h.matmul(&wide)?;
                    pool.release_tensor(wide);
                    y
                }
            };
            h = h.add_row_broadcast(&layer.bias)?;
            if layer.relu {
                h = h.map(|v| v.max(0.0));
            }
        }
        self.batches_served += 1;
        self.rows_served += rows as u64;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("serve.batches", 1);
            self.telemetry.counter_add("serve.rows", rows as u64);
        }
        Ok(h)
    }

    /// Predicted class per row (argmax over the logits).
    ///
    /// # Errors
    ///
    /// Propagates [`infer`](ServingModel::infer) errors.
    pub fn predict(&mut self, x: &Tensor) -> Result<Vec<usize>> {
        let logits = self.infer(x)?;
        let shape = logits.shape().to_vec();
        let (rows, classes) = (shape[0], shape[1]);
        let data = logits.as_slice();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * classes..(r + 1) * classes];
            let mut best = 0;
            for (c, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = c;
                }
            }
            out.push(best);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{self, Activation};
    use dinar_tensor::{Dtype, Rng};

    fn trained_mlp() -> (crate::Model, Tensor) {
        let mut rng = Rng::seed_from(21);
        let model = models::mlp(&[6, 16, 4], Activation::ReLU, &mut rng).unwrap();
        let x = rng.randn(&[32, 6]);
        (model, x)
    }

    fn serving(model: &crate::Model, dtype: Dtype) -> ServingModel {
        let bytes = ckpt::encode_checkpoint(&model.params(), dtype).unwrap();
        ServingModel::from_checkpoint(ckpt::decode_checkpoint_raw(&bytes).unwrap()).unwrap()
    }

    #[test]
    fn f32_serving_matches_training_forward_bit_for_bit() {
        let (mut model, x) = trained_mlp();
        let want = model.forward(&x, false).unwrap();
        let mut serve = serving(&model, Dtype::F32);
        assert!(!serve.is_quantized());
        let got = serve.infer(&x).unwrap();
        let wb: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb);
    }

    #[test]
    fn i8_serving_shrinks_resident_weights_at_least_2x() {
        let (model, x) = trained_mlp();
        let mut dense = serving(&model, Dtype::F32);
        let mut quant = serving(&model, Dtype::I8);
        assert!(quant.is_quantized());
        assert!(
            quant.resident_weight_bytes() * 2 <= dense.resident_weight_bytes(),
            "i8 {} vs f32 {}",
            quant.resident_weight_bytes(),
            dense.resident_weight_bytes()
        );
        // Quantized logits track the dense ones closely on O(1) activations.
        let a = dense.infer(&x).unwrap();
        let b = quant.infer(&x).unwrap();
        let diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 0.2, "quantized serving drifted by {diff}");
    }

    #[test]
    fn quant_scratch_is_recycled_across_batches() {
        let (model, x) = trained_mlp();
        let mut quant = serving(&model, Dtype::I8);
        quant.infer(&x).unwrap();
        let after_first = quant.pool_hits();
        quant.infer(&x).unwrap();
        quant.infer(&x).unwrap();
        // Steady state: every widening (two quant layers × two batches)
        // reuses parked scratch instead of allocating.
        assert!(
            quant.pool_hits() >= after_first + 4,
            "hits {} after first {}",
            quant.pool_hits(),
            after_first
        );
        assert_eq!(quant.batches_served(), 3);
        assert_eq!(quant.rows_served(), 96);
    }

    #[test]
    fn telemetry_reports_throughput() {
        let (model, x) = trained_mlp();
        let mut serve = serving(&model, Dtype::F32);
        let telemetry = Telemetry::new();
        serve.set_telemetry(telemetry.clone()); // lint: allow(L009, telemetry handle, not params)
        serve.infer(&x).unwrap();
        serve.infer(&x).unwrap();
        assert_eq!(telemetry.counter_value("serve.batches"), 2);
        assert_eq!(telemetry.counter_value("serve.rows"), 64);
    }

    #[test]
    fn predict_returns_argmax_classes() {
        let (mut model, x) = trained_mlp();
        let mut serve = serving(&model, Dtype::F32);
        let want = model.predict(&x).unwrap();
        let got = serve.predict(&x).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn non_mlp_checkpoints_are_rejected() {
        // A layer with a rank-4 conv kernel is not servable.
        let p = crate::ModelParams::new(vec![crate::LayerParams::new(vec![
            Tensor::zeros(&[2, 3, 3, 2]),
            Tensor::zeros(&[2]),
        ])]);
        let bytes = ckpt::encode_checkpoint(&p, Dtype::F32).unwrap();
        let raw = ckpt::decode_checkpoint_raw(&bytes).unwrap();
        assert!(matches!(
            ServingModel::from_checkpoint(raw),
            Err(NnError::InvalidConfig { .. })
        ));
    }
}

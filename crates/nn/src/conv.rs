//! Convolutional layers (2-D for images, 1-D for waveforms) and the
//! [`Flatten`] bridge into dense heads.

use crate::{init, Layer, NnError, Result};
use dinar_tensor::conv::{col2im1d, col2im2d, im2col1d, im2col2d, Conv1dGeom, Conv2dGeom};
use dinar_tensor::{par, Rng, Tensor};

/// Minimum output cells per parallel part for the layout-rearrange helpers.
const PAR_MIN_CELLS: usize = 16 * 1024;

/// 2-D convolution over `[batch, channels, height, width]` inputs.
///
/// Weights are stored flattened as `[out_channels, in_channels * k * k]` so
/// that the forward pass is a single matrix product against the `im2col`
/// patch matrix.
///
/// # Example
///
/// ```
/// use dinar_nn::{conv::Conv2d, Layer};
/// use dinar_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = rng.randn(&[2, 3, 8, 8]);
/// let y = conv.forward(&x, true)?;
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// # Ok::<(), dinar_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached: Option<ConvCache>,
}

#[derive(Debug)]
struct ConvCache {
    cols: Tensor,
    geom: Conv2dGeom,
    batch: usize,
    out_h: usize,
    out_w: usize,
}

impl Conv2d {
    /// Creates a 2-D convolution with He-normal initialization.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let patch = in_channels * kernel * kernel;
        let weight = init::he_normal(rng, &[out_channels, patch], patch);
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            grad_weight: Tensor::zeros_like(&weight),
            grad_bias: Tensor::zeros(&[out_channels]),
            bias: Tensor::zeros(&[out_channels]),
            weight,
            cached: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn geom_for(&self, shape: &[usize]) -> Result<Conv2dGeom> {
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "conv2d expects [n, {}, h, w] input, got {shape:?}",
                    self.in_channels
                ),
            });
        }
        Ok(Conv2dGeom {
            channels: self.in_channels,
            height: shape[2],
            width: shape[3],
            kernel_h: self.kernel,
            kernel_w: self.kernel,
            stride: self.stride,
            padding: self.padding,
        })
    }
}

/// Rearranges `[n*oh*ow, oc]` matrix rows into `[n, oc, oh, ow]` layout.
///
/// Both layouts keep each sample's block contiguous, so the transpose is
/// parallelized over samples on the [`par`] pool (pure per-element copies —
/// bit-identical for any thread count).
fn rows_to_nchw(rows: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
    let src = rows.as_slice();
    let sample = oc * oh * ow;
    let mut out = vec![0.0f32; n * sample];
    if sample > 0 {
        let min_samples = (PAR_MIN_CELLS / sample).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, block) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for y in 0..oh {
                    for x in 0..ow {
                        let row = ((i * oh + y) * ow + x) * oc;
                        for c in 0..oc {
                            block[(c * oh + y) * ow + x] = src[row + c];
                        }
                    }
                }
            }
        });
    }
    // lint: allow(L001, length is n*oc*oh*ow by construction)
    Tensor::from_vec(out, &[n, oc, oh, ow]).expect("size preserved")
}

/// Inverse of [`rows_to_nchw`].
fn nchw_to_rows(t: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
    let src = t.as_slice();
    let sample = oh * ow * oc;
    let mut out = vec![0.0f32; n * sample];
    if sample > 0 {
        let min_samples = (PAR_MIN_CELLS / sample).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, block) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for y in 0..oh {
                    for x in 0..ow {
                        let row = ((y * ow) + x) * oc;
                        for c in 0..oc {
                            block[row + c] = src[((i * oc + c) * oh + y) * ow + x];
                        }
                    }
                }
            }
        });
    }
    // lint: allow(L001, length is n*oh*ow*oc by construction)
    Tensor::from_vec(out, &[n * oh * ow, oc]).expect("size preserved")
}

/// Rearranges `[n*ol, oc]` matrix rows into `[n, oc, ol]` layout (1-D
/// counterpart of [`rows_to_nchw`]).
fn rows_to_ncl(rows: &Tensor, n: usize, oc: usize, ol: usize) -> Tensor {
    let src = rows.as_slice();
    let sample = oc * ol;
    let mut out = vec![0.0f32; n * sample];
    if sample > 0 {
        let min_samples = (PAR_MIN_CELLS / sample).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, block) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for o in 0..ol {
                    let row = (i * ol + o) * oc;
                    for c in 0..oc {
                        block[c * ol + o] = src[row + c];
                    }
                }
            }
        });
    }
    // lint: allow(L001, length is n*oc*ol by construction)
    Tensor::from_vec(out, &[n, oc, ol]).expect("size preserved")
}

/// Inverse of [`rows_to_ncl`].
fn ncl_to_rows(t: &Tensor, n: usize, oc: usize, ol: usize) -> Tensor {
    let src = t.as_slice();
    let sample = ol * oc;
    let mut out = vec![0.0f32; n * sample];
    if sample > 0 {
        let min_samples = (PAR_MIN_CELLS / sample).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, block) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for o in 0..ol {
                    for c in 0..oc {
                        block[o * oc + c] = src[(i * oc + c) * ol + o];
                    }
                }
            }
        });
    }
    // lint: allow(L001, length is n*ol*oc by construction)
    Tensor::from_vec(out, &[n * ol, oc]).expect("size preserved")
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let geom = self.geom_for(input.shape())?;
        let (oh, ow) = geom.output_size()?;
        let n = input.shape()[0];
        let cols = im2col2d(input, &geom)?;
        let rows = cols.matmul_t(&self.weight)?.add_row_broadcast(&self.bias)?;
        let out = rows_to_nchw(&rows, n, self.out_channels, oh, ow);
        self.cached = Some(ConvCache {
            cols,
            geom,
            batch: n,
            out_h: oh,
            out_w: ow,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv2d" })?;
        let g_rows = nchw_to_rows(
            grad_output,
            cache.batch,
            self.out_channels,
            cache.out_h,
            cache.out_w,
        );
        // dW += g_rowsᵀ · cols
        let gw = g_rows.t_matmul(&cache.cols)?;
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&g_rows.sum_rows()?)?;
        // d cols = g_rows · W ; fold back onto the input.
        let g_cols = g_rows.matmul(&self.weight)?;
        Ok(col2im2d(&g_cols, cache.batch, &cache.geom)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.weight, &self.grad_weight),
            (&mut self.bias, &self.grad_bias),
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clear_cache(&mut self) {
        self.cached = None;
    }
}

/// 1-D convolution over `[batch, channels, len]` waveforms (M18 family).
#[derive(Debug)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached: Option<Conv1dCache>,
}

#[derive(Debug)]
struct Conv1dCache {
    cols: Tensor,
    geom: Conv1dGeom,
    batch: usize,
    out_len: usize,
}

impl Conv1d {
    /// Creates a 1-D convolution with He-normal initialization.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let patch = in_channels * kernel;
        let weight = init::he_normal(rng, &[out_channels, patch], patch);
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            grad_weight: Tensor::zeros_like(&weight),
            grad_bias: Tensor::zeros(&[out_channels]),
            bias: Tensor::zeros(&[out_channels]),
            weight,
            cached: None,
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 3 || shape[1] != self.in_channels {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "conv1d expects [n, {}, len] input, got {shape:?}",
                    self.in_channels
                ),
            });
        }
        let geom = Conv1dGeom {
            channels: self.in_channels,
            len: shape[2],
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        };
        let ol = geom.output_len()?;
        let n = shape[0];
        let cols = im2col1d(input, &geom)?;
        let rows = cols.matmul_t(&self.weight)?.add_row_broadcast(&self.bias)?;
        let out = rows_to_ncl(&rows, n, self.out_channels, ol);
        self.cached = Some(Conv1dCache {
            cols,
            geom,
            batch: n,
            out_len: ol,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "conv1d" })?;
        let (n, ol, oc) = (cache.batch, cache.out_len, self.out_channels);
        let g_rows = ncl_to_rows(grad_output, n, oc, ol);
        let gw = g_rows.t_matmul(&cache.cols)?;
        self.grad_weight.add_assign(&gw)?;
        self.grad_bias.add_assign(&g_rows.sum_rows()?)?;
        let g_cols = g_rows.matmul(&self.weight)?;
        Ok(col2im1d(&g_cols, n, &cache.geom)?)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_weight, &self.grad_bias]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.grad_weight, &mut self.grad_bias]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        vec![
            (&mut self.weight, &self.grad_weight),
            (&mut self.bias, &self.grad_bias),
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "conv1d"
    }

    fn clear_cache(&mut self) {
        self.cached = None;
    }
}

/// Flattens `[batch, ...]` into `[batch, features]`.
///
/// Bridges convolutional feature maps into dense classification heads.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "flatten requires a batched input".into(),
            });
        }
        self.cached_shape = Some(shape.to_vec());
        let features: usize = shape[1..].iter().product();
        Ok(input.reshape(&[shape[0], features])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "flatten" })?;
        Ok(grad_output.reshape(shape)?)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clear_cache(&mut self) {
        self.cached_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_output_shape() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(3, 4, 3, 2, 1, &mut rng);
        let x = rng.randn(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn conv2d_gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = rng.randn(&[1, 2, 4, 4]);
        let y = conv.forward(&x, true).unwrap();
        let f0 = y.sum();
        let grad_out = Tensor::ones(y.shape());
        let gx = conv.backward(&grad_out).unwrap();

        let eps = 1e-2;
        // Weight gradient spot-check.
        for &(i, j) in &[(0, 0), (2, 17)] {
            let mut w2 = conv.weight.clone();
            let old = w2.get(&[i, j]).unwrap();
            w2.set(&[i, j], old + eps).unwrap();
            let mut conv2 = Conv2d::new(2, 3, 3, 1, 1, &mut Rng::seed_from(99));
            conv2.weight = w2;
            conv2.bias = conv.bias.clone();
            let f1 = conv2.forward(&x, true).unwrap().sum();
            let numeric = (f1 - f0) / eps;
            let analytic = conv.grad_weight.get(&[i, j]).unwrap();
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                "dW[{i},{j}] numeric={numeric} analytic={analytic}"
            );
        }
        // Input gradient spot-check.
        let mut x2 = x.clone();
        let old = x2.get(&[0, 1, 2, 3]).unwrap();
        x2.set(&[0, 1, 2, 3], old + eps).unwrap();
        let f1 = conv.forward(&x2, true).unwrap().sum();
        let numeric = (f1 - f0) / eps;
        let analytic = gx.get(&[0, 1, 2, 3]).unwrap();
        assert!((numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()));
    }

    #[test]
    fn conv1d_output_shape_and_gradcheck() {
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv1d::new(2, 3, 5, 2, 2, &mut rng);
        let x = rng.randn(&[2, 2, 16]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 3, 8]);

        let f0 = y.sum();
        let gx = conv.backward(&Tensor::ones(y.shape())).unwrap();
        let eps = 1e-2;
        let mut x2 = x.clone();
        let old = x2.get(&[1, 0, 7]).unwrap();
        x2.set(&[1, 0, 7], old + eps).unwrap();
        let f1 = conv.forward(&x2, true).unwrap().sum();
        let numeric = (f1 - f0) / eps;
        let analytic = gx.get(&[1, 0, 7]).unwrap();
        assert!((numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let y = flat.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let gx = flat.backward(&y).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4]);
        assert_eq!(gx.as_slice(), x.as_slice());
    }

    #[test]
    fn conv2d_rejects_wrong_channels() {
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = rng.randn(&[1, 2, 8, 8]);
        assert!(conv.forward(&x, true).is_err());
    }
}

//! Pooling layers: max pooling (VGG11, M18) and global average pooling
//! (ResNet20 head).

use crate::{Layer, NnError, Result};
use dinar_tensor::Tensor;

/// Non-overlapping 2-D max pooling over `[n, c, h, w]` inputs.
///
/// Kernel and stride are equal (the configuration used by VGG-style
/// networks). Input height/width must be divisible by the kernel.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    cached: Option<MaxPoolCache>,
}

#[derive(Debug)]
struct MaxPoolCache {
    input_shape: Vec<usize>,
    /// Flat input index of the max element for every output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given kernel (= stride).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pooling kernel must be positive");
        MaxPool2d { kernel, cached: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 || shape[2] % self.kernel != 0 || shape[3] % self.kernel != 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "maxpool2d(k={}) requires [n, c, h, w] with h, w divisible by k; got {shape:?}",
                    self.kernel
                ),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let k = self.kernel;
        let (oh, ow) = (h / k, w / k);
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for i in 0..n {
            for ch in 0..c {
                let plane = (i * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane + (oy * k) * w + ox * k;
                        let mut best = x[best_idx];
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = plane + (oy * k + ky) * w + ox * k + kx;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((i * c + ch) * oh + oy) * ow + ox;
                        out[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.cached = Some(MaxPoolCache {
            input_shape: shape.to_vec(),
            argmax,
        });
        Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "maxpool2d" })?;
        let mut grad_in = Tensor::zeros(&cache.input_shape);
        let gi = grad_in.as_mut_slice();
        for (o, &idx) in cache.argmax.iter().enumerate() {
            gi[idx] += grad_output.as_slice()[o];
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clear_cache(&mut self) {
        self.cached = None;
    }
}

/// Non-overlapping 1-D max pooling over `[n, c, len]` inputs (M18).
#[derive(Debug)]
pub struct MaxPool1d {
    kernel: usize,
    cached: Option<MaxPoolCache>,
}

impl MaxPool1d {
    /// Creates a 1-D max-pooling layer with the given kernel (= stride).
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pooling kernel must be positive");
        MaxPool1d { kernel, cached: None }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 3 || shape[2] % self.kernel != 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "maxpool1d(k={}) requires [n, c, len] with len divisible by k; got {shape:?}",
                    self.kernel
                ),
            });
        }
        let (n, c, l) = (shape[0], shape[1], shape[2]);
        let k = self.kernel;
        let ol = l / k;
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c * ol];
        let mut argmax = vec![0usize; n * c * ol];
        for i in 0..n {
            for ch in 0..c {
                let line = (i * c + ch) * l;
                for o in 0..ol {
                    let mut best_idx = line + o * k;
                    let mut best = x[best_idx];
                    for kk in 1..k {
                        let idx = line + o * k + kk;
                        if x[idx] > best {
                            best = x[idx];
                            best_idx = idx;
                        }
                    }
                    let oidx = (i * c + ch) * ol + o;
                    out[oidx] = best;
                    argmax[oidx] = best_idx;
                }
            }
        }
        self.cached = Some(MaxPoolCache {
            input_shape: shape.to_vec(),
            argmax,
        });
        Ok(Tensor::from_vec(out, &[n, c, ol])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "maxpool1d" })?;
        let mut grad_in = Tensor::zeros(&cache.input_shape);
        let gi = grad_in.as_mut_slice();
        for (o, &idx) in cache.argmax.iter().enumerate() {
            gi[idx] += grad_output.as_slice()[o];
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "maxpool1d"
    }

    fn clear_cache(&mut self) {
        self.cached = None;
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]` or `[n, c, len]` → `[n, c]`.
///
/// Used as the ResNet20 and M18 heads before the final classifier.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() < 3 {
            return Err(NnError::InvalidConfig {
                reason: format!("global average pool requires [n, c, ...], got {shape:?}"),
            });
        }
        let (n, c) = (shape[0], shape[1]);
        let spatial: usize = shape[2..].iter().product();
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c];
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * spatial;
                out[i * c + ch] = x[base..base + spatial].iter().sum::<f32>() / spatial as f32;
            }
        }
        self.cached_shape = Some(shape.to_vec());
        Ok(Tensor::from_vec(out, &[n, c])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "global_avg_pool" })?;
        let (n, c) = (shape[0], shape[1]);
        let spatial: usize = shape[2..].iter().product();
        let mut grad_in = Tensor::zeros(shape);
        let gi = grad_in.as_mut_slice();
        let g = grad_output.as_slice();
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * spatial;
                let v = g[i * c + ch] / spatial as f32;
                for s in 0..spatial {
                    gi[base + s] = v;
                }
            }
        }
        Ok(grad_in)
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn clear_cache(&mut self) {
        self.cached_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool2d_picks_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, 2.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 9.0, 2.0]);
    }

    #[test]
    fn maxpool2d_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x, true).unwrap();
        let gx = pool
            .backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool2d_rejects_indivisible_input() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 3, 4]);
        assert!(pool.forward(&x, true).is_err());
    }

    #[test]
    fn maxpool1d_basic() {
        let mut pool = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 4]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 3.0]);
        let gx = pool
            .backward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_averages_and_distributes() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1]);
        assert_eq!(y.as_slice(), &[4.0]);
        let gx = pool
            .backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_works_on_1d() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 1, 2]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 1]);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }
}

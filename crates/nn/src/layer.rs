//! The [`Layer`] trait: the unit of composition for models.

use crate::Result;
use dinar_tensor::Tensor;

/// A differentiable network layer.
///
/// Layers own their parameters and accumulated gradients and cache whatever
/// activations the backward pass needs. `forward` must be called before
/// `backward`; gradients *accumulate* across calls until [`Layer::zero_grad`].
///
/// The paper's middleware operates at layer granularity, so this trait exposes
/// paired parameter/gradient access ([`Layer::params_and_grads`]) used by the
/// optimizers, plus read-only access used by the FL engine and the
/// sensitivity analysis.
///
/// This trait is object-safe; models store `Box<dyn Layer>`.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output for `input`.
    ///
    /// `train` selects training behaviour (e.g. batch statistics in
    /// batch-norm); inference passes `false`.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` has an incompatible shape.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Propagates `grad_output` backwards, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] if no forward pass
    /// has been cached, or a tensor error on shape mismatch.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// The layer's parameter tensors (empty for parameterless layers).
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the parameter tensors.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// The accumulated gradient tensors, aligned with [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the accumulated gradients (used by defenses that
    /// clip or noise gradients before the optimizer step, e.g. DP-SGD).
    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Paired mutable-parameter / shared-gradient access for optimizers.
    ///
    /// Implementations split-borrow their fields so parameters can be updated
    /// while reading the matching gradients in one pass.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &Tensor)> {
        Vec::new()
    }

    /// Non-trainable state tensors (e.g. batch-norm running statistics).
    ///
    /// Buffers are part of the model state exchanged in federated
    /// aggregation, but optimizers never update them.
    fn buffers(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the buffer tensors.
    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Resets accumulated gradients to zero.
    fn zero_grad(&mut self) {}

    /// Short human-readable layer name (e.g. `"dense"`, `"conv2d"`).
    fn name(&self) -> &'static str;

    /// `true` if the layer carries trainable parameters.
    ///
    /// This determines whether the layer occupies an index in the model's
    /// *trainable layer* numbering — the numbering used throughout the paper
    /// ("the penultimate layer", "layer p").
    fn is_trainable(&self) -> bool {
        !self.params().is_empty()
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|t| t.len()).sum()
    }

    /// Clears cached activations (used when cloning model states).
    fn clear_cache(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;

    #[test]
    fn parameterless_layer_defaults() {
        let relu = ReLU::new();
        assert!(!relu.is_trainable());
        assert_eq!(relu.param_count(), 0);
        assert!(relu.params().is_empty());
        assert!(relu.grads().is_empty());
    }
}

use dinar_tensor::wire::WireError;
use dinar_tensor::TensorError;
use std::fmt;

/// Error type for network construction, forward/backward passes and
/// optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// Layer that was asked to run backward.
        layer: &'static str,
    },
    /// A model or layer was configured inconsistently.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Label vector length does not match the batch size.
    LabelMismatch {
        /// Number of rows in the logits.
        batch: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A label value was out of range for the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A layer index did not refer to a trainable layer of the model.
    NoSuchLayer {
        /// The offending index.
        index: usize,
        /// Number of trainable layers in the model.
        trainable: usize,
    },
    /// Parameter structures being combined have different architectures.
    ParamShapeMismatch {
        /// Human-readable description.
        reason: String,
    },
    /// A wire-format encode/decode of a parameter snapshot failed.
    Wire(WireError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer `{layer}`")
            }
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::LabelMismatch { batch, labels } => {
                write!(f, "batch has {batch} rows but {labels} labels were provided")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::NoSuchLayer { index, trainable } => {
                write!(f, "layer index {index} invalid: model has {trainable} trainable layers")
            }
            NnError::ParamShapeMismatch { reason } => {
                write!(f, "parameter shape mismatch: {reason}")
            }
            NnError::Wire(e) => write!(f, "wire codec error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<WireError> for NnError {
    fn from(e: WireError) -> Self {
        NnError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts_and_chains() {
        let te = TensorError::Empty { op: "max" };
        let ne: NnError = te.clone().into();
        assert!(ne.to_string().contains("max"));
        assert!(std::error::Error::source(&ne).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}

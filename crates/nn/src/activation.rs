//! Parameterless activation layers: ReLU and Tanh.

use crate::{Layer, NnError, Result};
use dinar_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// Used by the convolutional architectures (ResNet20, VGG11, M18).
#[derive(Debug, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        ReLU { cached_input: None }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "relu" })?;
        Ok(grad_output.zip_with(input, "relu_backward", |g, x| if x > 0.0 { g } else { 0.0 })?)
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

/// Hyperbolic tangent activation.
///
/// The paper's Purchase100/Texas100 fully-connected networks use Tanh
/// activations (§5.1).
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh activation layer.
    pub fn new() -> Self {
        Tanh { cached_output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let out = self
            .cached_output
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "tanh" })?;
        // d tanh(x)/dx = 1 - tanh(x)^2, computed from the cached output.
        Ok(grad_output.zip_with(out, "tanh_backward", |g, y| g * (1.0 - y * y))?)
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn clear_cache(&mut self) {
        self.cached_output = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Rng;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        relu.forward(&x, true).unwrap();
        let g = Tensor::from_slice(&[10.0, 10.0, 10.0]);
        let gx = relu.backward(&g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut tanh = Tanh::new();
        let mut rng = Rng::seed_from(0);
        let x = rng.randn(&[1, 5]);
        let y = tanh.forward(&x, true).unwrap();
        let f0 = y.sum();
        let gx = tanh.backward(&Tensor::ones(&[1, 5])).unwrap();
        let eps = 1e-3;
        for j in 0..5 {
            let mut x2 = x.clone();
            let old = x2.get(&[0, j]).unwrap();
            x2.set(&[0, j], old + eps).unwrap();
            let f1 = tanh.forward(&x2, true).unwrap().sum();
            let numeric = (f1 - f0) / eps;
            assert!(
                (numeric - gx.get(&[0, j]).unwrap()).abs() < 1e-2,
                "index {j}"
            );
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let g = Tensor::ones(&[1]);
        assert!(ReLU::new().backward(&g).is_err());
        assert!(Tanh::new().backward(&g).is_err());
    }
}

//! Checkpointing: persist and restore model parameter state.
//!
//! Cross-silo deployments checkpoint the global model between rounds and
//! exchange serialized parameters over the wire. [`ModelParams`] implements
//! the in-repo [`ToJson`] encoding; these helpers add a versioned JSON
//! envelope with an architecture fingerprint so that loading into a
//! mismatched model fails loudly instead of silently misassigning tensors.

use crate::{ModelParams, NnError, Result};
use dinar_tensor::json::{Json, ToJson};
use std::fs;
use std::path::Path;

/// Envelope format version.
const VERSION: u64 = 1;

/// Shape fingerprint of a parameter set: per layer, per tensor, the shape.
fn fingerprint(params: &ModelParams) -> Vec<Vec<Vec<usize>>> {
    params
        .layers
        .iter()
        .map(|l| l.tensors.iter().map(|t| t.shape().to_vec()).collect())
        .collect()
}

/// Serializes parameters to a JSON string.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if serialization fails (practically
/// impossible for in-memory parameters).
pub fn to_json(params: &ModelParams) -> Result<String> {
    let envelope = Json::obj(vec![
        ("version", VERSION.to_json()),
        ("fingerprint", fingerprint(params).to_json()),
        ("params", params.to_json()),
    ]);
    Ok(envelope.dump())
}

/// Deserializes parameters from a JSON string, verifying the envelope.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for malformed JSON or an unsupported
/// version, and [`NnError::ParamShapeMismatch`] if the payload's tensors do
/// not match its own fingerprint (a corrupted or tampered checkpoint).
pub fn from_json(json: &str) -> Result<ModelParams> {
    let value = Json::parse(json).map_err(|e| NnError::InvalidConfig {
        reason: format!("malformed checkpoint: {e}"),
    })?;
    let version = value
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| NnError::InvalidConfig {
            reason: "checkpoint missing numeric `version`".into(),
        })?;
    if version != VERSION {
        return Err(NnError::InvalidConfig {
            reason: format!("unsupported checkpoint version {version} (expected {VERSION})"),
        });
    }
    let declared = parse_fingerprint(value.get("fingerprint").ok_or_else(|| {
        NnError::InvalidConfig {
            reason: "checkpoint missing `fingerprint`".into(),
        }
    })?)?;
    let params = ModelParams::from_json(value.get("params").ok_or_else(|| {
        NnError::InvalidConfig {
            reason: "checkpoint missing `params`".into(),
        }
    })?)?;
    if fingerprint(&params) != declared {
        return Err(NnError::ParamShapeMismatch {
            reason: "checkpoint fingerprint does not match its tensors".into(),
        });
    }
    Ok(params)
}

/// Parses the nested shape-fingerprint array from a checkpoint envelope.
fn parse_fingerprint(value: &Json) -> Result<Vec<Vec<Vec<usize>>>> {
    let malformed = || NnError::InvalidConfig {
        reason: "checkpoint `fingerprint` is not a nested array of shapes".into(),
    };
    value
        .as_arr()
        .ok_or_else(malformed)?
        .iter()
        .map(|layer| {
            layer
                .as_arr()
                .ok_or_else(malformed)?
                .iter()
                .map(|shape| {
                    shape
                        .as_arr()
                        .ok_or_else(malformed)?
                        .iter()
                        .map(|d| d.as_usize().ok_or_else(malformed))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Saves parameters to a file.
///
/// # Errors
///
/// Propagates serialization errors; I/O failures surface as
/// [`NnError::InvalidConfig`] with the path in the message.
pub fn save(params: &ModelParams, path: impl AsRef<Path>) -> Result<()> {
    let json = to_json(params)?;
    fs::write(path.as_ref(), json).map_err(|e| NnError::InvalidConfig {
        reason: format!("cannot write checkpoint {}: {e}", path.as_ref().display()),
    })
}

/// Loads parameters from a file.
///
/// # Errors
///
/// Same conditions as [`from_json`], plus I/O failures as
/// [`NnError::InvalidConfig`].
pub fn load(path: impl AsRef<Path>) -> Result<ModelParams> {
    let json = fs::read_to_string(path.as_ref()).map_err(|e| NnError::InvalidConfig {
        reason: format!("cannot read checkpoint {}: {e}", path.as_ref().display()),
    })?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{self, Activation};
    use dinar_tensor::Rng;

    fn params() -> ModelParams {
        let mut rng = Rng::seed_from(7);
        models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng)
            .unwrap()
            .params()
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let original = params();
        let json = to_json(&original).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dinar-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let original = params();
        save(&original, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(original, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_params_install_into_matching_model() {
        let mut rng = Rng::seed_from(7);
        let mut model = models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng).unwrap();
        let json = to_json(&params()).unwrap();
        let restored = from_json(&json).unwrap();
        model.set_params(&restored).unwrap();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            from_json("{not json"),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let json = to_json(&params()).unwrap().replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            from_json(&json),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load("/nonexistent/dinar.ckpt").unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
    }
}

//! Checkpoint file I/O: persist and restore model parameter state.
//!
//! Thin convenience wrappers over the versioned [`crate::ckpt`] (`DNCK`)
//! binary format. Historically this module carried its own JSON envelope
//! with a shape fingerprint; that duplicate serialization path is gone —
//! `DNCK` is the single on-disk format, its per-tensor shape headers serve
//! as the fingerprint, and loading into a mismatched model still fails
//! loudly at [`crate::Model::set_params`].

use crate::{ckpt, ModelParams, Result};
use dinar_tensor::Dtype;
use std::path::Path;

/// Saves parameters to a lossless (f32) `DNCK` checkpoint file.
///
/// Use [`ckpt::save`] directly to pick a narrower storage width (f16/i8).
///
/// # Errors
///
/// Propagates encode errors; I/O failures surface as
/// [`crate::NnError::InvalidConfig`] with the path in the message.
pub fn save(params: &ModelParams, path: impl AsRef<Path>) -> Result<()> {
    ckpt::save(params, Dtype::F32, path)
}

/// Loads parameters from a `DNCK` checkpoint file, widening any narrow
/// (f16/i8) sections to dense f32.
///
/// # Errors
///
/// Returns [`crate::NnError::Wire`] for corrupt or truncated checkpoints
/// and [`crate::NnError::InvalidConfig`] for I/O failures.
pub fn load(path: impl AsRef<Path>) -> Result<ModelParams> {
    ckpt::load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{self, Activation};
    use crate::NnError;
    use dinar_tensor::Rng;

    fn params() -> ModelParams {
        let mut rng = Rng::seed_from(7);
        models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng)
            .unwrap()
            .params()
    }

    #[test]
    fn file_roundtrip_is_exact() {
        let dir = std::env::temp_dir().join("dinar-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.dnck");
        let original = params();
        save(&original, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(original, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_params_install_into_matching_model() {
        let dir = std::env::temp_dir().join("dinar-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("install.dnck");
        save(&params(), &path).unwrap();
        let restored = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut rng = Rng::seed_from(7);
        let mut model = models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng).unwrap();
        model.set_params(&restored).unwrap();
    }

    #[test]
    fn malformed_file_rejected() {
        let dir = std::env::temp_dir().join("dinar-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.dnck");
        std::fs::write(&path, b"{not a checkpoint").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, NnError::Wire(_)), "got {err:?}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load("/nonexistent/dinar.dnck").unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
    }
}

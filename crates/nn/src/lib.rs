//! # dinar-nn
//!
//! Neural-network substrate of the DINAR reproduction: layers, models, losses
//! and optimizers, built on [`dinar-tensor`](dinar_tensor).
//!
//! The design is driven by what the paper needs:
//!
//! * **Per-layer parameter and gradient access.** DINAR's whole contribution
//!   is *fine-grained, per-layer* protection: the sensitivity analysis
//!   (Fig. 1/4) measures each layer's gradient divergence, and the
//!   obfuscation step (Alg. 1, line 17) replaces the parameters of one layer.
//!   [`Model`] therefore exposes its parameters as a [`ModelParams`]
//!   structure with one [`LayerParams`] entry per *trainable* layer, and
//!   per-layer gradients via [`Model::layer_gradients`].
//! * **The paper's model zoo.** [`models`] provides the four architectures of
//!   Table 2 — the 6-layer fully-connected network (Purchase100/Texas100),
//!   VGG11 (GTSRB/CelebA), ResNet20 (CIFAR-10/100) and M18 (Speech
//!   Commands) — each in a `full` profile matching the paper's dimensions and
//!   a `mini` profile for CPU-scale experiments.
//! * **The optimizers of Algorithm 1 and the ablation (Fig. 11).**
//!   [`optim`] implements the paper's Adagrad-style adaptive gradient descent
//!   (Alg. 1 lines 8–14) plus SGD, Adam, AdaMax, RMSProp and ADGD.
//!
//! # Example
//!
//! ```
//! use dinar_nn::{models, loss::CrossEntropyLoss, optim::{Optimizer, Sgd}};
//! use dinar_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let mut model = models::mlp(&[4, 16, 3], models::Activation::Tanh, &mut rng)?;
//! let x = rng.randn(&[8, 4]);
//! let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! let mut opt = Sgd::new(0.1);
//! let logits = model.forward(&x, true)?;
//! let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &y)?;
//! model.backward(&grad)?;
//! opt.step(&mut model)?;
//! assert!(loss > 0.0);
//! # Ok::<(), dinar_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod ckpt;
pub mod conv;
pub mod dense;
pub mod dropout;
mod error;
pub mod init;
pub mod io;
pub mod layer;
pub mod loss;
pub mod model;
pub mod models;
pub mod norm;
pub mod optim;
pub mod params;
pub mod pool;
pub mod serve;
pub mod snapshot;
pub mod view;

pub use error::NnError;
pub use layer::Layer;
pub use model::Model;
pub use params::{LayerParams, ModelParams};
pub use view::{ParamView, ParamViewMut};

/// Crate-wide result alias for fallible network operations.
pub type Result<T> = std::result::Result<T, NnError>;

//! Wire-format encode/decode of [`ModelParams`] snapshots.
//!
//! The FL transport exchanges models as bytes, not handles: the server
//! broadcasts an encoded global snapshot and every client upload comes
//! back encoded (optionally compressed). This module defines the
//! model-level framing over the tensor-level codec in
//! [`dinar_tensor::wire`]:
//!
//! ```text
//! header (magic "DNWR", version u16, codec u8)
//! layer_count: u32
//! per layer: tensor_count u32, then tensor frames (see dinar_tensor::wire)
//! ```
//!
//! Encoding reads straight out of the snapshot's copy-on-write buffers —
//! take the snapshot with [`ModelParams::share`] and serialization is the
//! only pass over the data. [`decode_params`] validates every length
//! header against the buffer before allocating and returns typed errors
//! for any corruption; it never panics.
//!
//! # Error feedback
//!
//! The lossy codecs ([`Codec::Sign1`], [`Codec::QuantI8`]) discard
//! per-element information every round. [`ErrorFeedback`] implements the
//! standard compensation: the residual `v − decode(encode(v))` is carried
//! client-side and added to the next round's update before encoding, so
//! quantization error accumulates into later rounds instead of being lost
//! (Seide et al.'s 1-bit SGD trick). For [`Codec::F32`] the residual is
//! identically zero and is not materialized.

use crate::{ModelParams, NnError, Result};
use dinar_tensor::wire::{
    decode_tensor, encode_tensor, encoded_tensor_len, read_header, write_header, ByteReader,
    ByteWriter, Codec, WireError, HEADER_LEN,
};

/// Exact byte length [`encode_params`] will produce for `params` under
/// `codec` — usable for byte metering without encoding.
pub fn encoded_params_len(params: &ModelParams, codec: Codec) -> usize {
    let mut total = HEADER_LEN + 4;
    for layer in &params.layers {
        total += 4;
        for t in &layer.tensors {
            total += encoded_tensor_len(t, codec);
        }
    }
    total
}

/// Encodes a parameter snapshot to wire bytes under `codec`, reading
/// directly from the snapshot's shared buffers (no copy-on-write
/// materialization) into a single exactly-sized allocation.
///
/// # Errors
///
/// Returns [`NnError::Wire`] if a layer/tensor count or dimension exceeds
/// the `u32` wire fields.
pub fn encode_params(params: &ModelParams, codec: Codec) -> Result<Vec<u8>> {
    let mut w = ByteWriter::with_capacity(encoded_params_len(params, codec));
    write_header(&mut w, codec);
    w.put_u32(wire_len(params.layers.len(), "layer count")?);
    for layer in &params.layers {
        w.put_u32(wire_len(layer.tensors.len(), "tensor count")?);
        for t in &layer.tensors {
            encode_tensor(t, codec, &mut w).map_err(NnError::Wire)?;
        }
    }
    Ok(w.into_bytes())
}

/// Decodes wire bytes back into a [`ModelParams`], reading the codec from
/// the stream header. The whole buffer must be consumed.
///
/// # Errors
///
/// Returns [`NnError::Wire`] for truncated buffers, bad magic/version,
/// unknown codecs, overflowing length headers, corrupt payloads or
/// trailing bytes. Never panics.
pub fn decode_params(bytes: &[u8]) -> Result<ModelParams> {
    let mut r = ByteReader::new(bytes);
    let codec = read_header(&mut r).map_err(NnError::Wire)?;
    let layer_count = r.read_u32().map_err(NnError::Wire)?;
    // Counts come from the wire: grow the Vecs by push so a corrupt huge
    // count hits a Truncated error instead of a giant reservation.
    let mut layers = Vec::new();
    for _ in 0..layer_count {
        let tensor_count = r.read_u32().map_err(NnError::Wire)?;
        let mut tensors = Vec::new();
        for _ in 0..tensor_count {
            tensors.push(decode_tensor(&mut r, codec).map_err(NnError::Wire)?);
        }
        layers.push(crate::params::LayerParams::new(tensors));
    }
    r.finish().map_err(NnError::Wire)?;
    Ok(ModelParams::new(layers))
}

pub(crate) fn wire_len(n: usize, what: &'static str) -> Result<u32> {
    u32::try_from(n).map_err(|_| {
        NnError::Wire(WireError::LengthOverflow {
            what,
            value: u64::try_from(n).unwrap_or(u64::MAX),
        })
    })
}

/// Client-side error-feedback state for lossy update compression.
///
/// Holds the residual (quantization error) of the previous round and
/// folds it into the next update before encoding. One instance per
/// client; the state never crosses the wire.
#[derive(Debug, Default)]
pub struct ErrorFeedback {
    residual: Option<ModelParams>,
}

impl ErrorFeedback {
    /// Fresh state with no carried residual.
    pub fn new() -> ErrorFeedback {
        ErrorFeedback::default()
    }

    /// Whether a residual is currently carried.
    pub fn has_residual(&self) -> bool {
        self.residual.is_some()
    }

    /// Encodes `update` under `codec`, compensating with and refreshing
    /// the carried residual.
    ///
    /// For a lossless codec this is plain [`encode_params`] and any stale
    /// residual is dropped. For a lossy codec the compensated value
    /// `v = update + residual` is encoded, and the new residual
    /// `v − decode(encode(v))` replaces the old one.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Wire`] on encode failure and
    /// [`NnError::ParamShapeMismatch`] if the carried residual's
    /// architecture no longer matches the update's.
    pub fn compress(&mut self, update: &ModelParams, codec: Codec) -> Result<Vec<u8>> {
        if !codec.is_lossy() {
            self.residual = None;
            return encode_params(update, codec);
        }
        let compensated = match self.residual.take() {
            Some(residual) => {
                let mut v = update.share();
                v.add_assign(&residual)?;
                v
            }
            None => update.share(),
        };
        let bytes = encode_params(&compensated, codec)?;
        let decoded = decode_params(&bytes)?;
        self.residual = Some(compensated.sub(&decoded)?);
        Ok(bytes)
    }

    /// Drops the carried residual (e.g. on a model-architecture change).
    pub fn reset(&mut self) {
        self.residual = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{self, Activation};
    use dinar_tensor::Rng;

    fn small_params() -> ModelParams {
        let mut rng = Rng::seed_from(31);
        let model = models::mlp(&[4, 6, 3], Activation::ReLU, &mut rng).unwrap();
        model.params()
    }

    #[test]
    fn lossless_roundtrip_is_bit_identical() {
        let p = small_params();
        let bytes = encode_params(&p, Codec::F32).unwrap();
        assert_eq!(bytes.len(), encoded_params_len(&p, Codec::F32));
        let back = decode_params(&bytes).unwrap();
        assert!(back.same_shape(&p));
        for (a, b) in p.layers.iter().zip(&back.layers) {
            for (ta, tb) in a.tensors.iter().zip(&b.tensors) {
                let bits_a: Vec<u32> = ta.as_slice().iter().map(|x| x.to_bits()).collect();
                let bits_b: Vec<u32> = tb.as_slice().iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits_a, bits_b);
            }
        }
    }

    #[test]
    fn encode_does_not_materialize_the_cow_snapshot() {
        let p = small_params();
        let snapshot = p.share();
        let before = dinar_tensor::profile::param_snapshot();
        let _ = encode_params(&snapshot, Codec::F32).unwrap();
        let delta = dinar_tensor::profile::param_snapshot().delta_since(&before);
        assert_eq!(delta.copy_calls, 0, "encode deep-copied a shared buffer");
    }

    #[test]
    fn lossy_codecs_roundtrip_shapes_and_sizes() {
        let p = small_params();
        let f32_len = encoded_params_len(&p, Codec::F32);
        for codec in [Codec::Sign1, Codec::QuantI8] {
            let bytes = encode_params(&p, codec).unwrap();
            assert_eq!(bytes.len(), encoded_params_len(&p, codec), "{codec:?}");
            assert!(bytes.len() < f32_len, "{codec:?} did not compress");
            let back = decode_params(&bytes).unwrap();
            assert!(back.same_shape(&p), "{codec:?}");
        }
        // Sign1 is ≥8× smaller than raw f32 once the model is big enough
        // that per-tensor framing stops dominating — the wire plane's
        // headline compression ratio (ratcheted end-to-end by
        // tests/bench_ratchet.rs over BENCH_wire.json).
        let mut rng = Rng::seed_from(5);
        let big = models::mlp(&[64, 32, 10], Activation::ReLU, &mut rng)
            .unwrap()
            .params();
        let sign1 = encode_params(&big, Codec::Sign1).unwrap();
        let raw = encoded_params_len(&big, Codec::F32);
        assert!(sign1.len() * 8 <= raw, "sign1 {} vs f32 {raw}", sign1.len());
    }

    #[test]
    fn error_feedback_recovers_quantization_loss_over_rounds() {
        // Repeatedly transmitting the same update with feedback must
        // converge: the running mean of the decoded transmissions
        // approaches the true update, which a feedback-free encoder can
        // never do (its error is identical every round).
        let p = small_params();
        let mut fb = ErrorFeedback::new();
        let mut mean = p.zeros_like();
        let rounds = 64;
        for _ in 0..rounds {
            let bytes = fb.compress(&p, Codec::Sign1).unwrap();
            let decoded = decode_params(&bytes).unwrap();
            mean.add_assign(&decoded).unwrap();
        }
        mean.scale(1.0 / dinar_tensor::cast::len_to_f32(rounds));
        let err = mean.max_abs_diff(&p).unwrap();
        let mut fb_free = p.zeros_like();
        let once = decode_params(&encode_params(&p, Codec::Sign1).unwrap()).unwrap();
        fb_free.add_assign(&once).unwrap();
        let err_free = fb_free.max_abs_diff(&p).unwrap();
        assert!(
            err < err_free * 0.5,
            "feedback mean err {err} not well under feedback-free {err_free}"
        );
        assert!(fb.has_residual());
    }

    #[test]
    fn lossless_compress_drops_residual_and_matches_plain_encode() {
        let p = small_params();
        let mut fb = ErrorFeedback::new();
        let _ = fb.compress(&p, Codec::QuantI8).unwrap();
        assert!(fb.has_residual());
        let bytes = fb.compress(&p, Codec::F32).unwrap();
        assert!(!fb.has_residual());
        assert_eq!(bytes, encode_params(&p, Codec::F32).unwrap());
    }

    #[test]
    fn corrupted_model_streams_return_typed_errors() {
        let p = small_params();
        let bytes = encode_params(&p, Codec::F32).unwrap();
        // Every strict prefix fails.
        for cut in [0, 3, HEADER_LEN, HEADER_LEN + 2, bytes.len() - 1] {
            assert!(decode_params(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Trailing garbage fails.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_params(&extended),
            Err(NnError::Wire(WireError::TrailingBytes { .. }))
        ));
        // A corrupt layer count runs into truncation, not an abort.
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN] = 0xFF;
        assert!(decode_params(&corrupt).is_err());
    }
}

//! Optimizers.
//!
//! [`Adagrad`] implements exactly the adaptive update of the paper's
//! Algorithm 1 (lines 8–14): accumulate squared gradients `G` and update
//! `θ ← θ − η·∇ / sqrt(G + 1e-5)`. The paper motivates Adagrad over
//! momentum-based methods in federated settings (§4.4); the ablation of
//! Fig. 11 swaps in [`Adam`], [`AdaMax`] and [`Adgd`], all provided here,
//! plus [`Sgd`] and [`RmsProp`] as common baselines.

use crate::{Model, Result};
use dinar_tensor::Tensor;

/// A parameter-update rule.
///
/// Optimizers keep per-parameter state (e.g. accumulated squared gradients)
/// lazily initialized on the first step; [`Optimizer::reset`] clears it, which
/// FL clients do when a new global model arrives between rounds only if the
/// algorithm requires it (DINAR keeps Adagrad state across rounds, matching
/// the accumulated-`G` semantics of Algorithm 1).
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step using the gradients accumulated in `model`.
    ///
    /// # Errors
    ///
    /// Returns an error if parameter/state shapes diverge (which indicates
    /// the optimizer is being reused across different architectures without
    /// [`Optimizer::reset`]).
    fn step(&mut self, model: &mut Model) -> Result<()>;

    /// Clears all optimizer state.
    fn reset(&mut self);

    /// Short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Hands the optimizer the telemetry sink of the client it trains
    /// for, plus that client's id. Plain optimizers ignore it; DP-aware
    /// wrappers (`dinar-defenses`' DP-SGD) use it to charge per-step
    /// (ε, δ) spend to the privacy ledger (lint rule L016).
    fn attach_telemetry(&mut self, telemetry: &dinar_telemetry::Telemetry, client_id: usize) {
        let _ = (telemetry, client_id);
    }

    /// Snapshots the optimizer's mutable state for checkpointing. The
    /// default (for stateless or wrapper optimizers) is the empty state.
    /// Hyper-parameters fixed at construction (learning rate, betas) are
    /// configuration, not state, and are not exported.
    fn export_state(&self) -> OptimState {
        OptimState::default()
    }

    /// Restores state exported by [`Optimizer::export_state`] from the same
    /// optimizer type, so a resumed run steps bit-identically to an
    /// uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::InvalidConfig`] if the snapshot's shape
    /// (scalar/group counts) does not match this optimizer.
    fn import_state(&mut self, state: OptimState) -> Result<()> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(crate::NnError::InvalidConfig {
                reason: format!(
                    "`{}` carries no restorable state, got a non-empty snapshot",
                    self.name()
                ),
            })
        }
    }
}

/// A serializable snapshot of an optimizer's mutable state: what the
/// checkpoint plane persists so a killed run resumes its parameter updates
/// bit-identically.
///
/// The container is deliberately generic — scalar registers plus groups of
/// per-parameter tensors — so one `DNCK` section layout covers every
/// optimizer in the zoo (SGD velocity, Adagrad accumulators, Adam moments
/// and step count, ADGD's λ/θ and previous iterates).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OptimState {
    /// Scalar state registers (e.g. Adam's step count, ADGD's λ and θ).
    pub scalars: Vec<f32>,
    /// Per-parameter tensor state, one group per state slot (e.g. Adam's
    /// first and second moment estimates are two groups).
    pub groups: Vec<Vec<Tensor>>,
}

impl OptimState {
    /// `true` if the snapshot carries no state at all.
    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty() && self.groups.iter().all(Vec::is_empty)
    }
}

/// Validates an imported snapshot's arity against what an optimizer wrote.
fn check_state_arity(
    name: &'static str,
    state: &OptimState,
    scalars: usize,
    groups: usize,
) -> Result<()> {
    if state.scalars.len() != scalars || state.groups.len() != groups {
        return Err(crate::NnError::InvalidConfig {
            reason: format!(
                "`{name}` state snapshot has {} scalar(s) and {} group(s), \
                 expected {scalars} and {groups}",
                state.scalars.len(),
                state.groups.len()
            ),
        });
    }
    Ok(())
}

fn ensure_state(state: &mut Vec<Tensor>, params: &[(&mut Tensor, &Tensor)]) {
    if state.len() != params.len()
        || state
            .iter()
            .zip(params)
            .any(|(s, (p, _))| s.shape() != p.shape())
    {
        *state = params.iter().map(|(p, _)| Tensor::zeros(p.shape())).collect();
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with heavy-ball momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        if self.momentum == 0.0 {
            for (p, g) in &mut pg {
                p.scaled_add_assign(-self.lr, g)?;
            }
        } else {
            ensure_state(&mut self.velocity, &pg);
            for (i, (p, g)) in pg.iter_mut().enumerate() {
                self.velocity[i].scale_inplace(self.momentum);
                self.velocity[i].add_assign(g)?;
                p.scaled_add_assign(-self.lr, &self.velocity[i])?;
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            scalars: Vec::new(),
            groups: vec![self.velocity.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("sgd", &state, 0, 1)?;
        self.velocity = state.groups.swap_remove(0);
        Ok(())
    }
}

/// The paper's adaptive gradient descent (Algorithm 1, lines 8–14).
///
/// `G ← G + ∇²` then `θ ← θ − η · ∇ / sqrt(G + 1e-5)`, with the epsilon
/// *inside* the square root exactly as written in the paper.
#[derive(Debug)]
pub struct Adagrad {
    lr: f32,
    accum: Vec<Tensor>,
}

impl Adagrad {
    /// The epsilon of Algorithm 1 (line 14).
    pub const EPS: f32 = 1e-5;

    /// Creates the optimizer with learning rate `lr` (the paper uses 1e-3).
    pub fn new(lr: f32) -> Self {
        Adagrad {
            lr,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        ensure_state(&mut self.accum, &pg);
        for (i, (p, g)) in pg.iter_mut().enumerate() {
            // G += grad^2
            let acc = self.accum[i].as_mut_slice();
            for (a, &gv) in acc.iter_mut().zip(g.as_slice()) {
                *a += gv * gv;
            }
            // theta -= lr * grad / sqrt(G + eps)
            let ps = p.as_mut_slice();
            for ((pv, &gv), &a) in ps.iter_mut().zip(g.as_slice()).zip(self.accum[i].as_slice())
            {
                *pv -= self.lr * gv / (a + Self::EPS).sqrt();
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.accum.clear();
    }

    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            scalars: Vec::new(),
            groups: vec![self.accum.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("adagrad", &state, 0, 1)?;
        self.accum = state.groups.swap_remove(0);
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        ensure_state(&mut self.m, &pg);
        ensure_state(&mut self.v, &pg);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in pg.iter_mut().enumerate() {
            let (m, v) = (self.m[i].as_mut_slice(), self.v[i].as_mut_slice());
            let ps = p.as_mut_slice();
            for (((pv, &gv), mv), vv) in
                ps.iter_mut().zip(g.as_slice()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            // Exact in f32 up to 2^24 steps — far beyond any training run.
            scalars: vec![self.t as f32],
            groups: vec![self.m.clone(), self.v.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("adam", &state, 1, 2)?;
        self.t = state.scalars[0] as u32;
        self.v = state.groups.swap_remove(1);
        self.m = state.groups.swap_remove(0);
        Ok(())
    }
}

/// AdaMax optimizer — the infinity-norm variant of Adam (Kingma & Ba, 2015).
#[derive(Debug)]
pub struct AdaMax {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    u: Vec<Tensor>,
}

impl AdaMax {
    /// AdaMax with standard defaults.
    pub fn new(lr: f32) -> Self {
        AdaMax {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            u: Vec::new(),
        }
    }
}

impl Optimizer for AdaMax {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        ensure_state(&mut self.m, &pg);
        ensure_state(&mut self.u, &pg);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        for (i, (p, g)) in pg.iter_mut().enumerate() {
            let (m, u) = (self.m[i].as_mut_slice(), self.u[i].as_mut_slice());
            let ps = p.as_mut_slice();
            for (((pv, &gv), mv), uv) in
                ps.iter_mut().zip(g.as_slice()).zip(m.iter_mut()).zip(u.iter_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *uv = (self.beta2 * *uv).max(gv.abs());
                *pv -= self.lr * (*mv / bc1) / (*uv + self.eps);
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.m.clear();
        self.u.clear();
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "adamax"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            scalars: vec![self.t as f32],
            groups: vec![self.m.clone(), self.u.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("adamax", &state, 1, 2)?;
        self.t = state.scalars[0] as u32;
        self.u = state.groups.swap_remove(1);
        self.m = state.groups.swap_remove(0);
        Ok(())
    }
}

/// RMSProp optimizer (Tieleman & Hinton).
#[derive(Debug)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with decay 0.99.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            decay: 0.99,
            eps: 1e-8,
            sq: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        ensure_state(&mut self.sq, &pg);
        for (i, (p, g)) in pg.iter_mut().enumerate() {
            let sq = self.sq[i].as_mut_slice();
            let ps = p.as_mut_slice();
            for ((pv, &gv), sv) in ps.iter_mut().zip(g.as_slice()).zip(sq.iter_mut()) {
                *sv = self.decay * *sv + (1.0 - self.decay) * gv * gv;
                *pv -= self.lr * gv / (sv.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.sq.clear();
    }

    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            scalars: Vec::new(),
            groups: vec![self.sq.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("rmsprop", &state, 0, 1)?;
        self.sq = state.groups.swap_remove(0);
        Ok(())
    }
}

/// ADGD — adaptive gradient descent without descent
/// (Malitsky & Mishchenko, 2020), cited as the paper's Fig. 11 ablation.
///
/// The step size adapts from observed local curvature:
/// `λ_k = min( sqrt(1 + θ_{k-1}) · λ_{k-1},  ‖x_k − x_{k−1}‖ / (2‖∇f(x_k) − ∇f(x_{k−1})‖) )`
/// with `θ_k = λ_k / λ_{k−1}`, requiring no manual learning-rate tuning.
#[derive(Debug)]
pub struct Adgd {
    lambda: f32,
    lambda_min: f32,
    lambda_max: f32,
    theta: f32,
    prev_params: Vec<Tensor>,
    prev_grads: Vec<Tensor>,
}

impl Adgd {
    /// Creates ADGD with an initial step size `lambda0` (e.g. 1e-3).
    ///
    /// The step size is additionally clamped to `[lambda0, 100 × lambda0]`:
    /// ADGD's curvature estimate `‖Δx‖ / 2‖Δg‖` assumes *deterministic*
    /// gradients; across mini-batches the gradient difference is dominated
    /// by batch noise, which collapses the estimate toward zero (and can
    /// also blow it up when batches happen to agree). The clamp keeps the
    /// adaptive rule inside a sane stochastic regime.
    pub fn new(lambda0: f32) -> Self {
        Adgd {
            lambda: lambda0,
            lambda_min: lambda0,
            lambda_max: lambda0 * 100.0,
            theta: 1.0e9, // effectively unbounded on the first adaptive step
            prev_params: Vec::new(),
            prev_grads: Vec::new(),
        }
    }
}

impl Optimizer for Adgd {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        let mut pg = model.params_and_grads();
        if self.prev_params.len() == pg.len() {
            // Adapt the step size from parameter / gradient displacement.
            let mut dx2 = 0.0f64;
            let mut dg2 = 0.0f64;
            for (i, (p, g)) in pg.iter().enumerate() {
                for (&a, &b) in p.as_slice().iter().zip(self.prev_params[i].as_slice()) {
                    dx2 += ((a - b) as f64).powi(2);
                }
                for (&a, &b) in g.as_slice().iter().zip(self.prev_grads[i].as_slice()) {
                    dg2 += ((a - b) as f64).powi(2);
                }
            }
            let bound1 = (1.0 + self.theta).sqrt() * self.lambda;
            let bound2 = if dg2 > 0.0 {
                (dx2.sqrt() / (2.0 * dg2.sqrt())) as f32
            } else {
                f32::MAX
            };
            let new_lambda = bound1.min(bound2).clamp(self.lambda_min, self.lambda_max);
            self.theta = new_lambda / self.lambda;
            self.lambda = new_lambda;
        }
        // Snapshot x_k and g_k, then update.
        self.prev_params = pg.iter().map(|(p, _)| (**p).clone()).collect();
        self.prev_grads = pg.iter().map(|(_, g)| (*g).clone()).collect();
        for (p, g) in &mut pg {
            p.scaled_add_assign(-self.lambda, g)?;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.prev_params.clear();
        self.prev_grads.clear();
        self.theta = 1.0e9;
    }

    fn name(&self) -> &'static str {
        "adgd"
    }

    fn export_state(&self) -> OptimState {
        OptimState {
            // λ and θ evolve per step; the clamp bounds are configuration.
            scalars: vec![self.lambda, self.theta],
            groups: vec![self.prev_params.clone(), self.prev_grads.clone()],
        }
    }

    fn import_state(&mut self, mut state: OptimState) -> Result<()> {
        check_state_arity("adgd", &state, 2, 2)?;
        self.lambda = state.scalars[0];
        self.theta = state.scalars[1];
        self.prev_grads = state.groups.swap_remove(1);
        self.prev_params = state.groups.swap_remove(0);
        Ok(())
    }
}

/// Constructs an optimizer by name — convenience for the ablation harness.
///
/// Recognized names: `"sgd"`, `"adagrad"`, `"adam"`, `"adamax"`, `"rmsprop"`,
/// `"adgd"`. Returns `None` for anything else.
pub fn by_name(name: &str, lr: f32) -> Option<Box<dyn Optimizer>> {
    match name {
        "sgd" => Some(Box::new(Sgd::new(lr))),
        "adagrad" => Some(Box::new(Adagrad::new(lr))),
        "adam" => Some(Box::new(Adam::new(lr))),
        "adamax" => Some(Box::new(AdaMax::new(lr))),
        "rmsprop" => Some(Box::new(RmsProp::new(lr))),
        "adgd" => Some(Box::new(Adgd::new(lr))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropyLoss;
    use crate::models::{self, Activation};
    use dinar_tensor::{Rng, Tensor};

    /// Train a small classifier on a fixed blob problem and return the final
    /// loss.
    fn train_with(opt: &mut dyn Optimizer, epochs: usize) -> f32 {
        let mut rng = Rng::seed_from(7);
        let n = 60;
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = [(0.0, 3.0), (-3.0, -2.0), (3.0, -2.0)][class];
            x.set(&[i, 0], rng.normal_with(cx, 0.6)).unwrap();
            x.set(&[i, 1], rng.normal_with(cy, 0.6)).unwrap();
            labels.push(class);
        }
        let mut model = models::mlp(&[2, 16, 3], Activation::ReLU, &mut rng).unwrap();
        let mut last = f32::MAX;
        for _ in 0..epochs {
            let logits = model.forward(&x, true).unwrap();
            let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
            last = loss;
        }
        last
    }

    #[test]
    fn all_optimizers_reduce_loss() {
        let baseline = 3.0f32.ln(); // uniform-prediction loss
        for (name, mut opt) in [
            ("sgd", Box::new(Sgd::new(0.1)) as Box<dyn Optimizer>),
            ("sgd+momentum", Box::new(Sgd::with_momentum(0.05, 0.9))),
            ("adagrad", Box::new(Adagrad::new(0.1))),
            ("adam", Box::new(Adam::new(0.01))),
            ("adamax", Box::new(AdaMax::new(0.01))),
            ("rmsprop", Box::new(RmsProp::new(0.005))),
            ("adgd", Box::new(Adgd::new(0.01))),
        ] {
            let final_loss = train_with(opt.as_mut(), 120);
            assert!(
                final_loss < baseline * 0.5,
                "{name} failed to learn: final loss {final_loss}"
            );
        }
    }

    #[test]
    fn adagrad_matches_algorithm_one_by_hand() {
        // Single parameter layer; verify one update against the formula.
        let mut rng = Rng::seed_from(0);
        let mut model = models::mlp(&[1, 1], Activation::ReLU, &mut rng).unwrap();
        let x = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        model.forward(&x, true).unwrap();
        model.backward(&Tensor::from_vec(vec![1.0], &[1, 1]).unwrap()).unwrap();
        let grads = model.layer_gradients();
        let g = grads[0].tensors[0].as_slice()[0];
        let w0 = model.params().layers[0].tensors[0].as_slice()[0];
        let mut opt = Adagrad::new(0.5);
        opt.step(&mut model).unwrap();
        let w1 = model.params().layers[0].tensors[0].as_slice()[0];
        let expected = w0 - 0.5 * g / (g * g + Adagrad::EPS).sqrt();
        assert!((w1 - expected).abs() < 1e-6, "w1={w1} expected={expected}");
    }

    #[test]
    fn by_name_resolves_all_and_rejects_unknown() {
        for name in ["sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"] {
            let opt = by_name(name, 0.01).unwrap();
            assert_eq!(opt.name(), name);
        }
        assert!(by_name("sophia", 0.01).is_none());
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.01);
        train_with(&mut opt, 3);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
    }

    #[test]
    fn adgd_step_size_adapts() {
        let mut opt = Adgd::new(1e-3);
        train_with(&mut opt, 30);
        // After many steps the step size should have moved off its initial
        // value and stayed finite.
        assert!(opt.lambda.is_finite());
        assert_ne!(opt.lambda, 1e-3);
    }

    #[test]
    fn state_roundtrip_preserves_trajectory() {
        // Train N steps, export params + optimizer state, continue M more
        // steps → reference losses. Then: fresh model + fresh optimizer,
        // install the exported snapshot, continue M more. Both continuations
        // must produce bit-identical losses for every optimizer.
        for name in ["sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"] {
            let mut rng = Rng::seed_from(9);
            let n = 24;
            let mut x = Tensor::zeros(&[n, 2]);
            let mut labels = Vec::new();
            for i in 0..n {
                x.set(&[i, 0], rng.normal()).unwrap();
                x.set(&[i, 1], rng.normal()).unwrap();
                labels.push(i % 3);
            }
            let mut model = models::mlp(&[2, 16, 3], Activation::ReLU, &mut rng).unwrap();

            let mut step = |model: &mut crate::model::Model, opt: &mut dyn Optimizer| {
                let logits = model.forward(&x, true).unwrap();
                let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
                model.zero_grad();
                model.backward(&grad).unwrap();
                opt.step(model).unwrap();
                loss
            };

            let mut opt = by_name(name, 0.01).unwrap();
            for _ in 0..5 {
                step(&mut model, opt.as_mut());
            }
            let state = opt.export_state();
            let params = model.params();

            let mut ref_losses = Vec::new();
            for _ in 0..3 {
                ref_losses.push(step(&mut model, opt.as_mut()));
            }

            let mut rng2 = Rng::seed_from(1234);
            let mut resumed = models::mlp(&[2, 16, 3], Activation::ReLU, &mut rng2).unwrap();
            resumed.set_params(&params).unwrap();
            let mut fresh = by_name(name, 0.01).unwrap();
            fresh.import_state(state).unwrap();
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(step(&mut resumed, fresh.as_mut()));
            }
            assert_eq!(ref_losses, got, "{name} diverged after state import");
        }
    }

    #[test]
    fn import_rejects_mismatched_arity() {
        let mut opt = Adam::new(0.01);
        let bad = OptimState { scalars: Vec::new(), groups: vec![Vec::new()] };
        assert!(opt.import_state(bad).is_err());
        // A fresh optimizer's own export always round-trips.
        let fresh = Adam::new(0.01).export_state();
        assert!(opt.import_state(fresh).is_ok());
    }
}

//! Weight initialization schemes.
//!
//! Matches the PyTorch defaults the paper's prototype inherits: Kaiming/He
//! fan-in initialization for ReLU networks (conv + ResNet/VGG/M18) and
//! Xavier/Glorot for the Tanh fully-connected networks (Purchase100 /
//! Texas100).
//!
//! Both schemes draw through the bulk tensor constructors
//! ([`Rng::randn_with`] / [`Rng::rand_uniform`]), so model initialization
//! rides the chunked counter-based sampler rather than scalar draws — for
//! the paper's MLPs this is the difference between microseconds and
//! milliseconds per model build when spawning many FL clients.

use dinar_tensor::{Rng, Tensor};

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Recommended for layers followed by ReLU.
pub fn he_normal(rng: &mut Rng, shape: &[usize], fan_in: usize) -> Tensor {
    let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
    rng.randn_with(shape, 0.0, std_dev)
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// Recommended for layers followed by Tanh.
pub fn xavier_uniform(rng: &mut Rng, shape: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    rng.rand_uniform(shape, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_std_scales_with_fan_in() {
        let mut rng = Rng::seed_from(0);
        let wide = he_normal(&mut rng, &[10_000], 10_000);
        let narrow = he_normal(&mut rng, &[10_000], 4);
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.as_slice().iter().map(|x| (x - m).powi(2)).sum::<f32>() / t.len() as f32).sqrt()
        };
        let expected_wide = (2.0f32 / 10_000.0).sqrt();
        let expected_narrow = (2.0f32 / 4.0).sqrt();
        assert!((std(&wide) - expected_wide).abs() / expected_wide < 0.1);
        assert!((std(&narrow) - expected_narrow).abs() / expected_narrow < 0.1);
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = Rng::seed_from(1);
        let t = xavier_uniform(&mut rng, &[5_000], 100, 50);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        // Roughly fills the interval rather than clustering at zero.
        assert!(t.max().unwrap() > 0.8 * bound);
        assert!(t.min().unwrap() < -0.8 * bound);
    }
}

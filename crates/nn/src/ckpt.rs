//! `DNCK` — the versioned, dtype-tagged checkpoint format.
//!
//! Where the `DNWR` wire format ([`crate::snapshot`]) frames *transient*
//! round traffic, `DNCK` frames *durable* state: the global model between
//! rounds, personalized client models for serving, and (via the composable
//! section writers below) full mid-round resume images assembled by
//! `dinar-fl`. The layout:
//!
//! ```text
//! magic "DNCK" (4 bytes)
//! version: u16
//! kind: u8                     (0x00 model, 0x01 fl-resume image)
//! layer_count: u32
//! per layer:
//!   tensor_count: u32
//!   per tensor:
//!     dtype tag: u8            (F32 = 0x00, I8 = 0x01, F16 = 0x02)
//!     rank: u32, dims: u32 × rank
//!     payload:
//!       F32: f32 bit patterns          (4 bytes/element, lossless)
//!       F16: IEEE half bit patterns    (2 bytes/element, round-to-nearest)
//!       I8:  scale f32 + level bytes   (1 byte/element + 4, abs-max quant)
//! ```
//!
//! Every tensor carries its own dtype tag, so a single checkpoint can mix
//! storage widths (e.g. f32 biases next to i8 weight matrices) and old
//! readers fail loudly on tags they do not know. Decoding reuses the
//! hardened [`dinar_tensor::wire`] byte codec — every length header is
//! validated before allocation, corrupt counts run into
//! [`WireError::Truncated`] instead of a giant reservation, and the whole
//! buffer must be consumed.
//!
//! The I8 payload is bit-identical to the wire plane's `quant_i8` codec
//! ([`QuantTensor::quantize`] is the single quantizer for both), so a model
//! checkpointed at i8 decodes to exactly the values a client would have
//! received over a `quant_i8` uplink.

use crate::snapshot::wire_len;
use crate::{ModelParams, NnError, Result};
use dinar_tensor::wire::{ByteReader, ByteWriter, WireError, MAX_RANK};
use dinar_tensor::{Dtype, Element, QuantTensor, Tensor, F16};
use std::fs;
use std::path::Path;

/// The four magic bytes every checkpoint starts with.
pub const MAGIC: [u8; 4] = *b"DNCK";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u16 = 1;

/// Byte length of the fixed header (magic + version + kind).
pub const HEADER_LEN: usize = 7;

/// What a `DNCK` file contains. The tag byte sits in the header so a model
/// loader cannot silently misparse an FL resume image (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptKind {
    /// A bare model: layer/tensor sections only.
    Model,
    /// A full FL resume image (global model, per-client state, partial
    /// round) as framed by `dinar-fl`.
    FlResume,
}

impl CkptKind {
    /// On-disk tag byte. Stable across versions — never renumber.
    pub fn tag(self) -> u8 {
        match self {
            CkptKind::Model => 0x00,
            CkptKind::FlResume => 0x01,
        }
    }

    /// Parses a tag byte.
    pub fn from_tag(tag: u8) -> Option<CkptKind> {
        match tag {
            0x00 => Some(CkptKind::Model),
            0x01 => Some(CkptKind::FlResume),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CkptKind::Model => "model",
            CkptKind::FlResume => "fl-resume",
        }
    }
}

/// Writes the `DNCK` header (magic + version + kind).
pub fn write_header(w: &mut ByteWriter, kind: CkptKind) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind.tag());
}

/// Reads and validates the `DNCK` header, returning the file kind.
///
/// # Errors
///
/// Returns [`NnError::Wire`] with [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`] or [`WireError::UnknownCodec`] (for an
/// unknown kind tag) on mismatch, [`WireError::Truncated`] if the buffer is
/// shorter than the header.
pub fn read_header(r: &mut ByteReader<'_>) -> Result<CkptKind> {
    let magic = r.take(4).map_err(NnError::Wire)?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(NnError::Wire(WireError::BadMagic { found }));
    }
    let version = r.read_u16().map_err(NnError::Wire)?;
    if version != FORMAT_VERSION {
        return Err(NnError::Wire(WireError::UnsupportedVersion { found: version }));
    }
    let tag = r.read_u8().map_err(NnError::Wire)?;
    CkptKind::from_tag(tag).ok_or(NnError::Wire(WireError::UnknownCodec { tag }))
}

/// Reads the header and checks the file kind, failing loudly on a
/// mismatch (e.g. feeding an FL resume image to a bare model loader).
///
/// # Errors
///
/// Same conditions as [`read_header`], plus [`NnError::InvalidConfig`] if
/// the kind differs from `expected`.
pub fn expect_header(r: &mut ByteReader<'_>, expected: CkptKind) -> Result<()> {
    let kind = read_header(r)?;
    if kind != expected {
        return Err(NnError::InvalidConfig {
            reason: format!(
                "checkpoint is a {} file, expected {}",
                kind.name(),
                expected.name()
            ),
        });
    }
    Ok(())
}

/// A decoded checkpoint tensor, still in its on-disk storage width.
///
/// [`read_tensor`] returns this so a serving path can keep i8 weights
/// resident as [`QuantTensor`]s instead of eagerly widening to f32.
#[derive(Debug, Clone)]
pub enum CkptTensor {
    /// A dense f32 tensor (decoded from an F32 or F16 section).
    Dense(Tensor),
    /// An i8-quantized tensor (decoded from an I8 section).
    Quant(QuantTensor),
}

impl CkptTensor {
    /// Widens to a dense f32 tensor (dequantizing an I8 section).
    pub fn into_tensor(self) -> Tensor {
        match self {
            CkptTensor::Dense(t) => t,
            CkptTensor::Quant(q) => q.to_tensor(),
        }
    }

    /// The tensor's shape, regardless of storage width.
    pub fn shape(&self) -> &[usize] {
        match self {
            CkptTensor::Dense(t) => t.shape(),
            CkptTensor::Quant(q) => q.shape(),
        }
    }
}

/// A decoded checkpoint body with tensors kept at their on-disk widths.
#[derive(Debug, Clone)]
pub struct RawCheckpoint {
    /// One entry per layer; each entry is that layer's tensor sections.
    pub layers: Vec<Vec<CkptTensor>>,
}

impl RawCheckpoint {
    /// Densifies every section into a plain f32 [`ModelParams`].
    pub fn into_params(self) -> ModelParams {
        let layers = self
            .layers
            .into_iter()
            .map(|ts| {
                crate::params::LayerParams::new(
                    ts.into_iter().map(CkptTensor::into_tensor).collect(),
                )
            })
            .collect();
        ModelParams::new(layers)
    }
}

/// Exact byte length of one encoded tensor section under `dtype`.
pub fn encoded_tensor_section_len(t: &Tensor, dtype: Dtype) -> usize {
    let n = t.len();
    let payload = match dtype {
        Dtype::F32 => 4 * n,
        Dtype::F16 => 2 * n,
        Dtype::I8 => 4 + n,
    };
    1 + 4 + 4 * t.shape().len() + payload
}

/// Exact byte length [`encode_checkpoint`] will produce for `params` under
/// `dtype` — usable for byte metering without encoding.
pub fn encoded_checkpoint_len(params: &ModelParams, dtype: Dtype) -> usize {
    let mut total = HEADER_LEN + 4;
    for layer in &params.layers {
        total += 4;
        for t in &layer.tensors {
            total += encoded_tensor_section_len(t, dtype);
        }
    }
    total
}

/// Writes one dtype-tagged tensor section.
///
/// # Errors
///
/// Returns [`NnError::Wire`] with [`WireError::LengthOverflow`] if the rank
/// or a dimension exceeds the `u32` wire fields.
pub fn write_tensor(w: &mut ByteWriter, t: &Tensor, dtype: Dtype) -> Result<()> {
    w.put_u8(dtype.tag());
    w.put_u32(wire_len(t.shape().len(), "checkpoint tensor rank")?);
    for &d in t.shape() {
        w.put_u32(wire_len(d, "checkpoint tensor dim")?);
    }
    match dtype {
        Dtype::F32 => {
            for &x in t.as_slice() {
                w.put_f32(x);
            }
        }
        Dtype::F16 => {
            for &x in t.as_slice() {
                w.put_u16(F16::from_f32(x).to_u16());
            }
        }
        Dtype::I8 => {
            let q = QuantTensor::quantize(t);
            w.put_f32(q.scale());
            for &l in q.levels() {
                w.put_i8(l);
            }
        }
    }
    Ok(())
}

/// Reads one dtype-tagged tensor section at its on-disk width.
///
/// # Errors
///
/// Returns [`NnError::Wire`] for truncation, an unknown dtype tag
/// ([`WireError::UnknownCodec`]) or an overflowing rank/dimension header.
/// Never panics and never allocates more than the remaining buffer.
pub fn read_tensor(r: &mut ByteReader<'_>) -> Result<CkptTensor> {
    let tag = r.read_u8().map_err(NnError::Wire)?;
    let dtype = Dtype::from_tag(tag)
        .ok_or(NnError::Wire(WireError::UnknownCodec { tag }))?;
    let rank = r.read_u32().map_err(NnError::Wire)? as usize;
    if rank > MAX_RANK {
        return Err(NnError::Wire(WireError::LengthOverflow {
            what: "checkpoint tensor rank",
            value: u64::try_from(rank).unwrap_or(u64::MAX),
        }));
    }
    let mut shape = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = r.read_u32().map_err(NnError::Wire)? as usize;
        len = len
            .checked_mul(d)
            .ok_or(NnError::Wire(WireError::LengthOverflow {
                what: "checkpoint element count",
                value: u64::MAX,
            }))?;
        shape.push(d);
    }
    // Element counts come from the file: grow by push so a corrupt huge
    // count runs into Truncated instead of a giant reservation.
    match dtype {
        Dtype::F32 => {
            let mut data = Vec::new();
            for _ in 0..len {
                data.push(r.read_f32().map_err(NnError::Wire)?);
            }
            Ok(CkptTensor::Dense(Tensor::from_vec(data, &shape)?))
        }
        Dtype::F16 => {
            let mut data = Vec::new();
            for _ in 0..len {
                let bits = r.read_u16().map_err(NnError::Wire)?;
                data.push(F16::from_u16(bits).to_f32());
            }
            Ok(CkptTensor::Dense(Tensor::from_vec(data, &shape)?))
        }
        Dtype::I8 => {
            let scale = r.read_f32().map_err(NnError::Wire)?;
            let mut levels = Vec::new();
            for _ in 0..len {
                levels.push(r.read_i8().map_err(NnError::Wire)?);
            }
            let q = QuantTensor::from_levels(levels, scale, &shape)
                .map_err(NnError::Tensor)?;
            Ok(CkptTensor::Quant(q))
        }
    }
}

/// Writes the checkpoint body (layer/tensor counts + sections), no header.
///
/// Exposed so `dinar-fl` can embed parameter sections inside its larger
/// resume image.
///
/// # Errors
///
/// Returns [`NnError::Wire`] if a count, rank or dimension exceeds the
/// `u32` wire fields.
pub fn write_params(w: &mut ByteWriter, params: &ModelParams, dtype: Dtype) -> Result<()> {
    w.put_u32(wire_len(params.layers.len(), "checkpoint layer count")?);
    for layer in &params.layers {
        w.put_u32(wire_len(layer.tensors.len(), "checkpoint tensor count")?);
        for t in &layer.tensors {
            write_tensor(w, t, dtype)?;
        }
    }
    Ok(())
}

/// Reads a checkpoint body at its on-disk widths (counterpart of
/// [`write_params`]).
///
/// # Errors
///
/// Returns [`NnError::Wire`] for any truncation or corrupt header.
pub fn read_params_raw(r: &mut ByteReader<'_>) -> Result<RawCheckpoint> {
    let layer_count = r.read_u32().map_err(NnError::Wire)?;
    let mut layers = Vec::new();
    for _ in 0..layer_count {
        let tensor_count = r.read_u32().map_err(NnError::Wire)?;
        let mut tensors = Vec::new();
        for _ in 0..tensor_count {
            tensors.push(read_tensor(r)?);
        }
        layers.push(tensors);
    }
    Ok(RawCheckpoint { layers })
}

/// Reads a checkpoint body and densifies it to f32 [`ModelParams`].
///
/// # Errors
///
/// Same conditions as [`read_params_raw`].
pub fn read_params(r: &mut ByteReader<'_>) -> Result<ModelParams> {
    Ok(read_params_raw(r)?.into_params())
}

/// Encodes `params` as a complete `DNCK` checkpoint under `dtype`.
///
/// # Errors
///
/// Returns [`NnError::Wire`] if a count, rank or dimension exceeds the
/// `u32` wire fields.
pub fn encode_checkpoint(params: &ModelParams, dtype: Dtype) -> Result<Vec<u8>> {
    let mut w = ByteWriter::with_capacity(encoded_checkpoint_len(params, dtype));
    write_header(&mut w, CkptKind::Model);
    write_params(&mut w, params, dtype)?;
    Ok(w.into_bytes())
}

/// Decodes a complete `DNCK` checkpoint at its on-disk widths. The whole
/// buffer must be consumed.
///
/// # Errors
///
/// Returns [`NnError::Wire`] for truncated buffers, bad magic/version,
/// unknown dtype tags, overflowing length headers or trailing bytes.
/// Never panics.
pub fn decode_checkpoint_raw(bytes: &[u8]) -> Result<RawCheckpoint> {
    let mut r = ByteReader::new(bytes);
    expect_header(&mut r, CkptKind::Model)?;
    let raw = read_params_raw(&mut r)?;
    r.finish().map_err(NnError::Wire)?;
    Ok(raw)
}

/// Decodes a complete `DNCK` checkpoint to dense f32 [`ModelParams`].
///
/// # Errors
///
/// Same conditions as [`decode_checkpoint_raw`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<ModelParams> {
    Ok(decode_checkpoint_raw(bytes)?.into_params())
}

/// Saves `params` to a `DNCK` file at `path` under `dtype`.
///
/// # Errors
///
/// Propagates encode errors; I/O failures surface as
/// [`NnError::InvalidConfig`] with the path in the message.
pub fn save(params: &ModelParams, dtype: Dtype, path: impl AsRef<Path>) -> Result<()> {
    let bytes = encode_checkpoint(params, dtype)?;
    fs::write(path.as_ref(), bytes).map_err(|e| NnError::InvalidConfig {
        reason: format!("cannot write checkpoint {}: {e}", path.as_ref().display()),
    })
}

/// Loads a `DNCK` file at its on-disk widths.
///
/// # Errors
///
/// Same conditions as [`decode_checkpoint_raw`], plus I/O failures as
/// [`NnError::InvalidConfig`].
pub fn load_raw(path: impl AsRef<Path>) -> Result<RawCheckpoint> {
    let bytes = fs::read(path.as_ref()).map_err(|e| NnError::InvalidConfig {
        reason: format!("cannot read checkpoint {}: {e}", path.as_ref().display()),
    })?;
    decode_checkpoint_raw(&bytes)
}

/// Loads a `DNCK` file as dense f32 [`ModelParams`].
///
/// # Errors
///
/// Same conditions as [`load_raw`].
pub fn load(path: impl AsRef<Path>) -> Result<ModelParams> {
    Ok(load_raw(path)?.into_params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{self, Activation};
    use dinar_tensor::Rng;

    fn params() -> ModelParams {
        let mut rng = Rng::seed_from(7);
        models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng)
            .unwrap()
            .params()
    }

    fn bits(p: &ModelParams) -> Vec<u32> {
        p.layers
            .iter()
            .flat_map(|l| l.tensors.iter())
            .flat_map(|t| t.as_slice().iter().map(|x| x.to_bits()))
            .collect()
    }

    #[test]
    fn f32_roundtrip_is_bit_identical() {
        let p = params();
        let bytes = encode_checkpoint(&p, Dtype::F32).unwrap();
        assert_eq!(bytes.len(), encoded_checkpoint_len(&p, Dtype::F32));
        assert_eq!(&bytes[..4], b"DNCK");
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(bits(&p), bits(&back));
    }

    #[test]
    fn f16_roundtrip_halves_payload_and_stays_close() {
        let p = params();
        let f32_len = encoded_checkpoint_len(&p, Dtype::F32);
        let bytes = encode_checkpoint(&p, Dtype::F16).unwrap();
        assert_eq!(bytes.len(), encoded_checkpoint_len(&p, Dtype::F16));
        assert!(bytes.len() < f32_len);
        let back = decode_checkpoint(&bytes).unwrap();
        assert!(back.same_shape(&p));
        // Init weights are O(1); f16 carries 10 mantissa bits.
        assert!(back.max_abs_diff(&p).unwrap() < 1e-2);
    }

    #[test]
    fn f16_is_exact_for_representable_values() {
        let p = ModelParams::new(vec![crate::params::LayerParams::new(vec![
            Tensor::from_vec(vec![1.0, -0.5, 0.25, 0.0], &[2, 2]).unwrap(),
        ])]);
        let back =
            decode_checkpoint(&encode_checkpoint(&p, Dtype::F16).unwrap()).unwrap();
        assert_eq!(bits(&p), bits(&back));
    }

    #[test]
    fn i8_matches_the_wire_quantizer_exactly() {
        let p = params();
        let bytes = encode_checkpoint(&p, Dtype::I8).unwrap();
        let raw = decode_checkpoint_raw(&bytes).unwrap();
        for (layer, raw_layer) in p.layers.iter().zip(&raw.layers) {
            for (t, sec) in layer.tensors.iter().zip(raw_layer) {
                let CkptTensor::Quant(q) = sec else {
                    panic!("i8 checkpoint produced a dense section")
                };
                let expect = QuantTensor::quantize(t);
                assert_eq!(q.levels(), expect.levels());
                assert_eq!(q.scale().to_bits(), expect.scale().to_bits());
            }
        }
    }

    #[test]
    fn mixed_width_sections_decode_together() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.125], &[4]).unwrap();
        let mut w = ByteWriter::new();
        write_header(&mut w, CkptKind::Model);
        w.put_u32(1);
        w.put_u32(3);
        write_tensor(&mut w, &t, Dtype::F32).unwrap();
        write_tensor(&mut w, &t, Dtype::F16).unwrap();
        write_tensor(&mut w, &t, Dtype::I8).unwrap();
        let raw = decode_checkpoint_raw(&w.into_bytes()).unwrap();
        assert_eq!(raw.layers.len(), 1);
        assert_eq!(raw.layers[0].len(), 3);
        let dense = raw.into_params();
        assert_eq!(dense.layers[0].tensors[0].as_slice(), t.as_slice());
        assert_eq!(dense.layers[0].tensors[1].as_slice(), t.as_slice());
    }

    #[test]
    fn file_roundtrip_at_every_dtype() {
        let dir = std::env::temp_dir().join("dinar-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = params();
        for dtype in Dtype::all() {
            let path = dir.join(format!("ckpt-{}.dnck", dtype.name()));
            save(&p, dtype, &path).unwrap();
            let back = load(&path).unwrap();
            assert!(back.same_shape(&p), "{dtype}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn corrupted_checkpoints_return_typed_errors() {
        let p = params();
        let bytes = encode_checkpoint(&p, Dtype::F32).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(NnError::Wire(WireError::BadMagic { .. }))
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(NnError::Wire(WireError::UnsupportedVersion { .. }))
        ));
        // Unknown kind tag.
        let mut bad = bytes.clone();
        bad[6] = 0x7F;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(NnError::Wire(WireError::UnknownCodec { tag: 0x7F }))
        ));
        // Wrong kind (an fl-resume header on a model loader).
        let mut bad = bytes.clone();
        bad[6] = CkptKind::FlResume.tag();
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(NnError::InvalidConfig { .. })
        ));
        // Unknown dtype tag on the first section.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 8] = 0x7F;
        assert!(matches!(
            decode_checkpoint(&bad),
            Err(NnError::Wire(WireError::UnknownCodec { tag: 0x7F }))
        ));
        // Every strict prefix fails.
        for cut in [0, 3, HEADER_LEN, HEADER_LEN + 5, bytes.len() - 1] {
            assert!(
                decode_checkpoint(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        // Trailing garbage fails.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_checkpoint(&extended),
            Err(NnError::Wire(WireError::TrailingBytes { .. }))
        ));
        // A corrupt layer count runs into truncation, not an abort.
        let mut corrupt = bytes;
        corrupt[HEADER_LEN] = 0xFF;
        assert!(decode_checkpoint(&corrupt).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load("/nonexistent/dinar.dnck").unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
    }
}

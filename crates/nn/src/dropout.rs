//! Dropout regularization.
//!
//! Dropout matters to this reproduction beyond its usual role: reducing
//! overfitting directly shrinks the member/non-member generalization gap
//! that membership inference exploits, making it the classic *implicit* MIA
//! mitigation that the DP/obfuscation defenses are compared against in the
//! literature. The `regularization` ablation bench measures exactly that
//! trade-off.

use crate::{Layer, NnError, Result};
use dinar_tensor::{Rng, Tensor};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; inference is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// randomness stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, rng: Rng) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability {p} outside [0, 1)");
        Dropout {
            p,
            rng,
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(input.shape(), |_| {
            if self.rng.bernoulli(self.p) {
                0.0
            } else {
                1.0 / keep
            }
        });
        let out = input.mul(&mask)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match &self.cached_mask {
            // Inference-mode or p=0 forward: identity backward.
            None => Ok(grad_output.clone()),
            Some(mask) => {
                if mask.shape() != grad_output.shape() {
                    return Err(NnError::BackwardBeforeForward { layer: "dropout" });
                }
                Ok(grad_output.mul(mask)?)
            }
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn clear_cache(&mut self) {
        self.cached_mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, Rng::seed_from(0));
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn training_drops_about_p_and_rescales() {
        let mut d = Dropout::new(0.3, Rng::seed_from(1));
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f32 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        // Survivors are scaled so the expectation is preserved.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn backward_routes_through_the_same_mask() {
        let mut d = Dropout::new(0.5, Rng::seed_from(2));
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        // Gradient is zero exactly where the activation was dropped.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0, Rng::seed_from(3));
        let x = Tensor::from_slice(&[4.0, 5.0]);
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    fn dropout_reduces_overfitting_gap() {
        use crate::dense::Dense;
        use crate::loss::CrossEntropyLoss;
        use crate::model::Model;
        use crate::optim::{Optimizer, Sgd};
        use crate::activation::ReLU;

        // Tiny noisy task; train with and without dropout and compare the
        // train/test accuracy gap.
        let mut rng = Rng::seed_from(4);
        let make_data = |rng: &mut Rng, n: usize| {
            let mut x = Tensor::zeros(&[n, 6]);
            let mut labels = Vec::new();
            for i in 0..n {
                let class = i % 2;
                for j in 0..6 {
                    let c = if j % 2 == class { 0.6 } else { 0.0 };
                    x.set(&[i, j], rng.normal_with(c, 1.2)).unwrap();
                }
                labels.push(class);
            }
            (x, labels)
        };
        let (train_x, train_y) = make_data(&mut rng, 40);
        let (test_x, test_y) = make_data(&mut rng, 200);

        let gap = |dropout_p: f32, rng: &mut Rng| {
            let mut layers: Vec<Box<dyn Layer>> = vec![
                Box::new(Dense::he(6, 64, rng)),
                Box::new(ReLU::new()),
            ];
            if dropout_p > 0.0 {
                layers.push(Box::new(Dropout::new(dropout_p, rng.split(7))));
            }
            layers.push(Box::new(Dense::he(64, 2, rng)));
            let mut model = Model::new(layers);
            let mut opt = Sgd::new(0.1);
            for _ in 0..150 {
                let logits = model.forward(&train_x, true).unwrap();
                let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &train_y).unwrap();
                model.zero_grad();
                model.backward(&grad).unwrap();
                opt.step(&mut model).unwrap();
            }
            let train_acc = model.accuracy(&train_x, &train_y).unwrap();
            let test_acc = model.accuracy(&test_x, &test_y).unwrap();
            train_acc - test_acc
        };
        let gap_plain = gap(0.0, &mut rng);
        let gap_dropout = gap(0.5, &mut rng);
        assert!(
            gap_dropout < gap_plain,
            "dropout should shrink the generalization gap: {gap_plain} -> {gap_dropout}"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_probability_panics() {
        Dropout::new(1.0, Rng::seed_from(0));
    }
}

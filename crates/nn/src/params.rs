//! Layer-structured parameter containers.
//!
//! [`ModelParams`] is the unit of exchange in the federated protocol: clients
//! upload their parameters to the server, the server aggregates them with
//! FedAvg, defenses perturb them, and DINAR obfuscates exactly one
//! [`LayerParams`] entry (the privacy-sensitive layer) before upload. Keeping
//! the per-layer structure — instead of a flat vector — is what makes the
//! paper's fine-grained approach expressible.

use crate::{NnError, Result};
use dinar_tensor::json::{Json, ToJson};
use dinar_tensor::Tensor;

/// The parameters of a single trainable layer (e.g. `[weight, bias]`, or
/// `[gamma, beta, running_mean, running_var]` for batch-norm).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// The layer's tensors, in the layer's canonical order.
    pub tensors: Vec<Tensor>,
}

impl ToJson for LayerParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![("tensors", self.tensors.to_json())])
    }
}

impl LayerParams {
    /// Reconstructs layer parameters from their [`ToJson`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the payload is not an object
    /// with a `tensors` array of valid tensor payloads.
    pub fn from_json(value: &Json) -> Result<Self> {
        let tensors = value
            .get("tensors")
            .and_then(Json::as_arr)
            .ok_or_else(|| NnError::InvalidConfig {
                reason: "layer payload missing `tensors` array".into(),
            })?
            .iter()
            .map(|t| {
                Tensor::from_json(t).map_err(|e| NnError::InvalidConfig {
                    reason: format!("bad tensor in layer payload: {e}"),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(LayerParams { tensors })
    }
    /// Creates a layer-parameter set from tensors.
    pub fn new(tensors: Vec<Tensor>) -> Self {
        LayerParams { tensors }
    }

    /// Total number of scalar parameters in the layer.
    pub fn param_count(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// L2 norm of the concatenated layer parameters.
    pub fn l2_norm(&self) -> f32 {
        self.tensors
            .iter()
            .map(|t| {
                let n = t.norm_l2() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt() as f32
    }

    /// An O(1) snapshot of this layer's parameters.
    ///
    /// Under copy-on-write tensor storage a clone only bumps buffer
    /// refcounts; `share` is the semantically honest name for that, and the
    /// sanctioned spelling in the parameter plane (lint rule L009 bans bare
    /// `.clone()` there).
    pub fn share(&self) -> LayerParams {
        self.clone()
    }

    /// Concatenates all tensors into one flat vector.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for t in &self.tensors {
            out.extend_from_slice(t.as_slice());
        }
        out
    }

    /// `true` if the two layer-parameter sets have identical tensor shapes.
    pub fn same_shape(&self, other: &LayerParams) -> bool {
        self.tensors.len() == other.tensors.len()
            && self
                .tensors
                .iter()
                .zip(&other.tensors)
                .all(|(a, b)| a.shape() == b.shape())
    }
}

/// The full parameter state of a model, one entry per trainable layer.
///
/// # Example
///
/// ```
/// use dinar_nn::models;
/// use dinar_tensor::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let model = models::mlp(&[4, 8, 3], models::Activation::ReLU, &mut rng)?;
/// let params = model.params();
/// assert_eq!(params.num_layers(), 2); // two dense layers
/// # Ok::<(), dinar_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Per-trainable-layer parameters.
    pub layers: Vec<LayerParams>,
}

impl ToJson for ModelParams {
    fn to_json(&self) -> Json {
        Json::obj(vec![("layers", self.layers.to_json())])
    }
}

impl ModelParams {
    /// Reconstructs model parameters from their [`ToJson`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the payload is not an object
    /// with a `layers` array of valid layer payloads.
    pub fn from_json(value: &Json) -> Result<Self> {
        let layers = value
            .get("layers")
            .and_then(Json::as_arr)
            .ok_or_else(|| NnError::InvalidConfig {
                reason: "model payload missing `layers` array".into(),
            })?
            .iter()
            .map(LayerParams::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(ModelParams { layers })
    }
    /// Creates a model-parameter set from per-layer entries.
    pub fn new(layers: Vec<LayerParams>) -> Self {
        ModelParams { layers }
    }

    /// Number of trainable layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(LayerParams::param_count).sum()
    }

    /// L2 norm of all parameters.
    pub fn l2_norm(&self) -> f32 {
        self.layers
            .iter()
            .map(|l| {
                let n = l.l2_norm() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt() as f32
    }

    /// An O(1) snapshot of the full parameter state (see
    /// [`LayerParams::share`]): every hop of the FL protocol — broadcast,
    /// upload, defense bookkeeping — snapshots parameters this way and pays
    /// for actual bytes only when a writer materializes them.
    pub fn share(&self) -> ModelParams {
        self.clone()
    }

    /// A structurally identical parameter set filled with zeros.
    pub fn zeros_like(&self) -> ModelParams {
        ModelParams {
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams {
                    tensors: l.tensors.iter().map(Tensor::zeros_like).collect(),
                })
                .collect(),
        }
    }

    /// Zeroes every parameter in place (see [`Tensor::zero_fill`]): unique
    /// buffers are overwritten, shared ones are swapped for fresh zero
    /// buffers — either way no old data is copied. This is how the server
    /// recycles last round's global model as the accumulation scratch.
    pub fn zero_fill(&mut self) {
        for l in &mut self.layers {
            for t in &mut l.tensors {
                t.zero_fill();
            }
        }
    }

    /// `true` if both parameter sets have identical architecture.
    pub fn same_shape(&self, other: &ModelParams) -> bool {
        self.layers.len() == other.layers.len()
            && self
                .layers
                .iter()
                .zip(&other.layers)
                .all(|(a, b)| a.same_shape(b))
    }

    fn check_shape(&self, other: &ModelParams, op: &str) -> Result<()> {
        if !self.same_shape(other) {
            return Err(NnError::ParamShapeMismatch {
                reason: format!(
                    "`{op}` on parameter sets with different architectures \
                     ({} vs {} layers)",
                    self.layers.len(),
                    other.layers.len()
                ),
            });
        }
        Ok(())
    }

    /// In-place elementwise sum: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamShapeMismatch`] if the architectures differ.
    pub fn add_assign(&mut self, other: &ModelParams) -> Result<()> {
        self.check_shape(other, "add_assign")?;
        for (l, lo) in self.layers.iter_mut().zip(&other.layers) {
            for (t, to) in l.tensors.iter_mut().zip(&lo.tensors) {
                t.add_assign(to)?;
            }
        }
        Ok(())
    }

    /// In-place scaled sum: `self += alpha * other` (the FedAvg accumulation
    /// primitive).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamShapeMismatch`] if the architectures differ.
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &ModelParams) -> Result<()> {
        self.check_shape(other, "scaled_add_assign")?;
        for (l, lo) in self.layers.iter_mut().zip(&other.layers) {
            for (t, to) in l.tensors.iter_mut().zip(&lo.tensors) {
                t.scaled_add_assign(alpha, to)?;
            }
        }
        Ok(())
    }

    /// Multiplies every parameter by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for l in &mut self.layers {
            for t in &mut l.tensors {
                t.scale_inplace(alpha);
            }
        }
    }

    /// Elementwise difference `self - other` as a new parameter set.
    ///
    /// Builds the output directly per tensor rather than cloning `self`
    /// first; `a - b` and the old `a + (-1.0) * b` round identically in
    /// IEEE arithmetic, so results are bit-unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamShapeMismatch`] if the architectures differ.
    pub fn sub(&self, other: &ModelParams) -> Result<ModelParams> {
        self.check_shape(other, "sub")?;
        let mut layers = Vec::with_capacity(self.layers.len());
        for (l, lo) in self.layers.iter().zip(&other.layers) {
            let mut tensors = Vec::with_capacity(l.tensors.len());
            for (t, to) in l.tensors.iter().zip(&lo.tensors) {
                tensors.push(t.sub(to)?);
            }
            layers.push(LayerParams { tensors });
        }
        Ok(ModelParams { layers })
    }

    /// Applies `f` to every scalar parameter in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Copy) {
        for l in &mut self.layers {
            for t in &mut l.tensors {
                t.map_inplace(f);
            }
        }
    }

    /// Concatenates all parameters into one flat vector.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend(l.to_flat());
        }
        out
    }

    /// Maximum absolute difference against another parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamShapeMismatch`] if the architectures differ.
    pub fn max_abs_diff(&self, other: &ModelParams) -> Result<f32> {
        self.check_shape(other, "max_abs_diff")?;
        let mut max = 0.0f32;
        for (l, lo) in self.layers.iter().zip(&other.layers) {
            for (t, to) in l.tensors.iter().zip(&lo.tensors) {
                for (&a, &b) in t.as_slice().iter().zip(to.as_slice()) {
                    max = max.max((a - b).abs());
                }
            }
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params2() -> ModelParams {
        ModelParams::new(vec![
            LayerParams::new(vec![Tensor::ones(&[2, 2]), Tensor::ones(&[2])]),
            LayerParams::new(vec![Tensor::full(&[2, 1], 2.0), Tensor::zeros(&[1])]),
        ])
    }

    #[test]
    fn param_count_sums_layers() {
        assert_eq!(params2().param_count(), 4 + 2 + 2 + 1);
    }

    #[test]
    fn scaled_add_is_fedavg_primitive() {
        let mut acc = params2().zeros_like();
        acc.scaled_add_assign(0.25, &params2()).unwrap();
        acc.scaled_add_assign(0.75, &params2()).unwrap();
        assert!(acc.max_abs_diff(&params2()).unwrap() < 1e-6);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = params2();
        let b = ModelParams::new(vec![LayerParams::new(vec![Tensor::ones(&[3])])]);
        assert!(matches!(
            a.add_assign(&b),
            Err(NnError::ParamShapeMismatch { .. })
        ));
    }

    #[test]
    fn l2_norm_of_known_values() {
        let p = ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[4], 2.0)])]);
        assert!((p.l2_norm() - 4.0).abs() < 1e-6); // sqrt(4 * 2^2)
    }

    #[test]
    fn sub_then_add_roundtrips() {
        let a = params2();
        let mut b = params2();
        b.scale(3.0);
        let diff = b.sub(&a).unwrap();
        let mut rebuilt = a.clone();
        rebuilt.add_assign(&diff).unwrap();
        assert!(rebuilt.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn to_flat_preserves_order_and_count() {
        let p = params2();
        let flat = p.to_flat();
        assert_eq!(flat.len(), p.param_count());
        assert_eq!(flat[0], 1.0);
        assert_eq!(flat[6], 2.0); // first tensor of layer 2
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut p = params2();
        p.map_inplace(|x| x * 10.0);
        assert_eq!(p.layers[1].tensors[0].as_slice()[0], 20.0);
    }
}

//! Property tests of the network substrate — gradient linearity, parameter
//! round-trips, loss bounds — driven by the crate's own seeded RNG instead of
//! `proptest` so the whole suite is deterministic and dependency-free.

use dinar_nn::loss::{softmax_rows, CrossEntropyLoss};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::{Optimizer, Sgd};
use dinar_tensor::Rng;

const CASES: u64 = 32;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xD1AA_1000 + property * 10_007 + case)
}

/// Samples a dimension in `1..=max`.
fn dim(rng: &mut Rng, max: usize) -> usize {
    1 + rng.below(max)
}

/// Softmax rows are probability vectors for any logits.
#[test]
fn softmax_always_normalizes() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let (rows, cols) = (dim(&mut rng, 5), dim(&mut rng, 7));
        let scale = 0.1 + rng.uniform() * 49.9;
        let logits = rng.randn_with(&[rows, cols], 0.0, scale);
        let p = softmax_rows(&logits).unwrap();
        for i in 0..rows {
            let row_sum: f32 = (0..cols).map(|j| p.get(&[i, j]).unwrap()).sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "case {case}");
        }
    }
}

/// Cross-entropy is non-negative and per-sample losses average to the
/// batch loss, for any logits/labels.
#[test]
fn cross_entropy_consistency() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let (rows, cols) = (dim(&mut rng, 7), 2 + rng.below(4));
        let logits = rng.randn_with(&[rows, cols], 0.0, 3.0);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(cols)).collect();
        let (batch, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        assert!(batch >= 0.0, "case {case}");
        let per = CrossEntropyLoss.per_sample(&logits, &labels).unwrap();
        let mean = per.iter().sum::<f32>() / rows as f32;
        assert!((mean - batch).abs() < 1e-4, "case {case}");
    }
}

/// Each row of the cross-entropy gradient (softmax - onehot) sums to 0.
#[test]
fn ce_gradient_rows_sum_to_zero() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let (rows, cols) = (dim(&mut rng, 5), 2 + rng.below(4));
        let logits = rng.randn(&[rows, cols]);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(cols)).collect();
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        for i in 0..rows {
            let row_sum: f32 = (0..cols).map(|j| grad.get(&[i, j]).unwrap()).sum();
            assert!(row_sum.abs() < 1e-5, "case {case}");
        }
    }
}

/// Model params round-trip exactly through get/set for random MLPs.
#[test]
fn params_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let (inputs, hidden, classes) = (dim(&mut rng, 5), dim(&mut rng, 7), 2 + rng.below(3));
        let mut model =
            models::mlp(&[inputs, hidden, classes], Activation::Tanh, &mut rng).unwrap();
        let original = model.params();
        let mut perturbed = original.clone();
        perturbed.map_inplace(|x| x * 2.0 + 1.0);
        model.set_params(&perturbed).unwrap();
        model.set_params(&original).unwrap();
        assert!(
            model.params().max_abs_diff(&original).unwrap() < 1e-9,
            "case {case}"
        );
    }
}

/// Backward pass is linear in the output gradient:
/// backward(a·g) accumulates a·backward(g).
#[test]
fn backward_is_linear() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let a = 0.1 + rng.uniform() * 3.9;
        let mut model = models::mlp(&[3, 5, 2], Activation::Tanh, &mut rng).unwrap();
        let x = rng.randn(&[4, 3]);
        let g = rng.randn(&[4, 2]);

        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g).unwrap();
        let base: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();

        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g.mul_scalar(a)).unwrap();
        let scaled: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();

        for (b, s) in base.iter().zip(&scaled) {
            assert!((b * a - s).abs() < 1e-3 * (1.0 + s.abs()), "case {case}");
        }
    }
}

/// One SGD step moves parameters exactly opposite to the gradient.
#[test]
fn sgd_step_is_exact() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let lr = 0.001 + rng.uniform() * 0.499;
        let mut model = models::mlp(&[2, 4, 2], Activation::ReLU, &mut rng).unwrap();
        let x = rng.randn(&[3, 2]);
        let g = rng.randn(&[3, 2]);
        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g).unwrap();
        let before = model.params().to_flat();
        let grads: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();
        Sgd::new(lr).step(&mut model).unwrap();
        let after = model.params().to_flat();
        for ((b, a), gr) in before.iter().zip(&after).zip(&grads) {
            assert!((b - lr * gr - a).abs() < 1e-5 * (1.0 + a.abs()), "case {case}");
        }
    }
}

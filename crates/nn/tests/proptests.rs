//! Property-based tests of the network substrate: gradient linearity,
//! parameter round-trips, loss bounds.

use dinar_nn::loss::{softmax_rows, CrossEntropyLoss};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::{Optimizer, Sgd};
use dinar_tensor::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax rows are probability vectors for any logits.
    #[test]
    fn softmax_always_normalizes(rows in 1usize..6, cols in 1usize..8, scale in 0.1f32..50.0, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let logits = rng.randn_with(&[rows, cols], 0.0, scale);
        let p = softmax_rows(&logits).unwrap();
        for i in 0..rows {
            let row_sum: f32 = (0..cols).map(|j| p.get(&[i, j]).unwrap()).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
        }
    }

    /// Cross-entropy is non-negative and per-sample losses average to the
    /// batch loss, for any logits/labels.
    #[test]
    fn cross_entropy_consistency(rows in 1usize..8, cols in 2usize..6, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let logits = rng.randn_with(&[rows, cols], 0.0, 3.0);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(cols)).collect();
        let (batch, _) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        prop_assert!(batch >= 0.0);
        let per = CrossEntropyLoss.per_sample(&logits, &labels).unwrap();
        let mean = per.iter().sum::<f32>() / rows as f32;
        prop_assert!((mean - batch).abs() < 1e-4);
    }

    /// Each row of the cross-entropy gradient (softmax - onehot) sums to 0.
    #[test]
    fn ce_gradient_rows_sum_to_zero(rows in 1usize..6, cols in 2usize..6, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let logits = rng.randn(&[rows, cols]);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(cols)).collect();
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        for i in 0..rows {
            let row_sum: f32 = (0..cols).map(|j| grad.get(&[i, j]).unwrap()).sum();
            prop_assert!(row_sum.abs() < 1e-5);
        }
    }

    /// Model params round-trip exactly through get/set for random MLPs.
    #[test]
    fn params_roundtrip(inputs in 1usize..6, hidden in 1usize..8, classes in 2usize..5, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let mut model = models::mlp(&[inputs, hidden, classes], Activation::Tanh, &mut rng).unwrap();
        let original = model.params();
        let mut perturbed = original.clone();
        perturbed.map_inplace(|x| x * 2.0 + 1.0);
        model.set_params(&perturbed).unwrap();
        model.set_params(&original).unwrap();
        prop_assert!(model.params().max_abs_diff(&original).unwrap() < 1e-9);
    }

    /// Backward pass is linear in the output gradient:
    /// backward(a·g) accumulates a·backward(g).
    #[test]
    fn backward_is_linear(seed in 0u64..500, a in 0.1f32..4.0) {
        let mut rng = Rng::seed_from(seed);
        let mut model = models::mlp(&[3, 5, 2], Activation::Tanh, &mut rng).unwrap();
        let x = rng.randn(&[4, 3]);
        let g = rng.randn(&[4, 2]);

        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g).unwrap();
        let base: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();

        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g.mul_scalar(a)).unwrap();
        let scaled: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();

        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((b * a - s).abs() < 1e-3 * (1.0 + s.abs()));
        }
    }

    /// One SGD step moves parameters exactly opposite to the gradient.
    #[test]
    fn sgd_step_is_exact(seed in 0u64..500, lr in 0.001f32..0.5) {
        let mut rng = Rng::seed_from(seed);
        let mut model = models::mlp(&[2, 4, 2], Activation::ReLU, &mut rng).unwrap();
        let x = rng.randn(&[3, 2]);
        let g = rng.randn(&[3, 2]);
        model.forward(&x, true).unwrap();
        model.zero_grad();
        model.backward(&g).unwrap();
        let before = model.params().to_flat();
        let grads: Vec<f32> = model
            .layer_gradients()
            .iter()
            .flat_map(|l| l.to_flat())
            .collect();
        Sgd::new(lr).step(&mut model).unwrap();
        let after = model.params().to_flat();
        for ((b, a), gr) in before.iter().zip(&after).zip(&grads) {
            prop_assert!((b - lr * gr - a).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }
}

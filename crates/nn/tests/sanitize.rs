//! NaN-injection tests for the runtime sanitizers (`--features sanitize`):
//! corruption must be pinned to the op or layer that produced it, not to a
//! downstream symptom.
//!
//! ```text
//! cargo test -p dinar-tensor -p dinar-nn --features sanitize
//! ```

#![cfg(feature = "sanitize")]

use dinar_nn::dense::Dense;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::models::{self, Activation};
use dinar_nn::{Layer, LayerParams, Model};
use dinar_tensor::{sanitize, Rng, Tensor};

#[test]
fn sanitizer_layer_is_armed() {
    assert!(sanitize::enabled());
}

/// A NaN smuggled into a matmul operand is reported by the matmul itself
/// (op + operand role), before it can spread.
#[test]
#[should_panic(expected = "`matmul` lhs contains non-finite")]
fn nan_matmul_operand_names_the_op() {
    let mut rng = Rng::seed_from(0);
    let mut a = rng.randn(&[3, 4]);
    a.set(&[1, 2], f32::NAN).unwrap();
    let b = rng.randn(&[4, 2]);
    let _ = a.matmul(&b);
}

/// A NaN injected into the loss gradient is caught at the first op that
/// consumes it during backprop (the dense layer's weight-gradient product).
#[test]
#[should_panic(expected = "contains non-finite")]
fn nan_loss_gradient_names_the_consuming_op() {
    let mut rng = Rng::seed_from(1);
    let mut model = models::mlp(&[4, 6, 3], Activation::Tanh, &mut rng).unwrap();
    let x = rng.randn(&[5, 4]);
    model.forward(&x, true).unwrap();
    model.zero_grad();
    let mut grad = rng.randn(&[5, 3]);
    grad.set(&[2, 1], f32::NAN).unwrap();
    let _ = model.backward(&grad);
}

/// Builds a 1→1 dense model with a tiny weight and corruption-free inputs
/// whose *bias* gradient overflows to +∞ inside `sum_rows` — an unchecked
/// summation path, so only the post-backward gradient check can catch it.
fn overflowing_bias_model() -> (Model, Tensor, Tensor) {
    let mut rng = Rng::seed_from(2);
    let mut model = Model::new(vec![
        Box::new(Dense::xavier(1, 1, &mut rng)) as Box<dyn Layer>
    ]);
    let weight = Tensor::from_vec(vec![1e-6], &[1, 1]).unwrap();
    let bias = Tensor::from_vec(vec![0.0], &[1]).unwrap();
    model
        .set_layer_params(0, &LayerParams::new(vec![weight, bias]))
        .unwrap();
    // Every matmul operand and output stays finite; only the column sum of
    // the bias gradient (3e38 + 3e38) exceeds f32::MAX.
    let x = Tensor::from_vec(vec![1e-30, 1e-30], &[2, 1]).unwrap();
    let grad = Tensor::from_vec(vec![3e38, 3e38], &[2, 1]).unwrap();
    (model, x, grad)
}

/// The post-backward backstop catches gradients that went non-finite through
/// paths the tensor-level checks don't cover.
#[test]
#[should_panic(expected = "non-finite gradient")]
fn overflowing_bias_gradient_is_pinned_to_its_layer() {
    let (mut model, x, grad) = overflowing_bias_model();
    model.forward(&x, true).unwrap();
    model.zero_grad();
    let _ = model.backward(&grad);
}

/// The panic message identifies the layer by name and trainable index — the
/// property the whole sanitizer exists for.
#[test]
fn gradient_panic_message_names_the_offending_layer() {
    let result = std::panic::catch_unwind(|| {
        let (mut model, x, grad) = overflowing_bias_model();
        model.forward(&x, true).unwrap();
        model.zero_grad();
        let _ = model.backward(&grad);
    });
    let payload = result.expect_err("sanitizer should have panicked");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("trainable layer 0") && message.contains("dense"),
        "panic should name the layer, got: {message}"
    );
}

/// Clean training is unaffected: the checks only fire on real corruption.
#[test]
fn clean_backward_passes_under_sanitize() {
    let mut rng = Rng::seed_from(3);
    let mut model = models::mlp(&[4, 8, 2], Activation::ReLU, &mut rng).unwrap();
    let x = rng.randn(&[6, 4]);
    let labels = vec![0, 1, 0, 1, 0, 1];
    let logits = model.forward(&x, true).unwrap();
    let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
    model.zero_grad();
    model.backward(&grad).unwrap();
}

//! Lightweight item parser: functions, impl contexts and per-function
//! event streams.
//!
//! This is not a Rust parser — it is a brace-depth walk over the token
//! stream from [`crate::lex`] that recovers exactly what the cross-file
//! rules need: which functions exist (with their impl context, visibility
//! and test status), and the ordered list of *events* inside each body —
//! call sites, panic sites, lock acquisitions, noise draws and literal
//! seeds. Everything else (expressions, types, generics) is skipped.

use crate::lex::{lex, Tok, TokKind};
use crate::strip::Stripped;

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free function (or a locally imported one).
    Free(String),
    /// `Qualifier::name(...)` — keyed by the last path segment before `::`.
    Qualified(String, String),
    /// `.name(...)` — a method call, resolved by name across the workspace.
    Method(String),
}

/// One event inside a function body, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A call site (resolution happens in [`crate::graph`]).
    Call(CallKind),
    /// A panic site: `.unwrap()`, `.expect(` or `panic!`.
    Panic(&'static str),
    /// A `.lock()` acquisition; the string is the receiver field/static name.
    Lock(String),
    /// A direct RNG noise draw (`normal`, `normal_with`, `randn`, `randn_with`).
    NoiseDraw(String),
    /// `seed_from(<integer literal>)` — a hard-coded RNG seed.
    SeedLiteral,
}

/// An event with its source line and the allow-annotations that cover it.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// 1-based line of the event.
    pub line: usize,
    /// The semantic rules (`"L010"`–`"L014"`) a `lint: allow(...)` covers on
    /// this line. Panic sites also honor an L001 allow (recorded here as
    /// `"L012"`): a documented per-line invariant covers the transitive
    /// rule too.
    pub allows: std::collections::BTreeSet<&'static str>,
}

impl Event {
    /// `true` if `rule` is explicitly allowed at this event's line.
    pub fn allowed(&self, rule: &str) -> bool {
        self.allows.contains(rule)
    }
}

/// One parsed function with its body events.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Repo-relative file path.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// `Type::name` for inherent/trait-impl methods, else the bare name.
    pub qual: String,
    /// The `impl` self type, when the function is a method.
    pub self_ty: Option<String>,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Defined inside an `impl Trait for Type` block.
    pub is_trait_impl: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range `[start, end)` of the body contents.
    pub body: (usize, usize),
    /// Ordered body events (nested fn items excluded).
    pub events: Vec<Event>,
}

/// Rust keywords that look like call sites when followed by `(`.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "let", "in", "as", "move", "ref", "else",
    "break", "fn",
];

const NOISE_METHODS: [&str; 7] = [
    "normal",
    "normal_with",
    "randn",
    "randn_with",
    "fill_normal",
    "fill_normal_with",
    "axpy_normal",
];

/// Parses one stripped file into its non-test functions with events.
pub fn parse_file(file: &str, stripped: &Stripped) -> Vec<FnInfo> {
    let toks = lex(stripped);
    let mut fns = collect_fns(file, stripped, &toks);
    // Spans of all fn bodies, to exclude nested items from parent events.
    let spans: Vec<(usize, usize)> = fns.iter().map(|f| f.body).collect();
    for f in &mut fns {
        f.events = collect_events(&toks, stripped, f.body, &spans);
    }
    fns
}

/// One entry of the impl-context stack.
#[derive(Debug)]
struct ImplCtx {
    depth: i64,
    ty: String,
    is_trait: bool,
}

fn collect_fns(file: &str, stripped: &Stripped, toks: &[Tok]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut impls: Vec<ImplCtx> = Vec::new();
    let mut depth = 0i64;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if impls.last().is_some_and(|c| depth <= c.depth) {
                    impls.pop();
                }
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                if let Some((ctx, at_open)) = parse_impl_header(toks, i, depth) {
                    impls.push(ctx);
                    depth += 1;
                    i = at_open + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1; // `fn(` pointer type
                    continue;
                };
                // Find the body opener or a `;` (trait method declaration).
                let mut j = i + 2;
                let mut opener = None;
                while let Some(tok) = toks.get(j) {
                    match tok.kind {
                        TokKind::Punct('{') => {
                            opener = Some(j);
                            break;
                        }
                        TokKind::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                let Some(open) = opener else {
                    i = j + 1;
                    continue;
                };
                let close = match_brace(toks, open);
                if !stripped.is_test_line(t.line) {
                    let ctx = impls.last();
                    let name = name_tok.text.clone();
                    let qual = match ctx {
                        Some(c) => format!("{}::{}", c.ty, name),
                        None => name.clone(),
                    };
                    fns.push(FnInfo {
                        file: file.to_string(),
                        name,
                        qual,
                        self_ty: ctx.map(|c| c.ty.clone()),
                        is_pub: is_pub_before(toks, i),
                        is_trait_impl: ctx.is_some_and(|c| c.is_trait),
                        line: t.line,
                        body: (open + 1, close),
                        events: Vec::new(),
                    });
                }
                // Continue *inside* the body so nested fns are found too;
                // depth bookkeeping continues naturally at the `{`.
                i += 2;
            }
            _ => i += 1,
        }
    }
    fns
}

/// Parses `impl <generics>? Path (for Path)? .. {` starting at `at`
/// (the `impl` token). Returns the context and the index of the `{`.
fn parse_impl_header(toks: &[Tok], at: usize, depth: i64) -> Option<(ImplCtx, usize)> {
    let mut idents: Vec<String> = Vec::new();
    let mut angle = 0i64;
    let mut j = at + 1;
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Punct('{') if angle == 0 => break,
            TokKind::Punct(';') => return None, // e.g. stray `impl` in a macro
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0),
            TokKind::Ident if angle == 0 => {
                if t.text == "where" {
                    // Type names are all collected; skip bounds to `{`.
                    while toks.get(j).is_some_and(|t| !t.is_punct('{')) {
                        j += 1;
                    }
                    break;
                }
                idents.push(t.text.clone());
            }
            _ => {}
        }
        j += 1;
    }
    let (ty, is_trait) = match idents.iter().position(|s| s == "for") {
        Some(pos) => (idents.get(pos + 1..)?.last()?.clone(), true),
        None => (idents.last()?.clone(), false),
    };
    Some((
        ImplCtx {
            depth,
            ty,
            is_trait,
        },
        j,
    ))
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Looks backwards from the `fn` token for a `pub` qualifier on this item.
fn is_pub_before(toks: &[Tok], fn_at: usize) -> bool {
    let mut j = fn_at;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match &toks[j].kind {
            TokKind::Punct('{') | TokKind::Punct('}') | TokKind::Punct(';') => return false,
            TokKind::Ident if toks[j].text == "pub" => return true,
            _ => {}
        }
    }
    false
}

fn collect_events(
    toks: &[Tok],
    stripped: &Stripped,
    body: (usize, usize),
    all_spans: &[(usize, usize)],
) -> Vec<Event> {
    // Body spans strictly nested inside ours belong to nested fn items.
    let nested: Vec<(usize, usize)> = all_spans
        .iter()
        .filter(|(s, e)| *s > body.0 && *e < body.1)
        .copied()
        .collect();
    let mut events = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if let Some(&(_, end)) = nested.iter().find(|(s, _)| *s == i + 1) {
            // Skip to the end of a nested fn body (span starts after its `{`).
            i = end + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1);
        // `name!` macro invocations: only panic! is an event.
        if next.is_some_and(|n| n.is_punct('!')) && t.text == "panic" {
            events.push(event(EventKind::Panic("panic!"), t.line, stripped));
            i += 2;
            continue;
        }
        if !next.is_some_and(|n| n.is_punct('(')) {
            i += 1;
            continue;
        }
        // An identifier followed by `(` — classify by what precedes it.
        if i > 0 && toks[i - 1].is_ident("fn") {
            i += 1; // a nested item's name, not a call
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let prev_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let name = t.text.as_str();
        let kind = if prev_dot {
            match name {
                "unwrap" if toks.get(i + 2).is_some_and(|n| n.is_punct(')')) => {
                    Some(EventKind::Panic(".unwrap()"))
                }
                "expect" => Some(EventKind::Panic(".expect(")),
                "lock" => Some(EventKind::Lock(receiver_of(toks, i))),
                _ if NOISE_METHODS.contains(&name) => {
                    Some(EventKind::NoiseDraw(name.to_string()))
                }
                _ => Some(EventKind::Call(CallKind::Method(name.to_string()))),
            }
        } else if prev_path {
            let qualifier = toks
                .get(i.wrapping_sub(3))
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
                .unwrap_or_default();
            if name == "seed_from" && literal_arg(toks, i + 1) {
                Some(EventKind::SeedLiteral)
            } else {
                Some(EventKind::Call(CallKind::Qualified(
                    qualifier,
                    name.to_string(),
                )))
            }
        } else if KEYWORDS.contains(&name) {
            None
        } else if name == "seed_from" && literal_arg(toks, i + 1) {
            Some(EventKind::SeedLiteral)
        } else {
            Some(EventKind::Call(CallKind::Free(name.to_string())))
        };
        if let Some(kind) = kind {
            events.push(event(kind, t.line, stripped));
        }
        i += 1;
    }
    events
}

/// The identifier directly before the `.` of a method call at `i`
/// (e.g. `entries` in `self.entries.lock()`), or `""`.
fn receiver_of(toks: &[Tok], i: usize) -> String {
    i.checked_sub(2)
        .and_then(|j| toks.get(j))
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// `true` if the `(` at `open` wraps a single integer literal.
fn literal_arg(toks: &[Tok], open: usize) -> bool {
    toks.get(open + 1).is_some_and(|a| a.kind == TokKind::Num)
        && toks.get(open + 2).is_some_and(|c| c.is_punct(')'))
}

fn event(kind: EventKind, line: usize, stripped: &Stripped) -> Event {
    let mut allows = std::collections::BTreeSet::new();
    for rule in ["L010", "L011", "L012", "L013", "L014", "L016"] {
        if stripped.is_allowed(rule, line) {
            allows.insert(rule);
        }
    }
    if stripped.is_allowed("L001", line) {
        allows.insert("L012");
    }
    Event { kind, line, allows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip;

    fn parse(src: &str) -> Vec<FnInfo> {
        parse_file("crates/x/src/lib.rs", &strip(src))
    }

    #[test]
    fn free_and_method_fns_are_qualified() {
        let fns = parse(
            "pub fn free() {}\n\
             struct T;\n\
             impl T { fn m(&self) {} }\n\
             impl Clone for T { fn clone(&self) -> T { T } }\n",
        );
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["free", "T::m", "T::clone"]);
        assert!(fns[0].is_pub && !fns[1].is_pub);
        assert!(!fns[1].is_trait_impl && fns[2].is_trait_impl);
    }

    #[test]
    fn impl_with_generics_and_paths_resolves_self_type() {
        let fns = parse(
            "impl<'a> View<'a> { fn norm(&self) {} }\n\
             impl fmt::Display for Wide<f32> { fn fmt(&self) {} }\n",
        );
        assert_eq!(fns[0].qual, "View::norm");
        assert_eq!(fns[1].qual, "Wide::fmt");
        assert!(fns[1].is_trait_impl);
    }

    #[test]
    fn cfg_test_fns_are_excluded() {
        let fns = parse(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "lib");
    }

    #[test]
    fn events_capture_calls_panics_locks_noise_and_seeds() {
        let fns = parse(
            "fn f(&self) {\n\
                 helper(1);\n\
                 self.entries.lock();\n\
                 x.unwrap();\n\
                 y.expect(\"m\");\n\
                 panic!(\"boom\");\n\
                 let n = rng.normal_with(0.0, sd);\n\
                 let r = Rng::seed_from(42);\n\
                 dp::clip_l2(p, c);\n\
                 obj.method(2);\n\
             }\n",
        );
        let kinds: Vec<&EventKind> = fns[0].events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            kinds,
            [
                &EventKind::Call(CallKind::Free("helper".into())),
                &EventKind::Lock("entries".into()),
                &EventKind::Panic(".unwrap()"),
                &EventKind::Panic(".expect("),
                &EventKind::Panic("panic!"),
                &EventKind::NoiseDraw("normal_with".into()),
                &EventKind::SeedLiteral,
                &EventKind::Call(CallKind::Qualified("dp".into(), "clip_l2".into())),
                &EventKind::Call(CallKind::Method("method".into())),
            ]
        );
    }

    #[test]
    fn derived_seed_is_not_a_literal_seed() {
        let fns = parse("fn f(cfg: &C) { let r = Rng::seed_from(cfg.seed ^ 3); }");
        assert!(fns[0]
            .events
            .iter()
            .all(|e| e.kind != EventKind::SeedLiteral));
    }

    #[test]
    fn allows_cover_events() {
        let fns = parse(
            "fn f() {\n\
                 x.unwrap(); // lint: allow(L001, invariant)\n\
                 rng.normal(); // lint: allow(L010, masks cancel)\n\
                 y.unwrap();\n\
             }\n",
        );
        let panics: Vec<&Event> = fns[0]
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Panic(_)))
            .collect();
        assert!(panics[0].allowed("L012") && !panics[1].allowed("L012"));
        let noise = fns[0]
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::NoiseDraw(_)))
            .unwrap();
        assert!(noise.allowed("L010"));
    }

    #[test]
    fn nested_fn_events_stay_with_the_nested_fn() {
        let fns = parse(
            "fn outer() {\n\
                 fn inner() { x.unwrap(); }\n\
                 inner();\n\
             }\n",
        );
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer
            .events
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Panic(_))));
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.events.len(), 1);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let fns = parse("trait T { fn sig(&self); fn with_default(&self) { helper(); } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_default");
    }
}

//! The rule catalog: eighteen repo-specific invariants (L001–L018).
//!
//! L001–L009, L017 and L018 are per-line rules: pure functions from preprocessed
//! sources (or manifests) to [`Finding`]s. L010–L016 are cross-file/token-level
//! semantic rules that run on the engine in [`crate::graph`]. Both layers are
//! driven with inline fixtures by unit tests and with the real workspace by
//! the CLI/umbrella gate.

use crate::strip::{strip, Stripped};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap()`/`expect()` in non-test library code.
    L001,
    /// No nondeterminism sources in the deterministic crates.
    L002,
    /// Every public `*Error` enum implements `Display + std::error::Error`.
    L003,
    /// No bare `as` numeric casts in the tensor hot paths.
    L004,
    /// Workspace manifests declare only in-repo dependencies.
    L005,
    /// No raw thread spawning outside the worker pool and the threaded
    /// transport.
    L006,
    /// No ambient `Instant::now()` outside the sanctioned clock modules.
    L007,
    /// No bare mpsc `recv()`/`recv_timeout()` in `dinar-fl` outside the
    /// sanctioned deadline helper.
    L008,
    /// No `.clone()` in the parameter-plane modules: snapshot parameters
    /// with `share()` (an explicit O(1) copy-on-write share) instead.
    L009,
    /// Clip dominates noise: in `dinar-defenses`, every path reaching a
    /// Gaussian noise draw must first pass through an L2 clip source.
    L010,
    /// Seed taint: no integer-literal RNG seeds outside tests/benches.
    L011,
    /// Panic reachability: no `panic!`/`unwrap`/`expect` reachable through
    /// the call graph from the FL round loop or the threaded transport.
    L012,
    /// Lock order: nested `Mutex` acquisitions must follow the one global
    /// order.
    L013,
    /// Nondeterministic iteration: no arithmetic accumulation over
    /// unordered-container iteration in the deterministic crates.
    L014,
    /// No scalar `rng.normal()`/`normal_with()` draws inside loops in the
    /// defenses/param-plane modules: use the bulk fill API.
    L015,
    /// Ledger coverage: every defense transform entry point must report to
    /// the privacy ledger (`privacy_charge` / `privacy_charge_zero`).
    L016,
    /// Wire confinement: byte-level encode/decode stays inside the
    /// sanctioned wire modules, which in turn use no silently-wrapping
    /// `as` integer narrowing.
    L017,
    /// Element confinement: bit-pattern reinterpretation between storage
    /// element types stays inside the sanctioned generic-storage module.
    L018,
}

impl Rule {
    /// The rule's stable identifier, as used in `lint: allow(...)`
    /// annotations and `lint-baseline.json` keys.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
            Rule::L013 => "L013",
            Rule::L014 => "L014",
            Rule::L015 => "L015",
            Rule::L016 => "L016",
            Rule::L017 => "L017",
            Rule::L018 => "L018",
        }
    }

    /// One-line description for CLI output.
    pub fn description(self) -> &'static str {
        match self {
            Rule::L001 => "no unwrap()/expect() in non-test library code",
            Rule::L002 => "no nondeterminism sources in deterministic crates",
            Rule::L003 => "public Error enums must implement Display + std::error::Error",
            Rule::L004 => "no bare `as` numeric casts in tensor hot paths",
            Rule::L005 => "manifests may declare only in-repo dependencies",
            Rule::L006 => "no raw thread spawning outside the worker pool",
            Rule::L007 => "no Instant::now() outside the sanctioned clock modules",
            Rule::L008 => "no bare mpsc recv in dinar-fl outside the sanctioned deadline helper",
            Rule::L009 => "no .clone() in parameter-plane modules; snapshot params with share()",
            Rule::L010 => "clip-dominates-noise: defenses must clip before drawing DP noise",
            Rule::L011 => "seed-taint: no integer-literal RNG seeds outside tests/benches",
            Rule::L012 => "panic-reachability: no panics reachable from the round loop/transport",
            Rule::L013 => "lock-order: nested Mutex acquisitions must follow the global order",
            Rule::L014 => "no arithmetic accumulation over unordered-container iteration",
            Rule::L015 => "no scalar normal() draws inside loops in defenses/param-plane code",
            Rule::L016 => "ledger-coverage: defense transforms must report to the privacy ledger",
            Rule::L017 => "wire-confinement: byte codecs only in wire modules; no `as` narrowing there",
            Rule::L018 => "element-confinement: bit-pattern casts only in the generic-storage module",
        }
    }

    /// Multi-paragraph rationale for `--explain <RULE>`: what the rule
    /// checks, why the invariant is load-bearing, and how to satisfy it.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L001 => {
                "L001 — no unwrap()/expect() in non-test library code.\n\n\
                 A panic in library code tears down whichever thread happened to call it;\n\
                 in the threaded FL transport that is a client mid-round, and the round\n\
                 stalls until the deadline fires. Return a Result, or — when the invariant\n\
                 genuinely cannot fail — document it on the line with\n\
                 `// lint: allow(L001, reason)`. An L001 allow also satisfies L012: the\n\
                 documented invariant covers the transitive reachability rule."
            }
            Rule::L002 => {
                "L002 — no nondeterminism sources in the deterministic crates.\n\n\
                 Every figure in the paper reproduction must replay bit-identically from\n\
                 its seeds. `thread_rng`, `SystemTime::now`, `Instant::now` and `HashMap`\n\
                 (whose iteration order varies per process) all leak ambient state into\n\
                 results. Use the seeded `dinar_tensor::rng`, the injectable `Clock`, and\n\
                 `BTreeMap`/`Vec`."
            }
            Rule::L003 => {
                "L003 — public `*Error` enums implement Display + std::error::Error.\n\n\
                 Error types cross crate boundaries; without the std trait impls they\n\
                 cannot compose with `?` conversions or be boxed uniformly at the\n\
                 harness layer."
            }
            Rule::L004 => {
                "L004 — no bare `as` numeric casts in the tensor hot paths.\n\n\
                 `as f32`/`as usize`/`as u32`/`as i32` silently truncate, round or wrap.\n\
                 In the inner loops that every model forward/backward traverses, a\n\
                 silent wrap corrupts results instead of failing. Use the checked\n\
                 helpers in `dinar_tensor::cast`."
            }
            Rule::L005 => {
                "L005 — manifests declare only in-repo dependencies.\n\n\
                 The build must stay hermetic: every dependency is a path dependency on\n\
                 a workspace crate, so the repo builds offline and the supply chain is\n\
                 the repo itself."
            }
            Rule::L006 => {
                "L006 — no raw thread spawning outside the worker pool.\n\n\
                 Ad-hoc threads bypass the pool's deterministic partitioning, its\n\
                 nested-parallelism guard and the per-thread allocation ledger. Route\n\
                 data parallelism through `dinar_tensor::par`; only the pool itself and\n\
                 the threaded client transport (long-lived simulated endpoints) are\n\
                 exempt."
            }
            Rule::L007 => {
                "L007 — no `Instant::now()` outside the sanctioned clock modules.\n\n\
                 Direct wall-clock reads cannot be replayed. Telemetry spans, cost\n\
                 accounting and bench profiles must flow through an injectable `Clock`\n\
                 (swap in `ManualClock` for bit-identical reruns) or the bench `timing`\n\
                 helpers."
            }
            Rule::L008 => {
                "L008 — no bare mpsc recv in `dinar-fl` outside the deadline helper.\n\n\
                 A bare blocking `recv()` only errors once every sender has dropped, so\n\
                 one dead client thread hangs the server forever. `DeadlineReceiver`\n\
                 budgets waits against the injectable `Clock` and surfaces ticks for\n\
                 liveness checks; every wait routes through it."
            }
            Rule::L009 => {
                "L009 — no `.clone()` in the parameter-plane modules.\n\n\
                 Model parameters move through defenses and aggregation every round; a\n\
                 stray `.clone()` is a full deep copy that silently regresses the\n\
                 zero-copy plane. Snapshot with `share()` (O(1) copy-on-write) and keep\n\
                 genuine deep copies at the two sanctioned sites."
            }
            Rule::L010 => {
                "L010 — clip dominates noise (cross-file, call-graph).\n\n\
                 The DP guarantee of the Gaussian mechanism holds only for bounded\n\
                 sensitivity: the update must be L2-clipped before noise scaled to the\n\
                 clip bound is added. Noising an unclipped update spends privacy budget\n\
                 on a guarantee that does not hold — the classic silent DP bug. The rule\n\
                 walks every function in `dinar-defenses` and requires each path that\n\
                 reaches a noise draw (`add_gaussian_noise`, or a raw `normal*`/`randn*`\n\
                 RNG call) to pass a clip source (`clip_l2`, `clip_l2_with_count`,\n\
                 `clip_factor`) first, propagating the obligation through private\n\
                 helpers up to pub/trait-impl entry points. Noise that is deliberately\n\
                 unclipped (e.g. pairwise secure-aggregation masks that cancel in the\n\
                 sum) carries `// lint: allow(L010, reason)` at the draw."
            }
            Rule::L011 => {
                "L011 — seed taint (cross-file, call-graph).\n\n\
                 Every RNG stream must derive from plumbed configuration\n\
                 (`cfg.seed ^ salt`), so one config seed replays the whole system and\n\
                 sweeps vary it centrally. `seed_from(<integer literal>)` in library\n\
                 code hard-codes a stream no harness can vary; tests and benches are\n\
                 exempt, and protocol constants can be annotated with\n\
                 `// lint: allow(L011, reason)`."
            }
            Rule::L012 => {
                "L012 — panic reachability (cross-file, call-graph).\n\n\
                 L001 sees panic sites line by line; L012 extends it transitively: no\n\
                 `panic!`/`.unwrap()`/`.expect(` may be reachable through the call graph\n\
                 from the threaded transport or the server round loop, because a panic\n\
                 there kills a client/server thread mid-round — the failure mode the\n\
                 resilient transport exists to contain. Sites whose invariant is\n\
                 documented with `lint: allow(L001, …)` (or `allow(L012, …)`) are\n\
                 exempt; `assert!`/`unreachable!` are contracts and not matched. The\n\
                 finding message prints one concrete root→site call chain."
            }
            Rule::L013 => {
                "L013 — lock order (cross-file, call-graph).\n\n\
                 Two threads acquiring the same two mutexes in opposite orders deadlock\n\
                 under contention and pass every single-threaded test. The workspace\n\
                 has one global acquisition order — telemetry.spans < telemetry.registry\n\
                 < telemetry.histo < fl.trace < tensor.par — and nested acquisitions\n\
                 (including those made by callees while a guard is held, with guards\n\
                 conservatively assumed held to end of function) must move strictly down\n\
                 it. Same-class re-entry is flagged too: std Mutex self-deadlocks."
            }
            Rule::L014 => {
                "L014 — nondeterministic iteration (token-level, deterministic crates).\n\n\
                 Float addition is not associative, so summing over a `HashSet`/`HashMap`\n\
                 visit order leaks per-process hash seeds into figures. L002 already\n\
                 bans `HashMap` wholesale in the deterministic crates; L014 closes the\n\
                 `HashSet` gap and the allow-annotated residue by flagging iterator\n\
                 chains that fold (`sum`/`fold`/`product`) over an unordered container\n\
                 and `for` loops over one whose body compound-accumulates (`+=`, `*=`).\n\
                 Use `BTreeMap`/`BTreeSet` or a sorted `Vec`; order-independent\n\
                 accumulation can be annotated `// lint: allow(L014, reason)`."
            }
            Rule::L015 => {
                "L015 — no scalar normal() draws inside loops (token-level, \
                 defenses/param-plane).\n\n\
                 A `rng.normal()`/`normal_with()` call inside a loop walks the\n\
                 sequential xoshiro stream one sample at a time through a scalar\n\
                 f64 Box–Muller — roughly an order of magnitude slower per element\n\
                 than the chunked counter-based fills, and since the defenses noise\n\
                 every parameter in place each round, this is exactly the hot-loop\n\
                 shape that made noise the dominant per-round defense cost. Draw\n\
                 the whole slice at once with `Rng::axpy_normal` /\n\
                 `Rng::fill_normal[_with]` (bit-reproducible, cache-free, and\n\
                 counted by the `tensor.rng.samples` telemetry). A genuinely\n\
                 scalar site (e.g. one draw per loop iteration of a small\n\
                 fixed-count loop) can be annotated\n\
                 `// lint: allow(L015, reason)`."
            }
            Rule::L016 => {
                "L016 — ledger coverage (cross-file, call-graph).\n\n\
                 The privacy-budget ledger is only an audit surface if its coverage is\n\
                 total: a defense transform that silently skips reporting makes the\n\
                 audit read \"spends nothing\" when the truth is \"forgot to say\". Every\n\
                 defense entry point in `dinar-defenses` — `transform_upload`,\n\
                 `transform_aggregate`, and the DP optimizer's `step` — must reach\n\
                 `Telemetry::privacy_charge` (real (ε, δ) cost) or\n\
                 `Telemetry::privacy_charge_zero` (an explicit zero-cost entry, the\n\
                 SA/GC case) through the call graph. Both are cheap and no-ops on a\n\
                 disabled sink, so there is no fast-path excuse. A transform that\n\
                 genuinely cannot touch member data can annotate a body line with\n\
                 `// lint: allow(L016, reason)`."
            }
            Rule::L017 => {
                "L017 — wire confinement (per-line).\n\n\
                 The wire format's safety story rests on one audited trust boundary:\n\
                 every byte-level encode/decode lives in the sanctioned wire module\n\
                 (`crates/tensor/src/wire.rs`), where length headers are bounds-checked\n\
                 before allocation and every integer conversion is a checked `try_from`.\n\
                 A stray `to_le_bytes`/`from_le_bytes` elsewhere is a second, unaudited\n\
                 codec waiting to ship a truncation bug; a silently-wrapping `as u32`\n\
                 inside a codec path is how a 5 GB tensor writes a length header of the\n\
                 wrong size and a hostile header becomes a giant allocation. Outside the\n\
                 wire modules, build on `dinar_tensor::wire::{ByteWriter, ByteReader}`;\n\
                 inside them, convert with `try_from` or the checked `cast` helpers. A\n\
                 genuinely-safe site can be annotated `// lint: allow(L017, reason)`."
            }
            Rule::L018 => {
                "L018 — element confinement (per-line).\n\n\
                 The generic storage backend keeps exactly one audited site where a\n\
                 value is reinterpreted as raw bits: the `Element` impls in\n\
                 `crates/tensor/src/storage.rs`, where `to_bit_pattern` /\n\
                 `from_bit_pattern` define each dtype's canonical u32 image (IEEE-754\n\
                 bits for f32, sign-extended for i8, the half-precision bit pattern\n\
                 for F16) and the property tests pin every one of them to an exact\n\
                 round-trip. A second spelling elsewhere is an unaudited\n\
                 reinterpretation that can silently disagree with the canonical one —\n\
                 the exact class of bug that breaks the width-independent\n\
                 bit-identicality the checkpoint and wire planes promise. `transmute`\n\
                 is banned with the same fence (the workspace is `forbid(unsafe_code)`\n\
                 in the core crates, but the lint also covers the crates that are\n\
                 not). Outside the storage module, convert through the safe `Element`\n\
                 API or `f32::to_bits`-family methods behind it; a genuinely-safe\n\
                 site can be annotated `// lint: allow(L018, reason)`."
            }
        }
    }

    /// All rules, in catalog order.
    pub fn all() -> [Rule; 18] {
        [
            Rule::L001,
            Rule::L002,
            Rule::L003,
            Rule::L004,
            Rule::L005,
            Rule::L006,
            Rule::L007,
            Rule::L008,
            Rule::L009,
            Rule::L010,
            Rule::L011,
            Rule::L012,
            Rule::L013,
            Rule::L014,
            Rule::L015,
            Rule::L016,
            Rule::L017,
            Rule::L018,
        ]
    }

    /// Looks a rule up by its `id()` string.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule.id(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Crates whose behaviour must be a pure function of their seeds. `bench`
/// measures real time by design and `lint` is tooling; everything else in
/// the workspace feeds figures that must replay bit-identically.
pub const DETERMINISTIC_CRATES: [&str; 10] = [
    "tensor",
    "nn",
    "core",
    "defenses",
    "attacks",
    "consensus",
    "fl",
    "metrics",
    "data",
    "telemetry",
];

/// Tensor hot-path files subject to L004.
pub const HOT_PATHS: [&str; 2] = ["crates/tensor/src/tensor.rs", "crates/tensor/src/conv.rs"];

/// Nondeterminism tokens banned by L002. `HashMap` is banned wholesale:
/// its iteration order varies per process, so deterministic crates use
/// `BTreeMap`/`Vec` (or carry an `// lint: allow(L002, reason)`).
const L002_TOKENS: [&str; 4] = ["thread_rng", "SystemTime::now", "Instant::now", "HashMap"];

/// Bare-cast tokens banned by L004 in the hot paths. Lossless widenings
/// (`as f64`, `as u64` from `u32`, …) are allowed; these four either
/// truncate, round, or wrap silently.
const L004_TOKENS: [&str; 4] = ["as f32", "as usize", "as u32", "as i32"];

/// Raw-threading tokens banned by L006. The catalog matches both the
/// `std::thread::` and `thread::` spellings because the token is
/// word-bounded on its left at the `::` separator.
const L006_TOKENS: [&str; 2] = ["thread::spawn", "thread::scope"];

/// Files allowed to spawn threads directly: the deterministic worker pool
/// itself, and the threaded client transport that predates it (simulated
/// network endpoints, one long-lived thread per client — not data
/// parallelism).
pub const L006_EXEMPT: [&str; 2] = ["crates/tensor/src/par.rs", "crates/fl/src/transport.rs"];

/// The wall-clock token banned by L007 everywhere except the sanctioned
/// clock modules. Unlike L002 (which covers only the deterministic crates),
/// L007 is repo-wide: even benchmarks must read time through an injectable
/// [`Clock`](../../telemetry/src/clock.rs) or the bench timing helpers so
/// profiles replay under `ManualClock`.
const L007_TOKEN: &str = "Instant::now";

/// The one `dinar-fl` module allowed to call mpsc `recv()`/`recv_timeout()`
/// directly: the deadline helper every other wait must route through. A
/// bare blocking `recv()` only errors once *every* sender has dropped, so
/// one dead client thread hangs the server forever — the exact bug L008
/// exists to keep fixed.
pub const L008_EXEMPT: &str = "crates/fl/src/deadline.rs";

/// Parameter-plane modules subject to L009. These files move whole model
/// parameter sets around every round, so an unexamined `.clone()` is a full
/// deep copy waiting to regress the zero-copy plane: snapshots must be the
/// explicit O(1) `ModelParams::share()`/`LayerParams::share()` spelling (or
/// carry an `// lint: allow(L009, reason)` for non-parameter clones such as
/// telemetry handles). The sanctioned copy sites live elsewhere:
/// `crates/fl/src/transport.rs` (per-client message snapshots) and
/// `crates/nn/src/params.rs` (which defines `share()` itself).
pub const L009_FILES: [&str; 12] = [
    "crates/defenses/src/dp.rs",
    "crates/defenses/src/ldp.rs",
    "crates/defenses/src/wdp.rs",
    "crates/defenses/src/cdp.rs",
    "crates/defenses/src/gc.rs",
    "crates/defenses/src/sa.rs",
    "crates/core/src/obfuscation.rs",
    "crates/nn/src/view.rs",
    "crates/fl/src/server.rs",
    "crates/fl/src/client.rs",
    "crates/fl/src/system.rs",
    "crates/fl/src/middleware.rs",
];

/// The sanctioned byte-codec modules: the only `/src/` files allowed to
/// spell byte-level serialization (`to_le_bytes`/`from_le_bytes` and the
/// big-endian variants), and conversely the files in which L017 bans
/// silently-wrapping `as` integer narrowing outright — codec paths must
/// convert with `try_from` or the checked `cast` helpers so corrupt length
/// headers surface as typed errors, never as wrapped offsets.
pub const L017_WIRE_FILES: [&str; 1] = ["crates/tensor/src/wire.rs"];

/// Byte-serialization tokens confined to [`L017_WIRE_FILES`] by L017.
const L017_BYTE_TOKENS: [&str; 4] = [
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
];

/// Narrowing-cast tokens banned *inside* [`L017_WIRE_FILES`] by L017.
/// Wider than L004's hot-path list: in a codec, even `as usize` is a
/// 32-bit-platform truncation on a wire-supplied length.
const L017_NARROWING_TOKENS: [&str; 7] = [
    "as u8", "as u16", "as u32", "as i8", "as i16", "as i32", "as usize",
];

/// The sanctioned generic-storage module: the only `/src/` file allowed to
/// spell bit-pattern reinterpretation between storage element types. The
/// `Element` impls here define each dtype's canonical u32 bit image, and
/// the property tests pin them; a second spelling elsewhere is an
/// unaudited reinterpretation that can silently diverge from the
/// canonical one.
pub const L018_STORAGE_FILES: [&str; 1] = ["crates/tensor/src/storage.rs"];

/// Reinterpretation tokens confined to [`L018_STORAGE_FILES`] by L018.
const L018_TOKENS: [&str; 3] = ["to_bit_pattern", "from_bit_pattern", "transmute"];

/// Is `path` one of the sanctioned wall-clock modules exempt from L007?
/// `clock.rs` files (the `Clock` implementations), `timing.rs` (the bench
/// measurement loop), and the telemetry crate (which owns the clock
/// abstraction) may call `Instant::now` directly.
fn l007_exempt(path: &str) -> bool {
    path.ends_with("/clock.rs")
        || path.ends_with("/timing.rs")
        || path.starts_with("crates/telemetry/")
}

/// Is the byte at `idx` the start of a word-bounded occurrence of `needle`?
fn word_bounded(line: &str, idx: usize, needle: &str) -> bool {
    let before_ok = idx == 0
        || line[..idx]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    let after = idx + needle.len();
    let after_ok = line[after..]
        .chars()
        .next()
        .is_none_or(|c| !c.is_alphanumeric() && c != '_');
    before_ok && after_ok
}

/// All word-bounded occurrences of `needle` in `line`.
fn occurrences(line: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let idx = start + pos;
        if word_bounded(line, idx, needle) {
            count += 1;
        }
        start = idx + needle.len();
    }
    count
}

/// Runs every per-file rule against one preprocessed source file.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let mut findings = Vec::new();
    check_l001(path, &stripped, &mut findings);
    check_l002(path, &stripped, &mut findings);
    check_l004(path, &stripped, &mut findings);
    check_l006(path, &stripped, &mut findings);
    check_l007(path, &stripped, &mut findings);
    check_l008(path, &stripped, &mut findings);
    check_l009(path, &stripped, &mut findings);
    check_l017(path, &stripped, &mut findings);
    check_l018(path, &stripped, &mut findings);
    findings
}

/// L001: `.unwrap()` / `.expect(` in non-test library code.
fn check_l001(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.contains("/src/") {
        return; // integration tests and examples are exempt
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L001", n) {
            continue;
        }
        let hits = line.matches(".unwrap()").count() + line.matches(".expect(").count();
        for _ in 0..hits {
            findings.push(Finding {
                rule: Rule::L001,
                file: path.to_string(),
                line: n,
                message: "unwrap()/expect() in library code; return a Result or document \
                          the invariant with `lint: allow(L001, reason)`"
                    .to_string(),
            });
        }
    }
}

/// L002: nondeterminism sources in deterministic crates.
fn check_l002(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    let in_deterministic = DETERMINISTIC_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if !in_deterministic {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L002", n) {
            continue;
        }
        for token in L002_TOKENS {
            for _ in 0..occurrences(line, token) {
                findings.push(Finding {
                    rule: Rule::L002,
                    file: path.to_string(),
                    line: n,
                    message: format!(
                        "`{token}` is a nondeterminism source; inject a seeded/manual \
                         substitute or annotate `lint: allow(L002, reason)`"
                    ),
                });
            }
        }
    }
}

/// L004: bare numeric casts in the tensor hot paths.
fn check_l004(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !HOT_PATHS.contains(&path) {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L004", n) {
            continue;
        }
        for token in L004_TOKENS {
            for _ in 0..occurrences(line, token) {
                findings.push(Finding {
                    rule: Rule::L004,
                    file: path.to_string(),
                    line: n,
                    message: format!(
                        "bare `{token}` cast in a tensor hot path; use the checked \
                         helpers in dinar_tensor::cast"
                    ),
                });
            }
        }
    }
}

/// L006: raw thread spawning outside the worker pool. Ad-hoc threads
/// bypass the pool's deterministic partitioning, its nested-parallelism
/// guard, and the per-thread allocation ledger, so all data parallelism
/// must go through `dinar_tensor::par` (see [`L006_EXEMPT`]).
fn check_l006(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.contains("/src/") || L006_EXEMPT.contains(&path) {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L006", n) {
            continue;
        }
        for token in L006_TOKENS {
            for _ in 0..occurrences(line, token) {
                findings.push(Finding {
                    rule: Rule::L006,
                    file: path.to_string(),
                    line: n,
                    message: format!(
                        "`{token}` outside the worker pool; route parallelism through \
                         dinar_tensor::par or annotate `lint: allow(L006, reason)`"
                    ),
                });
            }
        }
    }
}

/// L007: ambient `Instant::now()` outside the sanctioned clock modules.
/// Direct wall-clock reads cannot be replayed: telemetry spans and bench
/// profiles must flow through an injectable `Clock` (swap in `ManualClock`
/// for bit-identical reruns) or the bench `timing` helpers.
fn check_l007(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.contains("/src/") || l007_exempt(path) {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L007", n) {
            continue;
        }
        for _ in 0..occurrences(line, L007_TOKEN) {
            findings.push(Finding {
                rule: Rule::L007,
                file: path.to_string(),
                line: n,
                message: "`Instant::now` outside a sanctioned clock module; inject a \
                          `Clock` (dinar_telemetry) or annotate `lint: allow(L007, reason)`"
                    .to_string(),
            });
        }
    }
}

/// L008: bare mpsc receives in `dinar-fl` outside the deadline helper.
/// `DeadlineReceiver` is the sanctioned wait: it drains pending messages,
/// budgets against the injectable `Clock`, and surfaces ticks for liveness
/// checks — a bare `recv()` does none of that and reintroduces the
/// one-dead-client-hangs-the-round bug. (Matched as plain substrings, like
/// L001's `.unwrap()`: the leading `.` defeats word-bounding.)
fn check_l008(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.starts_with("crates/fl/src/") || path == L008_EXEMPT {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L008", n) {
            continue;
        }
        let hits = line.matches(".recv()").count() + line.matches(".recv_timeout(").count();
        for _ in 0..hits {
            findings.push(Finding {
                rule: Rule::L008,
                file: path.to_string(),
                line: n,
                message: "bare mpsc recv in dinar-fl; wait through \
                          dinar_fl::deadline::{DeadlineReceiver, recv_blocking} or \
                          annotate `lint: allow(L008, reason)`"
                    .to_string(),
            });
        }
    }
}

/// L009: `.clone()` in a parameter-plane module (see [`L009_FILES`]).
/// Matched as a plain substring like L001's `.unwrap()`: the leading `.`
/// defeats word-bounding. `Arc::clone(&x)` and `clone_from` are not matched
/// — the rule targets the method-call spelling that silently deep-copies a
/// parameter set.
fn check_l009(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !L009_FILES.contains(&path) {
        return;
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L009", n) {
            continue;
        }
        let hits = line.matches(".clone()").count();
        for _ in 0..hits {
            findings.push(Finding {
                rule: Rule::L009,
                file: path.to_string(),
                line: n,
                message: "`.clone()` in a parameter-plane module; snapshot params with \
                          `share()` (O(1) copy-on-write) or annotate \
                          `lint: allow(L009, reason)` for non-parameter clones"
                    .to_string(),
            });
        }
    }
}

/// L017: byte-level encode/decode confined to the sanctioned wire modules
/// ([`L017_WIRE_FILES`]); inside those modules, no silently-wrapping `as`
/// integer narrowing. Both halves are word-bounded token scans, like L002.
fn check_l017(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.contains("/src/") {
        return; // integration tests, benches and examples are exempt
    }
    let in_wire = L017_WIRE_FILES.contains(&path);
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L017", n) {
            continue;
        }
        if in_wire {
            for token in L017_NARROWING_TOKENS {
                for _ in 0..occurrences(line, token) {
                    findings.push(Finding {
                        rule: Rule::L017,
                        file: path.to_string(),
                        line: n,
                        message: format!(
                            "silently-wrapping `{token}` in a wire codec path; convert \
                             with `try_from` or the checked `cast` helpers, or annotate \
                             `lint: allow(L017, reason)`"
                        ),
                    });
                }
            }
        } else {
            for token in L017_BYTE_TOKENS {
                for _ in 0..occurrences(line, token) {
                    findings.push(Finding {
                        rule: Rule::L017,
                        file: path.to_string(),
                        line: n,
                        message: format!(
                            "`{token}` outside the sanctioned wire module; byte-level \
                             serialization belongs in dinar_tensor::wire (ByteWriter/\
                             ByteReader), or annotate `lint: allow(L017, reason)`"
                        ),
                    });
                }
            }
        }
    }
}

/// L018: bit-pattern reinterpretation confined to the sanctioned
/// generic-storage module ([`L018_STORAGE_FILES`]). A word-bounded token
/// scan, like L017's byte half.
fn check_l018(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    if !path.contains("/src/") {
        return; // integration tests, benches and examples are exempt
    }
    if L018_STORAGE_FILES.contains(&path) {
        return; // the audited Element impls live here
    }
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        if stripped.is_test_line(n) || stripped.is_allowed("L018", n) {
            continue;
        }
        for token in L018_TOKENS {
            for _ in 0..occurrences(line, token) {
                findings.push(Finding {
                    rule: Rule::L018,
                    file: path.to_string(),
                    line: n,
                    message: format!(
                        "`{token}` outside the sanctioned storage module; bit-pattern \
                         reinterpretation belongs in dinar_tensor::storage (the \
                         audited Element impls), or annotate \
                         `lint: allow(L018, reason)`"
                    ),
                });
            }
        }
    }
}

/// L003: every `pub enum *Error` must have `Display` and `std::error::Error`
/// impls somewhere in the same crate. Takes all of one crate's sources at
/// once because the impls usually live beside the enum but may not.
pub fn check_l003(sources: &[(String, String)]) -> Vec<Finding> {
    let mut enums: Vec<(String, usize, String)> = Vec::new(); // (file, line, name)
    let mut impl_text = String::new();
    for (path, source) in sources {
        let stripped = strip(source);
        for (i, line) in stripped.lines.iter().enumerate() {
            if let Some(pos) = line.find("pub enum ") {
                let name: String = line[pos + "pub enum ".len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.ends_with("Error") {
                    enums.push((path.clone(), i + 1, name));
                }
            }
            if line.contains("impl") {
                impl_text.push_str(line);
                impl_text.push('\n');
            }
        }
    }
    let mut findings = Vec::new();
    for (file, line, name) in enums {
        let has_display = impl_text.contains(&format!("Display for {name}"));
        let has_error = impl_text.contains(&format!("Error for {name}"));
        if !(has_display && has_error) {
            let missing = match (has_display, has_error) {
                (false, false) => "Display and std::error::Error",
                (false, true) => "Display",
                (true, false) => "std::error::Error",
                (true, true) => unreachable!(),
            };
            findings.push(Finding {
                rule: Rule::L003,
                file,
                line,
                message: format!("public error enum `{name}` is missing impl(s): {missing}"),
            });
        }
    }
    findings
}

/// L005: a manifest may declare only dependencies whose names appear in
/// `in_repo` (the set of workspace package names), and `[workspace.dependencies]`
/// entries must be `path` dependencies.
pub fn check_manifest(path: &str, manifest: &str, in_repo: &BTreeSet<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    for (i, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) || section == "workspace.dependencies";
        if !dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        if !in_repo.contains(&name) {
            findings.push(Finding {
                rule: Rule::L005,
                file: path.to_string(),
                line: i + 1,
                message: format!(
                    "dependency `{name}` is not an in-repo workspace package; the build \
                     must stay hermetic"
                ),
            });
        } else if section == "workspace.dependencies" && !line.contains("path") {
            findings.push(Finding {
                rule: Rule::L005,
                file: path.to_string(),
                line: i + 1,
                message: format!("workspace dependency `{name}` must be a path dependency"),
            });
        }
    }
    findings
}

/// Aggregates findings into per-rule, per-file counts (the baseline shape).
pub fn count_findings(findings: &[Finding]) -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for f in findings {
        *counts
            .entry(f.rule.id().to_string())
            .or_default()
            .entry(f.file.clone())
            .or_default() += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l001_flags_library_unwrap_but_not_tests_or_allows() {
        let src = "fn lib() { x.unwrap(); y.expect(\"m\"); }\n\
                   fn ok() { z.unwrap_or(0); } // lint: allow(L001, not needed)\n\
                   #[cfg(test)]\nmod tests { fn t() { q.unwrap(); } }\n";
        let findings = check_source("crates/nn/src/model.rs", src);
        let l001: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L001).collect();
        assert_eq!(l001.len(), 2, "{l001:?}");
        assert!(l001.iter().all(|f| f.line == 1));
    }

    #[test]
    fn l001_skips_non_src_paths() {
        let findings = check_source("tests/end_to_end.rs", "fn t() { x.unwrap(); }");
        assert!(findings.iter().all(|f| f.rule != Rule::L001));
    }

    #[test]
    fn l002_flags_nondeterminism_in_deterministic_crates_only() {
        let src = "fn f() { let t = Instant::now(); let m: HashMap<u32, u32> = HashMap::new(); }";
        let hits = check_source("crates/fl/src/x.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L002)
            .count();
        assert_eq!(hits, 3); // Instant::now + 2×HashMap
        let bench = check_source("crates/bench/src/x.rs", src);
        assert!(bench.iter().all(|f| f.rule != Rule::L002));
    }

    #[test]
    fn l002_allow_annotation_suppresses() {
        let src = "// lint: allow(L002, timer by design)\nlet t = Instant::now();\n";
        let findings = check_source("crates/metrics/src/cost.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L002), "{findings:?}");
    }

    #[test]
    fn l002_ignores_comments_and_strings() {
        let src = "// Instant::now is banned\nlet s = \"Instant::now\";\n";
        let findings = check_source("crates/tensor/src/x.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L002));
    }

    #[test]
    fn l003_detects_missing_impls() {
        let bad = vec![(
            "crates/x/src/error.rs".to_string(),
            "pub enum XError { A }\nimpl fmt::Display for XError { }".to_string(),
        )];
        let findings = check_l003(&bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("std::error::Error"));

        let good = vec![(
            "crates/x/src/error.rs".to_string(),
            "pub enum XError { A }\nimpl fmt::Display for XError { }\n\
             impl std::error::Error for XError {}"
                .to_string(),
        )];
        assert!(check_l003(&good).is_empty());
    }

    #[test]
    fn l003_ignores_non_error_enums_and_private_enums() {
        let sources = vec![(
            "crates/x/src/lib.rs".to_string(),
            "pub enum Shape { A }\nenum InnerError { B }".to_string(),
        )];
        assert!(check_l003(&sources).is_empty());
    }

    #[test]
    fn l004_flags_bare_casts_in_hot_paths_only() {
        let src = "fn f(x: f32, n: usize) { let a = x as usize; let b = n as f32; let c = n as f64; }";
        let hot = check_source("crates/tensor/src/tensor.rs", src);
        assert_eq!(hot.iter().filter(|f| f.rule == Rule::L004).count(), 2);
        let cold = check_source("crates/tensor/src/rng.rs", src);
        assert!(cold.iter().all(|f| f.rule != Rule::L004));
    }

    #[test]
    fn l004_allow_annotation_suppresses() {
        let src = "let a = x as usize; // lint: allow(L004, bounds-checked above)";
        let findings = check_source("crates/tensor/src/conv.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L004));
    }

    #[test]
    fn l006_flags_raw_threads_outside_pool_and_transport() {
        let src = "fn f() { std::thread::spawn(|| {}); thread::scope(|s| {}); }";
        let hits = check_source("crates/consensus/src/network.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L006)
            .count();
        assert_eq!(hits, 2);
        for exempt in L006_EXEMPT {
            let findings = check_source(exempt, src);
            assert!(findings.iter().all(|f| f.rule != Rule::L006), "{exempt}");
        }
    }

    #[test]
    fn l006_skips_tests_and_allows() {
        let src = "let h = thread::spawn(f); // lint: allow(L006, watchdog by design)\n\
                   #[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }\n";
        let findings = check_source("crates/fl/src/clock.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L006), "{findings:?}");
    }

    #[test]
    fn l007_flags_ambient_wall_clock_outside_clock_modules() {
        let src = "fn f() { let t = Instant::now(); }";
        let hits = check_source("crates/metrics/src/cost.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L007)
            .count();
        assert_eq!(hits, 1);
        for exempt in [
            "crates/fl/src/clock.rs",
            "crates/bench/src/timing.rs",
            "crates/telemetry/src/clock.rs",
            "crates/telemetry/src/span.rs",
        ] {
            let findings = check_source(exempt, src);
            assert!(findings.iter().all(|f| f.rule != Rule::L007), "{exempt}");
        }
    }

    #[test]
    fn l007_allow_annotation_and_tests_suppress() {
        let src = "// lint: allow(L007, wall time by design)\nlet t = Instant::now();\n\
                   #[cfg(test)]\nmod tests { fn t() { let x = Instant::now(); } }\n";
        let findings = check_source("crates/bench/src/harness.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L007), "{findings:?}");
    }

    #[test]
    fn l008_flags_bare_recv_in_fl_outside_deadline_helper() {
        let src = "fn f(rx: &Receiver<u32>) { let m = rx.recv(); \
                   let t = rx.recv_timeout(d); let ok = rx.try_recv(); }";
        let hits = check_source("crates/fl/src/transport.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L008)
            .count();
        assert_eq!(hits, 2); // try_recv is non-blocking and allowed
        // The sanctioned helper and other crates are exempt.
        let helper = check_source(L008_EXEMPT, src);
        assert!(helper.iter().all(|f| f.rule != Rule::L008));
        let elsewhere = check_source("crates/consensus/src/gossip.rs", src);
        assert!(elsewhere.iter().all(|f| f.rule != Rule::L008));
    }

    #[test]
    fn l008_skips_tests_and_allows() {
        let src = "let m = rx.recv(); // lint: allow(L008, shutdown path has no deadline)\n\
                   #[cfg(test)]\nmod tests { fn t() { let m = rx.recv(); } }\n";
        let findings = check_source("crates/fl/src/system.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L008), "{findings:?}");
    }

    #[test]
    fn l009_flags_clone_in_param_plane_files_only() {
        let src = "fn f(p: &ModelParams) { let a = p.clone(); let b = p.share(); \
                   let c = other.clone(); }";
        for file in L009_FILES {
            let hits = check_source(file, src)
                .iter()
                .filter(|f| f.rule == Rule::L009)
                .count();
            assert_eq!(hits, 2, "{file}");
        }
        // The sanctioned copy sites and unrelated files are exempt.
        for exempt in [
            "crates/fl/src/transport.rs",
            "crates/nn/src/params.rs",
            "crates/tensor/src/tensor.rs",
        ] {
            let findings = check_source(exempt, src);
            assert!(findings.iter().all(|f| f.rule != Rule::L009), "{exempt}");
        }
    }

    #[test]
    fn l009_skips_tests_and_allows() {
        let src = "let t = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)\n\
                   #[cfg(test)]\nmod tests { fn t() { let c = p.clone(); } }\n";
        let findings = check_source("crates/fl/src/client.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L009), "{findings:?}");
    }

    #[test]
    fn l017_confines_byte_codecs_to_wire_modules() {
        let src = "fn f(x: u32) { let b = x.to_le_bytes(); \
                   let y = u32::from_le_bytes(b); let z = x.to_be_bytes(); }";
        let hits = check_source("crates/fl/src/transport.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L017)
            .count();
        assert_eq!(hits, 3);
        // The sanctioned wire module may serialize bytes freely.
        for wire in L017_WIRE_FILES {
            let findings = check_source(wire, src);
            assert!(findings.iter().all(|f| f.rule != Rule::L017), "{wire}");
        }
        // Integration tests are exempt (they exercise corrupt streams).
        let findings = check_source("tests/wire_plane.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L017));
    }

    #[test]
    fn l017_bans_narrowing_casts_inside_wire_modules() {
        let src = "fn f(n: usize) { let a = n as u32; let b = n as u64; \
                   let c = len as usize; let d = x as i8; }";
        let hits = check_source("crates/tensor/src/wire.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L017)
            .count();
        assert_eq!(hits, 3); // `as u64` widens and is allowed
        // Outside the wire module, narrowing is L004's (hot-path) concern.
        let findings = check_source("crates/fl/src/netsim.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L017));
    }

    #[test]
    fn l017_skips_tests_and_allows() {
        let src = "let b = x.to_le_bytes(); // lint: allow(L017, test fixture builder)\n\
                   #[cfg(test)]\nmod tests { fn t() { let b = x.to_le_bytes(); } }\n";
        let findings = check_source("crates/metrics/src/trace.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L017), "{findings:?}");
        let src = "let n = len as usize; // lint: allow(L017, bounded just above)\n\
                   #[cfg(test)]\nmod tests { fn t() { let n = len as u32; } }\n";
        let findings = check_source("crates/tensor/src/wire.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L017), "{findings:?}");
    }

    #[test]
    fn l018_confines_bit_patterns_to_the_storage_module() {
        let src = "fn f(x: f32) { let b = x.to_bit_pattern(); \
                   let y = f32::from_bit_pattern(b); \
                   let z = std::mem::transmute::<f32, u32>(x); }";
        let hits = check_source("crates/nn/src/ckpt.rs", src)
            .iter()
            .filter(|f| f.rule == Rule::L018)
            .count();
        assert_eq!(hits, 3);
        // The sanctioned storage module may reinterpret freely.
        for storage in L018_STORAGE_FILES {
            let findings = check_source(storage, src);
            assert!(findings.iter().all(|f| f.rule != Rule::L018), "{storage}");
        }
        // Integration tests are exempt (they exercise corrupt images).
        let findings = check_source("tests/ckpt_plane.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L018));
    }

    #[test]
    fn l018_skips_tests_and_allows() {
        let src = "let b = x.to_bit_pattern(); // lint: allow(L018, fixture builder)\n\
                   #[cfg(test)]\nmod tests { fn t() { let b = x.to_bit_pattern(); } }\n";
        let findings = check_source("crates/fl/src/ckpt.rs", src);
        assert!(findings.iter().all(|f| f.rule != Rule::L018), "{findings:?}");
    }

    #[test]
    fn l005_flags_registry_deps() {
        let mut in_repo = BTreeSet::new();
        in_repo.insert("dinar-tensor".to_string());
        let manifest = "[package]\nname = \"x\"\n[dependencies]\n\
                        dinar-tensor.workspace = true\nserde = \"1\"\n";
        let findings = check_manifest("crates/x/Cargo.toml", manifest, &in_repo);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("serde"));
    }

    #[test]
    fn l005_requires_path_workspace_deps() {
        let mut in_repo = BTreeSet::new();
        in_repo.insert("dinar-tensor".to_string());
        let good = "[workspace.dependencies]\ndinar-tensor = { path = \"crates/tensor\" }\n";
        assert!(check_manifest("Cargo.toml", good, &in_repo).is_empty());
        let bad = "[workspace.dependencies]\ndinar-tensor = \"0.1\"\n";
        assert_eq!(check_manifest("Cargo.toml", bad, &in_repo).len(), 1);
    }
}

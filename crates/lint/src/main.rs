//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p dinar-lint                      # ratchet check (exit 1 on regressions)
//! cargo run -p dinar-lint -- --verbose         # also list every current finding
//! cargo run -p dinar-lint -- --update-baseline # re-record lint-baseline.json
//! cargo run -p dinar-lint -- --json            # write bench-results/LINT_report.json
//! cargo run -p dinar-lint -- --explain L010    # print one rule's full rationale
//! cargo run -p dinar-lint -- --root <dir>      # lint another workspace root
//! ```

use dinar_lint::{check_against_baseline, lint_workspace, Baseline, Rule, BASELINE_FILE};
use dinar_tensor::json::{Json, ToJson};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    update_baseline: bool,
    verbose: bool,
    json: bool,
    explain: Option<String>,
}

const USAGE: &str =
    "usage: dinar-lint [--root DIR] [--update-baseline] [--verbose] [--json] [--explain RULE]";

/// Repo-relative path of the machine-readable trend report written by
/// `--json`.
const REPORT_FILE: &str = "bench-results/LINT_report.json";

/// `Ok(None)` means `--help`: print usage and exit successfully.
fn parse_args() -> Result<Option<Options>, String> {
    let mut options = Options {
        root: workspace_root(),
        update_baseline: false,
        verbose: false,
        json: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => options.update_baseline = true,
            "--verbose" | "-v" => options.verbose = true,
            "--json" => options.json = true,
            "--explain" => {
                options.explain = Some(
                    args.next().ok_or_else(|| "--explain requires a rule ID".to_string())?,
                );
            }
            "--root" => {
                options.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(options))
}

/// Renders the per-rule trend report: total finding count plus each rule's
/// current count and catalog description, in stable order.
fn report_json(findings_total: usize, current: &Baseline) -> String {
    let rules = Json::Obj(
        Rule::all()
            .into_iter()
            .map(|rule| {
                (
                    rule.id().to_string(),
                    Json::Obj(vec![
                        ("count".to_string(), current.rule_total(rule.id()).to_json()),
                        ("description".to_string(), rule.description().to_json()),
                    ]),
                )
            })
            .collect(),
    );
    let report = Json::Obj(vec![
        ("total".to_string(), findings_total.to_json()),
        ("rules".to_string(), rules),
    ]);
    let mut text = report.dump_pretty();
    text.push('\n');
    text
}

/// The workspace root: this crate's manifest dir is `<root>/crates/lint`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(id) = &options.explain {
        return match Rule::from_id(id) {
            Some(rule) => {
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                let known: Vec<&str> = Rule::all().iter().map(|r| r.id()).collect();
                eprintln!("unknown rule `{id}`; known rules: {}", known.join(", "));
                ExitCode::from(2)
            }
        };
    }

    if options.update_baseline {
        let findings = match lint_workspace(&options.root) {
            Ok(findings) => findings,
            Err(e) => {
                eprintln!("lint failed: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = Baseline::from_findings(&findings);
        let path = options.root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, baseline.dump()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("recorded {} finding(s) in {}", findings.len(), path.display());
        for rule in Rule::all() {
            println!("  {:<5} {:>4}  {}", rule.id(), baseline.rule_total(rule.id()), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let (findings, regressions) = match check_against_baseline(&options.root) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("lint failed: {e}");
            return ExitCode::from(2);
        }
    };

    if options.verbose {
        for finding in &findings {
            println!("{finding}");
        }
    }
    let current = Baseline::from_findings(&findings);
    if options.json {
        let path = options.root.join(REPORT_FILE);
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, report_json(findings.len(), &current)) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    println!("lint: {} finding(s) against baseline:", findings.len());
    for rule in Rule::all() {
        println!("  {:<5} {:>4}  {}", rule.id(), current.rule_total(rule.id()), rule.description());
    }

    if regressions.is_empty() {
        println!("ratchet OK: no (rule, file) count rose above {BASELINE_FILE}");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nratchet FAILED — {} regression(s):", regressions.len());
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        eprintln!(
            "\nfix the new violations (or, for intentional changes, run \
             `cargo run -p dinar-lint -- --update-baseline` and commit {BASELINE_FILE})"
        );
        ExitCode::FAILURE
    }
}

//! The ratcheting baseline: existing violations are recorded, new ones fail.
//!
//! `lint-baseline.json` maps `rule -> file -> count`. A lint run fails only
//! when some (rule, file) count **rises** above its recorded value — so the
//! recorded debt can be paid down incrementally (falling counts always pass,
//! and `--update-baseline` re-records them) while regressions are impossible
//! to land.

use crate::rules::{count_findings, Finding};
use crate::LintError;
use dinar_tensor::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::path::Path;

/// Default baseline file name, looked up at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Per-rule, per-file violation counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// One (rule, file) pair whose count rose above the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule identifier (`"L001"`, …).
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// Count recorded in the baseline (0 for new files).
    pub baseline: usize,
    /// Count observed now.
    pub current: usize,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {} violation(s), baseline allows {}",
            self.rule, self.file, self.current, self.baseline
        )
    }
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.counts
                .iter()
                .map(|(rule, files)| {
                    (
                        rule.clone(),
                        Json::Obj(
                            files
                                .iter()
                                .map(|(file, n)| (file.clone(), n.to_json()))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        )
    }
}

impl Baseline {
    /// Builds a baseline from a set of findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        Baseline {
            counts: count_findings(findings),
        }
    }

    /// Iterates over every recorded `(rule, file, count)` entry, in stable
    /// (sorted) order — used by the baseline-sanity gate to reject unknown
    /// rule IDs and stale paths.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.counts.iter().flat_map(|(rule, files)| {
            files
                .iter()
                .map(move |(file, &n)| (rule.as_str(), file.as_str(), n))
        })
    }

    /// The recorded count for a (rule, file) pair.
    pub fn count(&self, rule: &str, file: &str) -> usize {
        self.counts
            .get(rule)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Total recorded violations for one rule.
    pub fn rule_total(&self, rule: &str) -> usize {
        self.counts
            .get(rule)
            .map(|files| files.values().sum())
            .unwrap_or(0)
    }

    /// Every (rule, file) pair whose count in `current` exceeds this
    /// baseline — the ratchet check. Falling counts are not reported.
    pub fn regressions(&self, current: &Baseline) -> Vec<Regression> {
        let mut out = Vec::new();
        for (rule, files) in &current.counts {
            for (file, &n) in files {
                let allowed = self.count(rule, file);
                if n > allowed {
                    out.push(Regression {
                        rule: rule.clone(),
                        file: file.clone(),
                        baseline: allowed,
                        current: n,
                    });
                }
            }
        }
        out
    }

    /// Serializes to the committed JSON format (pretty, stable ordering).
    pub fn dump(&self) -> String {
        let mut text = self.to_json().dump_pretty();
        text.push('\n');
        text
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    ///
    /// Returns [`LintError::BadBaseline`] on malformed JSON or a
    /// non-`rule -> file -> count` shape.
    pub fn parse(text: &str) -> Result<Self, LintError> {
        let value = Json::parse(text).map_err(|e| LintError::BadBaseline {
            reason: e.to_string(),
        })?;
        let rules = value.as_obj().ok_or_else(|| LintError::BadBaseline {
            reason: "top level is not an object".to_string(),
        })?;
        let mut counts = BTreeMap::new();
        for (rule, files_value) in rules {
            let files = files_value.as_obj().ok_or_else(|| LintError::BadBaseline {
                reason: format!("entry `{rule}` is not an object"),
            })?;
            let mut per_file = BTreeMap::new();
            for (file, n) in files {
                let n = n.as_usize().ok_or_else(|| LintError::BadBaseline {
                    reason: format!("count for `{rule}` / `{file}` is not a non-negative integer"),
                })?;
                per_file.insert(file.clone(), n);
            }
            counts.insert(rule.clone(), per_file);
        }
        Ok(Baseline { counts })
    }

    /// Loads the baseline from `path`; a missing file is an empty baseline
    /// (every existing violation then counts as a regression).
    ///
    /// # Errors
    ///
    /// Returns [`LintError::Io`] for unreadable files and
    /// [`LintError::BadBaseline`] for malformed content.
    pub fn load(path: &Path) -> Result<Self, LintError> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| LintError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Baseline::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, file: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn rising_count_is_a_regression() {
        let baseline = Baseline::from_findings(&[finding(Rule::L001, "a.rs")]);
        let current = Baseline::from_findings(&[
            finding(Rule::L001, "a.rs"),
            finding(Rule::L001, "a.rs"),
        ]);
        let regs = baseline.regressions(&current);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 1);
        assert_eq!(regs[0].current, 2);
    }

    #[test]
    fn falling_and_equal_counts_pass() {
        let baseline = Baseline::from_findings(&[
            finding(Rule::L001, "a.rs"),
            finding(Rule::L001, "a.rs"),
            finding(Rule::L002, "b.rs"),
        ]);
        let current = Baseline::from_findings(&[
            finding(Rule::L001, "a.rs"),
            finding(Rule::L002, "b.rs"),
        ]);
        assert!(baseline.regressions(&current).is_empty());
    }

    #[test]
    fn new_file_counts_as_regression_from_zero() {
        let baseline = Baseline::default();
        let current = Baseline::from_findings(&[finding(Rule::L004, "new.rs")]);
        let regs = baseline.regressions(&current);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline, 0);
    }

    #[test]
    fn json_roundtrip() {
        let baseline = Baseline::from_findings(&[
            finding(Rule::L001, "a.rs"),
            finding(Rule::L001, "b.rs"),
            finding(Rule::L005, "Cargo.toml"),
        ]);
        let parsed = Baseline::parse(&baseline.dump()).expect("roundtrip");
        assert_eq!(parsed, baseline);
        assert_eq!(parsed.rule_total("L001"), 2);
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(Baseline::parse("{ not json").is_err());
        assert!(Baseline::parse("{\"L001\": 3}").is_err());
        assert!(Baseline::parse("{\"L001\": {\"a.rs\": -1}}").is_err());
    }
}

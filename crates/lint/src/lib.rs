//! # dinar-lint
//!
//! An in-repo static-analysis pass for the DINAR workspace. The
//! reproduction's claims (attack AUC, per-layer sensitivity, figure
//! regeneration) depend on determinism, privacy-ordering and error-handling
//! discipline that generic tooling cannot check, so this crate enforces
//! fourteen repo-specific invariants. L001–L009 are token-level per-line
//! rules; L010–L014 run on a semantic engine — a lexer ([`lex`]) over
//! stripped sources, a lightweight item parser ([`sem`]), and a workspace
//! symbol table with an approximate call graph ([`graph`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | no `unwrap()`/`expect()` in non-test library code |
//! | L002 | no nondeterminism sources (`thread_rng`, `SystemTime::now`, `Instant::now`, `HashMap`) in the deterministic crates |
//! | L003 | every `pub enum *Error` implements `Display + std::error::Error` |
//! | L004 | no bare `as` numeric casts in the tensor hot paths (use `dinar_tensor::cast`) |
//! | L005 | every manifest declares only in-repo dependencies (hermetic builds) |
//! | L006 | no raw `thread::spawn`/`thread::scope` outside the worker pool (`dinar_tensor::par`) and the threaded transport |
//! | L007 | no ambient `Instant::now()` outside the sanctioned clock modules (`clock.rs`, `timing.rs`, `dinar-telemetry`) |
//! | L008 | no bare mpsc `recv()`/`recv_timeout()` in `dinar-fl` outside the sanctioned deadline helper (`crates/fl/src/deadline.rs`) |
//! | L009 | no `.clone()` in the parameter-plane modules — snapshot params with the O(1) `share()` (sanctioned copy sites: `crates/fl/src/transport.rs`, `crates/nn/src/params.rs`) |
//! | L010 | clip-dominates-noise: in `dinar-defenses`, every call path reaching a Gaussian noise draw passes through a clip source (`clip_l2`/`clip_l2_with_count`/`clip_factor`) first |
//! | L011 | seed-taint: no `seed_from(<integer literal>)` outside tests/benches — RNG streams derive from plumbed config |
//! | L012 | panic-reachability: no `panic!`/`unwrap`/`expect` reachable through the call graph from the FL round loop or the threaded transport |
//! | L013 | lock-order: nested `Mutex` acquisitions follow the global order `telemetry.spans < telemetry.registry < telemetry.histo < fl.trace < tensor.par` |
//! | L014 | no arithmetic accumulation over unordered-container (`HashSet`/`HashMap`) iteration in the deterministic crates |
//!
//! Pre-existing violations live in a committed [`baseline::BASELINE_FILE`]
//! and only *rising* counts fail (the ratchet), so the debt shrinks
//! monotonically without blocking unrelated work. The semantic rules
//! L010–L014 are ratcheted at zero by `tests/lint.rs`. Run the CLI with
//! `cargo run -p dinar-lint`, regenerate the baseline after intentional
//! fixes with `cargo run -p dinar-lint -- --update-baseline`, emit the
//! machine-readable trend report with `-- --json`
//! (`bench-results/LINT_report.json`), print a rule's rationale with
//! `-- --explain L010`, and rely on the umbrella `tests/lint.rs` gate to
//! enforce the ratchet in `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lex;
pub mod rules;
pub mod sem;
pub mod strip;

pub use baseline::{Baseline, Regression, BASELINE_FILE};
pub use rules::{Finding, Rule};

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors from the linter itself (I/O and baseline parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintError {
    /// A file or directory could not be read.
    Io {
        /// Offending path.
        path: String,
        /// Underlying error text.
        reason: String,
    },
    /// `lint-baseline.json` is malformed.
    BadBaseline {
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
            LintError::BadBaseline { reason } => {
                write!(f, "malformed lint baseline: {reason}")
            }
        }
    }
}

impl std::error::Error for LintError {}

fn read(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|e| LintError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    })
}

/// Repo-relative path with forward slashes (stable across platforms, used
/// as the baseline key).
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.display().to_string(),
        reason: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let path = entry.path();
        if path.is_dir() {
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crate directories under `crates/`, sorted by name.
fn crate_dirs(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| LintError::Io {
        path: crates.display().to_string(),
        reason: e.to_string(),
    })?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Package names defined by manifests in this repo (the L005 allow-list).
fn in_repo_packages(root: &Path, crate_dirs: &[PathBuf]) -> Result<BTreeSet<String>, LintError> {
    let mut names = BTreeSet::new();
    let mut manifests: Vec<PathBuf> = crate_dirs.iter().map(|d| d.join("Cargo.toml")).collect();
    manifests.push(root.join("Cargo.toml"));
    for manifest in manifests {
        let text = read(&manifest)?;
        for line in text.lines() {
            let line = line.trim();
            if let Some(value) = line.strip_prefix("name = ") {
                names.insert(value.trim_matches('"').to_string());
                break; // first `name =` is the package name
            }
        }
    }
    Ok(names)
}

/// Lints the whole workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and `tests/`, plus every `Cargo.toml`.
///
/// # Errors
///
/// Returns [`LintError::Io`] if the tree cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    let dirs = crate_dirs(root)?;
    let mut findings = Vec::new();

    // Per-file rules (L001/L002/L004/L006/L007/L008/L009) over crates/*/src
    // and tests/; the same pass collects sources for the semantic engine.
    let mut files = Vec::new();
    for dir in &dirs {
        rs_files_under(&dir.join("src"), &mut files)?;
    }
    rs_files_under(&root.join("tests"), &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for file in &files {
        let source = read(file)?;
        findings.extend(rules::check_source(&rel(root, file), &source));
        sources.push((rel(root, file), source));
    }

    // Cross-file semantic rules (L010–L014) on the call-graph engine.
    findings.extend(graph::check_semantic(&sources));

    // L003 needs whole-crate visibility (impls may live away from the enum).
    for dir in &dirs {
        let mut crate_files = Vec::new();
        rs_files_under(&dir.join("src"), &mut crate_files)?;
        crate_files.sort();
        let mut sources = Vec::new();
        for file in &crate_files {
            sources.push((rel(root, file), read(file)?));
        }
        findings.extend(rules::check_l003(&sources));
    }

    // L005 over every manifest, including the workspace root.
    let in_repo = in_repo_packages(root, &dirs)?;
    let mut manifests: Vec<PathBuf> = dirs.iter().map(|d| d.join("Cargo.toml")).collect();
    manifests.push(root.join("Cargo.toml"));
    for manifest in manifests {
        let text = read(&manifest)?;
        findings.extend(rules::check_manifest(&rel(root, &manifest), &text, &in_repo));
    }

    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(findings)
}

/// Runs the full ratchet check: lint the workspace and compare against the
/// committed baseline. Returns the findings and any regressions.
///
/// # Errors
///
/// Returns [`LintError`] for unreadable trees or a malformed baseline.
pub fn check_against_baseline(root: &Path) -> Result<(Vec<Finding>, Vec<Regression>), LintError> {
    let findings = lint_workspace(root)?;
    let recorded = Baseline::load(&root.join(BASELINE_FILE))?;
    let current = Baseline::from_findings(&findings);
    let regressions = recorded.regressions(&current);
    Ok((findings, regressions))
}

//! Workspace symbol table, approximate call graph and the cross-file rules
//! L010–L016.
//!
//! Resolution is **name-based** (no type inference): free calls resolve to
//! every workspace free function of that name, `Type::method` resolves
//! exactly, and `.method(...)` resolves to every workspace method of that
//! name *unless* the name is in [`AMBIENT_METHODS`] — std-prelude-ish names
//! (`map`, `len`, `iter`, …) that would otherwise wire the graph to
//! coincidentally named tensor/collection methods. The result over-connects
//! where workspace names collide and under-connects through ambient names
//! and function pointers; DESIGN.md §12 discusses why that trade is right
//! for ratcheted invariants.
//!
//! The `bench` and `lint` crates are excluded from the model: no rule roots
//! or sinks live there, and their free-name overlap with the library crates
//! (`run`, `measure`, …) would only add false edges.

use crate::rules::{Finding, Rule, DETERMINISTIC_CRATES, L009_FILES};
use crate::sem::{parse_file, CallKind, EventKind, FnInfo};
use crate::strip::{strip, Stripped};
use std::collections::{BTreeMap, BTreeSet};

/// Method names never resolved through the call graph: std-prelude and
/// primitive-receiver methods whose workspace homonyms (e.g. `Tensor::map`,
/// `Tensor::get`) would create edges from nearly every function.
pub const AMBIENT_METHODS: [&str; 64] = [
    "abs", "all", "any", "as_mut_slice", "as_slice", "ceil", "chain", "chars", "chunks",
    "clone", "cloned", "collect", "contains", "copied", "count", "drain", "entry", "enumerate",
    "eq", "exp", "extend", "fill", "filter", "find", "first", "flatten", "floor", "fold",
    "get", "get_mut", "insert", "into_iter", "is_empty", "iter", "iter_mut", "join", "last",
    "len", "ln", "map", "max", "min", "next", "parse", "pop", "position", "powi", "product",
    "push", "remove", "resize", "rev", "round", "skip", "sort", "split", "sqrt", "sum",
    "swap", "take", "to_string", "to_vec", "truncate", "zip",
];

/// Functions recognized as L2-clip sources by L010.
pub const L010_CLIP_FNS: [&str; 3] = ["clip_l2", "clip_l2_with_count", "clip_factor"];

/// The sanctioned noise primitive: its callers carry the clip obligation,
/// and its own body (which draws the noise) is exempt.
pub const L010_NOISE_FNS: [&str; 1] = ["add_gaussian_noise"];

/// L012 reachability roots: every non-test function in these files…
pub const L012_ROOT_FILES: [&str; 1] = ["crates/fl/src/transport.rs"];

/// …plus these qualified functions (the server round loop).
pub const L012_ROOT_FNS: [&str; 4] = [
    "FlServer::aggregate",
    "FlSystem::run",
    "FlSystem::run_round",
    "FlSystem::run_round_with_selection",
];

/// The global mutex acquisition order, outermost first. Nested acquisitions
/// must move strictly *down* this list; acquiring an earlier (or the same)
/// class while holding a later one is an L013 violation.
pub const LOCK_ORDER: [&str; 5] = [
    "telemetry.spans",
    "telemetry.registry",
    "telemetry.histo",
    "fl.trace",
    "tensor.par",
];

/// Maps a `.lock()` receiver to its class (an index into [`LOCK_ORDER`]).
/// Unknown receivers are not tracked — adding a mutex means adding its
/// class here.
fn lock_class(file: &str, receiver: &str) -> Option<usize> {
    match (file, receiver) {
        ("crates/telemetry/src/lib.rs", "spans") | ("crates/telemetry/src/span.rs", "sink") => {
            Some(0)
        }
        ("crates/telemetry/src/registry.rs", "entries") => Some(1),
        ("crates/telemetry/src/registry.rs", "inner") => Some(2),
        ("crates/fl/src/trace.rs", "inner") => Some(3),
        ("crates/tensor/src/par.rs", "WIDTH_LOCK") => Some(4),
        _ => None,
    }
}

/// The parsed workspace: all non-test functions with name-based indices and
/// resolved call edges.
pub struct Workspace {
    fns: Vec<FnInfo>,
    by_free: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<String, Vec<usize>>,
    by_method: BTreeMap<String, Vec<usize>>,
    /// Deduplicated resolved call targets per function.
    edges: Vec<Vec<usize>>,
}

impl Workspace {
    /// Builds the model from `(repo-relative path, source)` pairs. Files
    /// outside `crates/*/src`, and the bench/lint crates, are ignored.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut fns = Vec::new();
        for (path, source) in sources {
            if !path.contains("/src/")
                || path.starts_with("crates/bench/")
                || path.starts_with("crates/lint/")
            {
                continue;
            }
            fns.extend(parse_file(path, &strip(source)));
        }
        let mut by_free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.self_ty.is_some() {
                by_qual.entry(f.qual.clone()).or_default().push(i);
                by_method.entry(f.name.clone()).or_default().push(i);
            } else {
                by_free.entry(f.name.clone()).or_default().push(i);
            }
        }
        let mut ws = Workspace {
            fns,
            by_free,
            by_qual,
            by_method,
            edges: Vec::new(),
        };
        ws.edges = ws
            .fns
            .iter()
            .map(|f| {
                let mut targets = BTreeSet::new();
                for e in &f.events {
                    if let EventKind::Call(call) = &e.kind {
                        targets.extend(ws.resolve(call));
                    }
                }
                targets.into_iter().collect()
            })
            .collect();
        ws
    }

    /// Resolves one call site to candidate function indices.
    pub fn resolve(&self, call: &CallKind) -> Vec<usize> {
        match call {
            CallKind::Free(name) => self.by_free.get(name).cloned().unwrap_or_default(),
            CallKind::Qualified(qualifier, name) => {
                let key = format!("{qualifier}::{name}");
                if let Some(ids) = self.by_qual.get(&key) {
                    ids.clone()
                } else {
                    // `module::free_fn(...)` — the qualifier is a module.
                    self.by_free.get(name).cloned().unwrap_or_default()
                }
            }
            CallKind::Method(name) => {
                if AMBIENT_METHODS.contains(&name.as_str()) {
                    Vec::new()
                } else {
                    self.by_method.get(name).cloned().unwrap_or_default()
                }
            }
        }
    }

    fn call_name(call: &CallKind) -> &str {
        match call {
            CallKind::Free(n) | CallKind::Method(n) | CallKind::Qualified(_, n) => n,
        }
    }
}

/// Runs every cross-file rule over the workspace sources and returns the
/// combined findings. `sources` must be `(repo-relative path, content)`.
pub fn check_semantic(sources: &[(String, String)]) -> Vec<Finding> {
    let ws = Workspace::build(sources);
    let mut findings = Vec::new();
    check_l010(&ws, &mut findings);
    check_l011(&ws, &mut findings);
    check_l012(&ws, &mut findings);
    check_l013(&ws, &mut findings);
    check_l016(&ws, &mut findings);
    for (path, source) in sources {
        let stripped = strip(source);
        check_l014(path, &stripped, &mut findings);
        check_l015(path, &stripped, &mut findings);
    }
    findings
}

// ---------------------------------------------------------------------
// L010: clip-dominates-noise in dinar-defenses
// ---------------------------------------------------------------------

/// L010: inside `dinar-defenses`, every path that reaches a Gaussian noise
/// draw must pass through a recognized clip source first (the DP
/// clip-then-noise privacy order). Noise sinks are the RNG draw methods and
/// [`L010_NOISE_FNS`]; clip sources are [`L010_CLIP_FNS`]. Entry points
/// (`pub` fns and trait-impl methods) are reported; private helpers are the
/// callers' responsibility and stay silent when every unclipped entry path
/// to them is covered.
fn check_l010(ws: &Workspace, findings: &mut Vec<Finding>) {
    let in_scope: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| ws.fns[i].file.starts_with("crates/defenses/src/"))
        .filter(|&i| !L010_NOISE_FNS.contains(&ws.fns[i].name.as_str()))
        .collect();
    let scope_set: BTreeSet<usize> = in_scope.iter().copied().collect();

    // Per function: direct unclipped noise sites, and unclipped calls into
    // other in-scope functions.
    struct Local {
        sites: Vec<(usize, String)>,      // (line, what)
        deps: Vec<(usize, usize, String)> // (callee, line, name)
    }
    let mut locals: BTreeMap<usize, Local> = BTreeMap::new();
    for &i in &in_scope {
        let mut clipped = false;
        let mut local = Local {
            sites: Vec::new(),
            deps: Vec::new(),
        };
        for e in &ws.fns[i].events {
            match &e.kind {
                EventKind::Call(call) => {
                    let name = Workspace::call_name(call);
                    if L010_CLIP_FNS.contains(&name) {
                        clipped = true;
                    } else if L010_NOISE_FNS.contains(&name) {
                        if !clipped && !e.allowed("L010") {
                            local.sites.push((e.line, format!("`{name}(..)`")));
                        }
                    } else if !clipped {
                        for t in ws.resolve(call) {
                            if scope_set.contains(&t) {
                                local.deps.push((t, e.line, name.to_string()));
                            }
                        }
                    }
                }
                EventKind::NoiseDraw(method) => {
                    if !clipped && !e.allowed("L010") {
                        local.sites.push((e.line, format!("`.{method}(..)`")));
                    }
                }
                _ => {}
            }
        }
        locals.insert(i, local);
    }

    // Fixpoint: a function is exposed if it has a direct unclipped noise
    // site, or makes an unclipped call to an exposed function.
    let mut exposed: BTreeMap<usize, (usize, String)> = BTreeMap::new(); // fn -> evidence
    for (&i, local) in &locals {
        if let Some((line, what)) = local.sites.first() {
            exposed.insert(i, (*line, format!("draws noise via {what}")));
        }
    }
    loop {
        let mut changed = false;
        for (&i, local) in &locals {
            if exposed.contains_key(&i) {
                continue;
            }
            if let Some((_, line, name)) =
                local.deps.iter().find(|(t, _, _)| exposed.contains_key(t))
            {
                exposed.insert(
                    i,
                    (*line, format!("calls `{name}(..)`, which reaches noise")),
                );
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for &i in &in_scope {
        let f = &ws.fns[i];
        if !(f.is_pub || f.is_trait_impl) {
            continue;
        }
        if let Some((line, why)) = exposed.get(&i) {
            findings.push(Finding {
                rule: Rule::L010,
                file: f.file.clone(),
                line: *line,
                message: format!(
                    "`{}` {} without first passing through a clip source \
                     ({}); clip before noising, or annotate the draw with \
                     `lint: allow(L010, reason)`",
                    f.qual,
                    why,
                    L010_CLIP_FNS.join("/"),
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L011: seed taint
// ---------------------------------------------------------------------

/// L011: RNG streams in library code must be derived from configuration or
/// parameters — `seed_from(<integer literal>)` hard-codes a stream that no
/// config sweep or replay harness can vary. Tests and benches are exempt.
fn check_l011(ws: &Workspace, findings: &mut Vec<Finding>) {
    for f in &ws.fns {
        for e in &f.events {
            if e.kind == EventKind::SeedLiteral && !e.allowed("L011") {
                findings.push(Finding {
                    rule: Rule::L011,
                    file: f.file.clone(),
                    line: e.line,
                    message: format!(
                        "`{}` seeds an RNG from an integer literal; derive the seed \
                         from config/params (e.g. `cfg.seed ^ salt`) or annotate \
                         `lint: allow(L011, reason)`",
                        f.qual
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// L012: panic reachability from the round loop / transport
// ---------------------------------------------------------------------

/// L012: no `panic!`/`.unwrap()`/`.expect(` may be reachable through the
/// call graph from the FL round loop or the threaded transport
/// ([`L012_ROOT_FILES`], [`L012_ROOT_FNS`]). A panic that crosses a round
/// boundary kills a client thread mid-round — the exact failure mode the
/// resilient transport exists to contain. Sites carrying a justified
/// `lint: allow(L001, …)`/`allow(L012, …)` are documented invariants and
/// exempt; `assert!`/`unreachable!` are contracts and not matched.
fn check_l012(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut queue: Vec<usize> = Vec::new();
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let is_root = L012_ROOT_FILES.contains(&f.file.as_str())
            || (f.file.starts_with("crates/fl/src/") && L012_ROOT_FNS.contains(&f.qual.as_str()));
        if is_root {
            queue.push(i);
            visited.insert(i);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        for &t in &ws.edges[i] {
            if visited.insert(t) {
                parent.insert(t, i);
                queue.push(t);
            }
        }
    }
    for &i in &visited {
        let f = &ws.fns[i];
        for e in &f.events {
            if let EventKind::Panic(token) = e.kind {
                if e.allowed("L012") {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::L012,
                    file: f.file.clone(),
                    line: e.line,
                    message: format!(
                        "`{token}` reachable from the round loop/transport via {}; \
                         return a Result or document the invariant with \
                         `lint: allow(L012, reason)`",
                        chain_to(ws, &parent, i)
                    ),
                });
            }
        }
    }
}

/// Renders the call chain root → … → `i` (capped in the middle).
fn chain_to(ws: &Workspace, parent: &BTreeMap<usize, usize>, i: usize) -> String {
    let mut chain = vec![i];
    let mut cur = i;
    while let Some(&p) = parent.get(&cur) {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&j| ws.fns[j].qual.as_str()).collect();
    if names.len() <= 6 {
        names.join(" -> ")
    } else {
        format!(
            "{} -> … -> {}",
            names[..3].join(" -> "),
            names[names.len() - 2..].join(" -> ")
        )
    }
}

// ---------------------------------------------------------------------
// L013: lock ordering
// ---------------------------------------------------------------------

/// L013: nested mutex acquisitions must move strictly down [`LOCK_ORDER`].
/// A guard is (conservatively) assumed held until the end of the acquiring
/// function, and acquisitions made by callees count transitively — so a
/// function holding `telemetry.histo` may not call anything that locks
/// `telemetry.registry`.
fn check_l013(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Direct lock classes per fn (test fns never made it into the model).
    let direct: Vec<BTreeSet<usize>> = ws
        .fns
        .iter()
        .map(|f| {
            f.events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::Lock(recv) => lock_class(&f.file, recv),
                    _ => None,
                })
                .collect()
        })
        .collect();
    // Transitive closure over call edges.
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        for i in 0..ws.fns.len() {
            for &t in &ws.edges[i] {
                let extra: Vec<usize> = trans[t].difference(&trans[i]).copied().collect();
                if !extra.is_empty() {
                    trans[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for f in &ws.fns {
        let mut held: Vec<usize> = Vec::new(); // classes, in acquisition order
        for e in &f.events {
            match &e.kind {
                EventKind::Lock(recv) => {
                    let Some(class) = lock_class(&f.file, recv) else {
                        continue;
                    };
                    if !e.allowed("L013") {
                        if let Some(&outer) = held.iter().find(|&&a| class <= a) {
                            findings.push(Finding {
                                rule: Rule::L013,
                                file: f.file.clone(),
                                line: e.line,
                                message: format!(
                                    "`{}` acquires `{}` while holding `{}` — against the \
                                     global lock order ({})",
                                    f.qual,
                                    LOCK_ORDER[class],
                                    LOCK_ORDER[outer],
                                    LOCK_ORDER.join(" < "),
                                ),
                            });
                        }
                    }
                    held.push(class);
                }
                EventKind::Call(call) if !held.is_empty() && !e.allowed("L013") => {
                    for t in ws.resolve(call) {
                        for &class in &trans[t] {
                            if let Some(&outer) = held.iter().find(|&&a| class <= a) {
                                findings.push(Finding {
                                    rule: Rule::L013,
                                    file: f.file.clone(),
                                    line: e.line,
                                    message: format!(
                                        "`{}` calls `{}`, which acquires `{}` while `{}` \
                                         is held — against the global lock order ({})",
                                        f.qual,
                                        ws.fns[t].qual,
                                        LOCK_ORDER[class],
                                        LOCK_ORDER[outer],
                                        LOCK_ORDER.join(" < "),
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// L014: nondeterministic iteration
// ---------------------------------------------------------------------

const L014_UNORDERED: [&str; 2] = ["HashSet", "HashMap"];
const L014_ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "into_iter", "values", "keys", "drain"];
const L014_FOLDS: [&str; 3] = ["sum", "fold", "product"];

/// L014: in the deterministic crates, arithmetic must not accumulate over
/// unordered-container iteration — float addition is not associative, so a
/// `HashSet`/`HashMap` visit order leaks into figures. (L002 already bans
/// `HashMap` there wholesale; this closes the `HashSet` + allow-annotated
/// gap and documents the invariant the engine actually cares about.)
fn check_l014(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    let in_deterministic = DETERMINISTIC_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if !in_deterministic {
        return;
    }
    let toks = crate::lex::lex(stripped);

    let mut report = |line: usize, via: &str| {
        if stripped.is_test_line(line) || stripped.is_allowed("L014", line) {
            return;
        }
        findings.push(Finding {
            rule: Rule::L014,
            file: path.to_string(),
            line,
            message: format!(
                "arithmetic accumulation over unordered-container iteration ({via}); \
                 float addition is order-sensitive — use a BTreeMap/BTreeSet or a \
                 sorted Vec, or annotate `lint: allow(L014, reason)`"
            ),
        });
    };

    // One forward scan: `let` bindings register (or, via shadowing, clear)
    // unordered-container names; uses are checked against the names bound
    // so far, which keeps same-named ordered bindings in earlier functions
    // from tainting later ones.
    let mut unordered: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        // Binding: `let [mut] name … ;` — unordered RHS registers the name,
        // any other RHS shadows it back out.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == crate::lex::TokKind::Ident) {
                let mut k = j + 1;
                let mut is_unordered = false;
                while let Some(tok) = toks.get(k) {
                    if tok.is_punct(';') {
                        break;
                    }
                    if L014_UNORDERED.iter().any(|u| tok.is_ident(u)) {
                        is_unordered = true;
                        break;
                    }
                    k += 1;
                }
                if is_unordered {
                    unordered.insert(name.text.clone());
                } else {
                    unordered.remove(&name.text);
                }
            }
            i += 1;
            continue;
        }

        // Iterator chain: `x.iter()….sum()/fold()/product()` before `;`.
        if toks[i].kind == crate::lex::TokKind::Ident
            && unordered.contains(&toks[i].text)
            && toks.get(i + 1).is_some_and(|d| d.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|m| L014_ITER_METHODS.iter().any(|im| m.is_ident(im)))
        {
            let mut k = i + 3;
            while let Some(tok) = toks.get(k) {
                if tok.is_punct(';') {
                    break;
                }
                if L014_FOLDS.iter().any(|f| tok.is_ident(f))
                    && toks.get(k + 1).is_some_and(|p| p.is_punct('('))
                {
                    report(
                        toks[i].line,
                        &format!("`{}.{}()…{}(…)`", toks[i].text, toks[i + 2].text, tok.text),
                    );
                    break;
                }
                k += 1;
            }
            i += 1;
            continue;
        }

        // `for … in <unordered> … { … += … }` loops.
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Header: up to the loop body `{`.
        let mut header_hit = None;
        let mut j = i + 1;
        while let Some(tok) = toks.get(j) {
            if tok.is_punct('{') {
                break;
            }
            if tok.kind == crate::lex::TokKind::Ident && unordered.contains(tok.text.as_str()) {
                header_hit = Some(tok.text.clone());
            }
            j += 1;
        }
        let Some(var) = header_hit else {
            i = j;
            continue;
        };
        // Body: matching brace; flag compound-assignment accumulation.
        let mut depth = 0i64;
        let mut k = j;
        while let Some(tok) = toks.get(k) {
            match tok.kind {
                crate::lex::TokKind::Punct('{') => depth += 1,
                crate::lex::TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                crate::lex::TokKind::Punct(op @ ('+' | '*')) => {
                    if toks.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                        report(toks[i].line, &format!("`for … in {var}` with `{op}=`"));
                        // One report per loop is enough.
                        while let Some(t2) = toks.get(k) {
                            match t2.kind {
                                crate::lex::TokKind::Punct('{') => depth += 1,
                                crate::lex::TokKind::Punct('}') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    }
}

// ---------------------------------------------------------------------
// L015: scalar noise draws inside loops
// ---------------------------------------------------------------------

const L015_SCALAR_DRAWS: [&str; 2] = ["normal", "normal_with"];

/// L015: in the defenses crate and the parameter-plane modules
/// ([`L009_FILES`]), scalar `.normal()`/`.normal_with()` draws must not sit
/// inside `for`/`while`/`loop` bodies. A per-element Box–Muller draw walks
/// the sequential generator one sample at a time — an order of magnitude
/// slower than the chunked counter-based fills — and a loop over parameters
/// is exactly the hot shape where that cost dominates a defense's round
/// time. Use `fill_normal`/`fill_normal_with`/`axpy_normal` on the whole
/// slice instead; they are also cache-free and telemetry-counted.
fn check_l015(path: &str, stripped: &Stripped, findings: &mut Vec<Finding>) {
    let in_scope = path.starts_with("crates/defenses/src/") || L009_FILES.contains(&path);
    if !in_scope {
        return;
    }
    let toks = crate::lex::lex(stripped);

    let mut report = |line: usize, method: &str| {
        if stripped.is_test_line(line) || stripped.is_allowed("L015", line) {
            return;
        }
        findings.push(Finding {
            rule: Rule::L015,
            file: path.to_string(),
            line,
            message: format!(
                "scalar `.{method}(…)` draw inside a loop; fill the whole slice \
                 with `fill_normal`/`fill_normal_with`/`axpy_normal` instead, or \
                 annotate `lint: allow(L015, reason)`"
            ),
        });
    };

    // One forward scan with a brace-depth counter. A loop body is the brace
    // opened right after a loop keyword; bodies are kept as a stack of
    // opening depths, so nested loops, match arms and closures inside the
    // body all stay covered until the loop's own brace closes. `for` only
    // arms the scan when an `in` precedes the body brace, which separates
    // loop headers from `impl Trait for Type` and `for<'a>` bounds.
    let mut depth = 0i64;
    let mut loop_starts: Vec<i64> = Vec::new();
    let mut pending_loop = false;
    for (i, tok) in toks.iter().enumerate() {
        match tok.kind {
            crate::lex::TokKind::Punct('{') => {
                depth += 1;
                if pending_loop {
                    loop_starts.push(depth);
                    pending_loop = false;
                }
            }
            crate::lex::TokKind::Punct('}') => {
                if loop_starts.last() == Some(&depth) {
                    loop_starts.pop();
                }
                depth -= 1;
            }
            crate::lex::TokKind::Ident => match tok.text.as_str() {
                "while" | "loop" => pending_loop = true,
                "for" => {
                    let mut j = i + 1;
                    while let Some(t) = toks.get(j) {
                        if t.is_punct('{') {
                            break;
                        }
                        if t.is_ident("in") {
                            pending_loop = true;
                            break;
                        }
                        j += 1;
                    }
                }
                name if L015_SCALAR_DRAWS.contains(&name)
                    && !loop_starts.is_empty()
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|p| p.is_punct('(')) =>
                {
                    report(tok.line, name);
                }
                _ => {}
            },
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// L016: ledger coverage in dinar-defenses
// ---------------------------------------------------------------------

/// Defense transform entry points that must report to the privacy ledger.
pub const L016_ENTRY_FNS: [&str; 3] = ["transform_upload", "transform_aggregate", "step"];

/// The ledger sinks: a real (ε, δ) charge or an explicit zero-cost entry.
pub const L016_SINK_FNS: [&str; 2] = ["privacy_charge", "privacy_charge_zero"];

/// L016: inside `dinar-defenses`, every pub/trait-impl entry point named in
/// [`L016_ENTRY_FNS`] must reach a [`L016_SINK_FNS`] call through the call
/// graph — the ledger-coverage contract that lets an audit distinguish
/// "this defense spends no budget" (an explicit `privacy_charge_zero`)
/// from "this defense forgot to report". The obligation propagates through
/// private helpers, mirroring L010's fixpoint in the reaching direction: a
/// transform that delegates its reporting to a helper is covered. A
/// transform that genuinely cannot touch member data carries a
/// `// lint: allow(L016, reason)` on a body line.
fn check_l016(ws: &Workspace, findings: &mut Vec<Finding>) {
    let in_scope: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| ws.fns[i].file.starts_with("crates/defenses/src/"))
        .collect();
    let scope_set: BTreeSet<usize> = in_scope.iter().copied().collect();

    // A function reaches the ledger if it calls a sink directly, or calls
    // an in-scope function that reaches it.
    let mut reaches: BTreeSet<usize> = in_scope
        .iter()
        .copied()
        .filter(|&i| {
            ws.fns[i].events.iter().any(|e| match &e.kind {
                EventKind::Call(call) => {
                    L016_SINK_FNS.contains(&Workspace::call_name(call))
                }
                _ => false,
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for &i in &in_scope {
            if reaches.contains(&i) {
                continue;
            }
            let callee_reaches = ws.fns[i].events.iter().any(|e| {
                matches!(&e.kind, EventKind::Call(call)
                    if ws.resolve(call).iter().any(|t| {
                        scope_set.contains(t) && reaches.contains(t)
                    }))
            });
            if callee_reaches {
                reaches.insert(i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for &i in &in_scope {
        let f = &ws.fns[i];
        if !(f.is_pub || f.is_trait_impl)
            || !L016_ENTRY_FNS.contains(&f.name.as_str())
            || reaches.contains(&i)
            || f.events.iter().any(|e| e.allowed("L016"))
        {
            continue;
        }
        findings.push(Finding {
            rule: Rule::L016,
            file: f.file.clone(),
            line: f.line,
            message: format!(
                "`{}` never reports to the privacy ledger; charge the cost with \
                 `privacy_charge` (or `privacy_charge_zero` for a cost-free \
                 transform), or annotate a body line with \
                 `lint: allow(L016, reason)`",
                f.qual,
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(specs: &[(&str, &str)]) -> Vec<(String, String)> {
        specs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    fn rule_findings(sources: &[(String, String)], rule: Rule) -> Vec<Finding> {
        check_semantic(sources)
            .into_iter()
            .filter(|f| f.rule == rule)
            .collect()
    }

    // ----- L010 ------------------------------------------------------

    #[test]
    fn l010_flags_unclipped_noise_in_pub_defense() {
        let sources = files(&[(
            "crates/defenses/src/ndp.rs",
            "pub fn noise_only(p: &mut ModelParams, rng: &mut Rng) {\n\
                 add_gaussian_noise(p, 0.5, rng);\n\
             }\n",
        )]);
        let l010 = rule_findings(&sources, Rule::L010);
        assert_eq!(l010.len(), 1, "{l010:?}");
        assert_eq!(l010[0].line, 2);
    }

    #[test]
    fn l010_accepts_clip_then_noise_and_direct_draws_after_clip() {
        let sources = files(&[(
            "crates/defenses/src/ndp.rs",
            "pub fn mechanism(p: &mut ModelParams, rng: &mut Rng) {\n\
                 clip_l2(p, 5.0);\n\
                 add_gaussian_noise(p, 0.5, rng);\n\
             }\n\
             pub fn fused(p: &mut [f32], rng: &mut Rng) {\n\
                 let s = clip_factor(n, c);\n\
                 for v in p { *v = *v * s + rng.normal(); }\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L010).is_empty());
    }

    #[test]
    fn l010_propagates_through_private_helpers_to_the_entry() {
        let sources = files(&[(
            "crates/defenses/src/ndp.rs",
            "impl ClientMiddleware for X {\n\
                 fn transform_upload(&mut self, p: &mut ModelParams) {\n\
                     self.perturb(p);\n\
                 }\n\
             }\n\
             impl X {\n\
                 fn perturb(&mut self, p: &mut ModelParams) {\n\
                     for v in p { *v += self.rng.normal_with(0.0, 1.0); }\n\
                 }\n\
             }\n",
        )]);
        let l010 = rule_findings(&sources, Rule::L010);
        // The trait-impl entry is flagged; the private helper is not.
        assert_eq!(l010.len(), 1, "{l010:?}");
        assert!(l010[0].message.contains("transform_upload"));
    }

    #[test]
    fn l010_covered_helper_and_allowed_draw_stay_silent() {
        let sources = files(&[(
            "crates/defenses/src/ndp.rs",
            "pub fn entry(p: &mut ModelParams, rng: &mut Rng) {\n\
                 clip_l2(p, 1.0);\n\
                 helper(p, rng);\n\
             }\n\
             fn helper(p: &mut ModelParams, rng: &mut Rng) {\n\
                 add_gaussian_noise(p, 0.1, rng);\n\
             }\n\
             pub fn masks(p: &mut ModelParams, rng: &mut Rng) {\n\
                 // lint: allow(L010, pairwise masks cancel exactly; not DP noise)\n\
                 let m = rng.normal_with(0.0, 10.0);\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L010).is_empty());
    }

    // ----- L011 ------------------------------------------------------

    #[test]
    fn l011_flags_literal_seeds_outside_tests() {
        let sources = files(&[(
            "crates/fl/src/x.rs",
            "pub fn f() { let rng = Rng::seed_from(42); }\n\
             pub fn g(cfg: &Cfg) { let rng = Rng::seed_from(cfg.seed ^ 42); }\n\
             #[cfg(test)]\nmod tests { fn t() { let rng = Rng::seed_from(0); } }\n",
        )]);
        let l011 = rule_findings(&sources, Rule::L011);
        assert_eq!(l011.len(), 1, "{l011:?}");
        assert_eq!(l011[0].line, 1);
    }

    #[test]
    fn l011_allow_and_bench_are_exempt() {
        let sources = files(&[
            (
                "crates/bench/src/x.rs",
                "pub fn f() { let rng = Rng::seed_from(7); }\n",
            ),
            (
                "crates/fl/src/y.rs",
                "pub fn f() {\n\
                     // lint: allow(L011, protocol constant shared with the paper)\n\
                     let rng = Rng::seed_from(7);\n\
                 }\n",
            ),
        ]);
        assert!(rule_findings(&sources, Rule::L011).is_empty());
    }

    // ----- L012 ------------------------------------------------------

    #[test]
    fn l012_flags_panics_transitively_reachable_from_transport() {
        let sources = files(&[
            (
                "crates/fl/src/transport.rs",
                "pub fn run_threaded(s: FlSystem) { step_round(&s); }\n",
            ),
            (
                "crates/fl/src/round.rs",
                "pub fn step_round(s: &FlSystem) { s.model.refit(); }\n",
            ),
            (
                "crates/nn/src/fit.rs",
                "impl Model { pub fn refit(&self) { self.w.get(0).unwrap(); } }\n\
                 pub fn unrelated() { x.unwrap(); }\n",
            ),
        ]);
        let l012 = rule_findings(&sources, Rule::L012);
        assert_eq!(l012.len(), 1, "{l012:?}");
        assert!(l012[0].message.contains("run_threaded"));
        assert!(l012[0].message.contains("Model::refit"));
    }

    #[test]
    fn l012_honors_invariant_allows_and_ambient_method_blocklist() {
        let sources = files(&[
            (
                "crates/fl/src/transport.rs",
                "pub fn run_threaded(s: FlSystem) { s.tensor.map(f); justified(); }\n",
            ),
            (
                "crates/fl/src/round.rs",
                "pub fn justified() {\n\
                     x.unwrap(); // lint: allow(L001, invariant documented here)\n\
                 }\n\
                 impl Tensor { pub fn map(&self, f: F) { self.buf.expect(\"len\"); } }\n",
            ),
        ]);
        assert!(rule_findings(&sources, Rule::L012).is_empty());
    }

    // ----- L013 ------------------------------------------------------

    #[test]
    fn l013_flags_out_of_order_nested_acquisition() {
        let sources = files(&[(
            "crates/telemetry/src/registry.rs",
            "impl Registry {\n\
                 pub fn bad(&self) {\n\
                     let h = self.inner.lock();\n\
                     self.rename();\n\
                 }\n\
                 fn rename(&self) { let e = self.entries.lock(); }\n\
                 pub fn good(&self) {\n\
                     let e = self.entries.lock();\n\
                     let h = self.inner.lock();\n\
                 }\n\
             }\n",
        )]);
        let l013 = rule_findings(&sources, Rule::L013);
        assert_eq!(l013.len(), 1, "{l013:?}");
        assert!(l013[0].message.contains("telemetry.registry"));
        assert_eq!(l013[0].line, 4);
    }

    #[test]
    fn l013_same_class_reentry_is_flagged_and_unknown_receivers_skipped() {
        let sources = files(&[(
            "crates/telemetry/src/registry.rs",
            "impl Registry {\n\
                 pub fn reenter(&self) {\n\
                     let a = self.entries.lock();\n\
                     let b = self.entries.lock();\n\
                 }\n\
                 pub fn untracked(&self) {\n\
                     let a = self.other.lock();\n\
                     let b = self.other.lock();\n\
                 }\n\
             }\n",
        )]);
        let l013 = rule_findings(&sources, Rule::L013);
        assert_eq!(l013.len(), 1, "{l013:?}");
        assert_eq!(l013[0].line, 4);
    }

    // ----- L014 ------------------------------------------------------

    #[test]
    fn l014_flags_sum_over_hashset_iteration() {
        let sources = files(&[(
            "crates/metrics/src/agg.rs",
            "fn f(xs: &[u64]) -> f32 {\n\
                 let seen: HashSet<u64> = xs.iter().copied().collect();\n\
                 let total: f32 = seen.iter().map(|x| *x as f32).sum();\n\
                 total\n\
             }\n",
        )]);
        let l014 = rule_findings(&sources, Rule::L014);
        assert_eq!(l014.len(), 1, "{l014:?}");
        assert_eq!(l014[0].line, 3);
    }

    #[test]
    fn l014_flags_compound_assignment_loops_over_hashmap() {
        let sources = files(&[(
            "crates/fl/src/agg.rs",
            "fn f() {\n\
                 let mut weights = HashMap::new();\n\
                 let mut acc = 0.0;\n\
                 for (_, w) in &weights { acc += w; }\n\
             }\n",
        )]);
        let l014 = rule_findings(&sources, Rule::L014);
        assert_eq!(l014.len(), 1, "{l014:?}");
        assert_eq!(l014[0].line, 4);
    }

    #[test]
    fn l014_ignores_ordered_containers_counts_tests_and_allows() {
        let sources = files(&[(
            "crates/metrics/src/agg.rs",
            "fn ordered(xs: &[u64]) -> f32 {\n\
                 let seen: BTreeSet<u64> = xs.iter().copied().collect();\n\
                 seen.iter().map(|x| *x as f32).sum()\n\
             }\n\
             fn counting() {\n\
                 let seen: HashSet<u64> = HashSet::new();\n\
                 let n = seen.iter().count();\n\
             }\n\
             fn allowed(seen2: &X) {\n\
                 let seen: HashSet<u64> = HashSet::new();\n\
                 // lint: allow(L014, summation is order-independent here by construction)\n\
                 let t: f32 = seen.iter().map(f).sum();\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() {\n\
                     let seen: HashSet<u64> = HashSet::new();\n\
                     let t: f32 = seen.iter().map(f).sum();\n\
                 }\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L014).is_empty());
    }

    #[test]
    fn l014_only_polices_deterministic_crates() {
        let sources = files(&[(
            "crates/bench/src/agg.rs",
            "fn f() {\n\
                 let seen: HashSet<u64> = HashSet::new();\n\
                 let t: f32 = seen.iter().map(f).sum();\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L014).is_empty());
    }

    // ----- L015 ------------------------------------------------------

    #[test]
    fn l015_flags_scalar_draws_in_loops() {
        let sources = files(&[(
            "crates/defenses/src/gc.rs",
            "fn a(rng: &mut Rng, xs: &mut [f32]) {\n\
                 for x in xs.iter_mut() {\n\
                     *x += rng.normal();\n\
                 }\n\
             }\n\
             fn b(rng: &mut Rng, std: f32) -> f32 {\n\
                 let mut acc = 0.0;\n\
                 while acc < 1.0 {\n\
                     acc += rng.normal_with(0.0, std);\n\
                 }\n\
                 acc\n\
             }\n",
        )]);
        let l015 = rule_findings(&sources, Rule::L015);
        assert_eq!(l015.len(), 2, "{l015:?}");
        assert_eq!(l015[0].line, 3);
        assert_eq!(l015[1].line, 9);
    }

    #[test]
    fn l015_covers_closures_inside_loop_bodies() {
        let sources = files(&[(
            "crates/defenses/src/sa.rs",
            "fn mask(rng: &mut Rng, view: &mut V) {\n\
                 for peer in 0..3 {\n\
                     view.for_each_slice_mut(|s| {\n\
                         s[0] = rng.normal();\n\
                     });\n\
                 }\n\
             }\n",
        )]);
        let l015 = rule_findings(&sources, Rule::L015);
        assert_eq!(l015.len(), 1, "{l015:?}");
        assert_eq!(l015[0].line, 4);
    }

    #[test]
    fn l015_ignores_bulk_fills_straight_line_draws_tests_and_allows() {
        let sources = files(&[(
            "crates/defenses/src/dp.rs",
            "fn bulk(rng: &mut Rng, view: &mut V, std: f32) {\n\
                 for _ in 0..3 {\n\
                     view.for_each_slice_mut(|s| rng.axpy_normal(s, std));\n\
                 }\n\
             }\n\
             fn once(rng: &mut Rng) -> f32 {\n\
                 rng.normal()\n\
             }\n\
             fn allowed(rng: &mut Rng, xs: &mut [f32]) {\n\
                 for x in xs.iter_mut() {\n\
                     // lint: allow(L015, one draw per rejection round, unbounded slice size unknown)\n\
                     *x = rng.normal();\n\
                 }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t(rng: &mut Rng) {\n\
                     for _ in 0..3 {\n\
                         rng.normal();\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L015).is_empty());
    }

    #[test]
    fn l015_does_not_mistake_impl_for_blocks_for_loops() {
        let sources = files(&[(
            "crates/defenses/src/ldp.rs",
            "impl Noise for Ldp {\n\
                 fn draw(&mut self) -> f32 {\n\
                     self.rng.normal()\n\
                 }\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L015).is_empty());
    }

    #[test]
    fn l015_only_polices_defenses_and_param_plane_files() {
        let sources = files(&[(
            "crates/tensor/src/rng.rs",
            "fn f(rng: &mut Rng, xs: &mut [f32]) {\n\
                 for x in xs.iter_mut() {\n\
                     *x = rng.normal();\n\
                 }\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L015).is_empty());
    }

    // ----- L016 ------------------------------------------------------

    #[test]
    fn l016_flags_transform_that_never_reports_to_the_ledger() {
        let sources = files(&[(
            "crates/defenses/src/quiet.rs",
            "impl ClientMiddleware for Quiet {\n\
                 fn transform_upload(&mut self, p: &mut ModelParams) {\n\
                     scale(p);\n\
                 }\n\
             }\n",
        )]);
        let l016 = rule_findings(&sources, Rule::L016);
        assert_eq!(l016.len(), 1, "{l016:?}");
        assert_eq!(l016[0].line, 2);
        assert!(l016[0].message.contains("transform_upload"));
    }

    #[test]
    fn l016_accepts_direct_charges_and_charges_through_helpers() {
        let sources = files(&[(
            "crates/defenses/src/loud.rs",
            "impl ClientMiddleware for Direct {\n\
                 fn transform_upload(&mut self, p: &mut ModelParams) {\n\
                     self.telemetry.privacy_charge(\"ldp\", \"client[0]\", e, d);\n\
                 }\n\
             }\n\
             impl ClientMiddleware for Delegating {\n\
                 fn transform_upload(&mut self, p: &mut ModelParams) {\n\
                     report_cost(&self.telemetry);\n\
                 }\n\
             }\n\
             fn report_cost(t: &Telemetry) {\n\
                 t.privacy_charge_zero(\"sa\", \"client[0]\");\n\
             }\n",
        )]);
        assert!(rule_findings(&sources, Rule::L016).is_empty());
    }

    #[test]
    fn l016_honors_allow_and_ignores_other_crates_and_other_fns() {
        let sources = files(&[
            (
                "crates/defenses/src/inert.rs",
                "impl ClientMiddleware for Inert {\n\
                     fn transform_upload(&mut self, p: &mut ModelParams) {\n\
                         // lint: allow(L016, pure reshape, never touches member data)\n\
                         reshape(p);\n\
                     }\n\
                 }\n\
                 pub fn unrelated_helper(p: &mut ModelParams) {\n\
                     scale(p);\n\
                 }\n",
            ),
            (
                "crates/nn/src/optim.rs",
                "impl Optimizer for Sgd {\n\
                     fn step(&mut self, m: &mut Model) {\n\
                         apply(m);\n\
                     }\n\
                 }\n",
            ),
        ]);
        assert!(rule_findings(&sources, Rule::L016).is_empty());
    }
}

//! Lexical preprocessing: comment/string stripping and annotation capture.
//!
//! The rules in [`crate::rules`] are token-level — they must not fire on a
//! mention of `unwrap()` inside a doc comment or a string literal. This
//! module rewrites a source file so that every comment and string-literal
//! character becomes a space (preserving line and column structure exactly),
//! while extracting two side channels the rules need:
//!
//! * `// lint: allow(RULE, reason)` annotations, which suppress a rule on
//!   the annotated line and the line immediately below it, and
//! * `#[cfg(test)]`-gated regions, which the non-test rules skip.

use std::collections::{BTreeMap, BTreeSet};

/// A source file after lexical preprocessing.
#[derive(Debug, Clone)]
pub struct Stripped {
    /// The stripped source, split into lines (1-based indexing via
    /// [`Stripped::line`]).
    pub lines: Vec<String>,
    /// `line -> rules` explicitly allowed on that line and the next.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
    /// Per line, whether it sits inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

impl Stripped {
    /// The stripped text of a 1-based line (empty for out-of-range).
    pub fn line(&self, number: usize) -> &str {
        number
            .checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// `true` if `rule` is allowed on `line` — by an annotation on the line
    /// itself or on the line directly above.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|set| set.contains(rule)))
    }

    /// `true` if the 1-based line is inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.in_test.get(i))
            .copied()
            .unwrap_or(false)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Strips comments and string literals from `source`, replacing their
/// contents with spaces so offsets survive, and records lint annotations.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut comment_buf = String::new();
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                    continue;
                }
                // Raw/byte string openers: r", r#", br", b".
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, consumed)) = raw_string_open(&chars, i) {
                        state = if hashes == u32::MAX {
                            State::Str
                        } else {
                            State::RawStr(hashes)
                        };
                        for _ in 0..consumed {
                            out.push(' ');
                        }
                        out.push('"');
                        i += consumed + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish char literals from lifetimes.
                    if next == Some('\\') {
                        // Escaped char literal: scan to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        out.push('\'');
                        for k in i + 1..j.min(chars.len()) {
                            out.push(if chars[k] == '\n' { '\n' } else { ' ' });
                        }
                        if j < chars.len() {
                            out.push('\'');
                        }
                        line += chars[i..=j.min(chars.len() - 1)]
                            .iter()
                            .filter(|&&x| x == '\n')
                            .count();
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') {
                        // Plain char literal 'x'.
                        out.push_str("' '");
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick, continue as code.
                    out.push('\'');
                    i += 1;
                    continue;
                }
                if c == '\n' {
                    line += 1;
                }
                out.push(c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    record_allows(&comment_buf, line, &mut allows);
                    state = State::Code;
                    out.push('\n');
                    line += 1;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    if c == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    if c == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    if c == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        record_allows(&comment_buf, line, &mut allows);
    }

    let lines: Vec<String> = out.lines().map(str::to_string).collect();
    let in_test = mark_test_regions(&lines);
    Stripped {
        lines,
        allows,
        in_test,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| chars.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// If `chars[i..]` opens a raw or byte string, returns `(hash_count,
/// chars_before_the_quote)`. A plain `b"` (no hashes, escapes active)
/// returns `u32::MAX` as a marker for ordinary-string lexing.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(j + hashes as usize) == Some(&'#') {
        hashes += 1;
    }
    let quote_at = j + hashes as usize;
    if chars.get(quote_at) != Some(&'"') {
        return None;
    }
    if !raw {
        if hashes != 0 {
            return None;
        }
        return Some((u32::MAX, quote_at - i));
    }
    Some((hashes, quote_at - i))
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Parses `lint: allow(RULE, reason)` out of a line comment's text.
fn record_allows(comment: &str, line: usize, allows: &mut BTreeMap<usize, BTreeSet<String>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        let rule: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric())
            .collect();
        if !rule.is_empty() {
            allows.entry(line).or_default().insert(rule);
        }
        rest = after;
    }
}

/// Marks every line belonging to a `#[cfg(test)]`- or `#[cfg(all(test,…))]`-
/// gated item by tracking the brace depth of the block that follows the
/// attribute.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut idx = 0usize;
    while idx < lines.len() {
        let trimmed = lines[idx].trim_start();
        let gated = trimmed.starts_with("#[cfg(")
            && !trimmed.contains("not(test")
            && (trimmed.contains("(test") || trimmed.contains(" test"));
        if !gated {
            idx += 1;
            continue;
        }
        // Consume lines until the gated item's block closes.
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = idx;
        while j < lines.len() {
            in_test[j] = true;
            for c in lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // Braceless gated item (e.g. a gated `use`).
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        idx = j + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_become_spaces() {
        let s = strip("let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* unwrap() */");
        assert!(!s.line(1).contains("unwrap"));
        assert!(!s.line(2).contains("unwrap"));
        assert!(s.line(1).contains("let x ="));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n/* c1\nc2 */\nb \"s\ntr\" c\n";
        let s = strip(src);
        assert_eq!(s.lines.len(), src.lines().count());
        assert_eq!(s.line(1), "a");
        assert!(s.line(5).contains('c'));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let s = strip("let x = r#\"unwrap() \"inner\" \"#; let ok = 1;");
        assert!(!s.line(1).contains("unwrap"));
        assert!(s.line(1).contains("let ok = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let s = strip("fn f<'a>(x: &'a str) -> char { '}' }");
        assert!(s.line(1).contains("fn f<'a>"));
        // The brace inside the char literal must not unbalance the code.
        let opens = s.line(1).matches('{').count();
        let closes = s.line(1).matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn allow_annotations_are_captured() {
        let s = strip("let t = now(); // lint: allow(L002, timer by design)\nlet u = 1;\n");
        assert!(s.is_allowed("L002", 1));
        assert!(s.is_allowed("L002", 2));
        assert!(!s.is_allowed("L002", 3));
        assert!(!s.is_allowed("L001", 1));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = strip(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }
}

//! Token stream over stripped source: the lexer front end of the semantic
//! engine.
//!
//! [`crate::strip`] already erased comments and string contents (preserving
//! line/column structure), so lexing reduces to splitting the remaining
//! code into identifiers, numeric literals and single-character punctuation.
//! Multi-character operators (`::`, `->`, `+=`) stay as adjacent punctuation
//! tokens; the parser in [`crate::sem`] matches them pairwise, which keeps
//! the lexer trivial and the token positions exact.

use crate::strip::Stripped;

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `clip_l2`, `HashMap`, …).
    Ident,
    /// Numeric literal (`42`, `0xEE`, `1e-5` lexes as `1e` `-` `5`).
    Num,
    /// One punctuation character (`.`, `:`, `{`, …).
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// The token text (identifier/number spelling; punctuation repeats the
    /// character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// `true` if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes a stripped file into a token stream.
pub fn lex(stripped: &Stripped) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (i, line) in stripped.lines.iter().enumerate() {
        let n = i + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut j = 0usize;
        while j < chars.len() {
            let c = chars[j];
            if c.is_whitespace() {
                j += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = j;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..j].iter().collect(),
                    line: n,
                });
            } else if c.is_ascii_digit() {
                // Numbers including hex/underscore/float forms; exponents
                // with a sign split at the sign, which the rules never need.
                let start = j;
                while j < chars.len()
                    && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '.')
                {
                    // A `.` only continues the number when followed by a
                    // digit (so `1.max(2)` lexes as `1` `.` `max` …).
                    if chars[j] == '.' && !chars.get(j + 1).is_some_and(char::is_ascii_digit) {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..j].iter().collect(),
                    line: n,
                });
            } else {
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: c.to_string(),
                    line: n,
                });
                j += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(&strip(src))
    }

    #[test]
    fn idents_numbers_and_puncts_split() {
        let toks = kinds("fn f(x: u64) { x + 0xEE_u64 }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "f", "(", "x", ":", "u64", ")", "{", "x", "+", "0xEE_u64", "}"]
        );
        assert_eq!(toks[10].kind, TokKind::Num);
    }

    #[test]
    fn method_on_number_splits_at_dot() {
        let texts: Vec<String> = kinds("1.max(2); 1.5.sqrt()")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(
            texts,
            ["1", ".", "max", "(", "2", ")", ";", "1.5", ".", "sqrt", "(", ")"]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = kinds("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn strings_and_comments_yield_no_tokens() {
        let toks = kinds("let s = \"panic! unwrap()\"; // unwrap()\n");
        assert!(toks.iter().all(|t| t.text != "panic" && t.text != "unwrap"));
    }
}
